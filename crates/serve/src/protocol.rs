//! The wire protocol: length-prefixed binary frames.
//!
//! ```text
//! request  = [len: u32 BE] [id: u64 BE] [verb: u8]   [payload: len-9 bytes]
//! response = [len: u32 BE] [id: u64 BE] [status: u8] [payload: len-9 bytes]
//! ```
//!
//! `len` counts everything after the length word (so the minimum legal
//! value is [`HEADER_LEN`] and the maximum [`MAX_FRAME`]). Payloads are
//! UTF-8 text; the verbs reuse the CLI command surface:
//!
//! * `QUERY <db> \n <query>` — the local answer only (level 0)
//! * `AUGMENT <db> \n <level> \n <query>` — full augmented search
//! * `METRICS [JSON]` — metrics export (Prometheus text by default)
//! * `CHECKPOINT` — force a durable checkpoint cut
//!
//! Answer payloads are the [`AnswerNormalForm`] rendering — deterministic
//! and order-independent, so a response can be compared bit-for-bit
//! against an in-process run of the same query.
//!
//! Framing errors split into two classes the server handles differently:
//! a frame whose *length word* is out of range leaves the stream
//! unsynchronized (nothing after it can be trusted), while a frame that
//! decodes far enough to carry a request id can be answered with a
//! structured `ERROR` and the connection kept.
//!
//! [`AnswerNormalForm`]: quepa_core::AnswerNormalForm

use std::fmt;
use std::io::{self, Read, Write};

/// Bytes of `[id][verb-or-status]` — the fixed part counted by `len`.
pub const HEADER_LEN: usize = 9;

/// Upper bound on `len`: answers are bounded by the augmentation fan-out,
/// metrics exports by the store count; 1 MiB is an order of magnitude of
/// headroom over both.
pub const MAX_FRAME: usize = 1 << 20;

/// Request verbs (the CLI command surface over the wire).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Verb {
    /// Local answer only (augmentation level 0).
    Query = 1,
    /// Full augmented search at an explicit level.
    Augment = 2,
    /// Metrics export (payload `""` → Prometheus text, `"JSON"` → JSON).
    Metrics = 3,
    /// Force a durable checkpoint cut.
    Checkpoint = 4,
}

impl Verb {
    /// Decodes a verb byte.
    pub fn from_byte(byte: u8) -> Option<Verb> {
        match byte {
            1 => Some(Verb::Query),
            2 => Some(Verb::Augment),
            3 => Some(Verb::Metrics),
            4 => Some(Verb::Checkpoint),
            _ => None,
        }
    }
}

/// Response statuses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Status {
    /// Full answer.
    Ok = 0,
    /// Admission control clamped the request to a partial (level-0)
    /// answer — exact but unaugmented, the `DegradeMode::Partial` shape.
    Degraded = 1,
    /// The request was understood but failed (or could not be decoded
    /// far enough to execute); payload is the error text.
    Error = 2,
    /// Admission control shed the request without executing it.
    Overload = 3,
}

impl Status {
    /// Decodes a status byte.
    pub fn from_byte(byte: u8) -> Option<Status> {
        match byte {
            0 => Some(Status::Ok),
            1 => Some(Status::Degraded),
            2 => Some(Status::Error),
            3 => Some(Status::Overload),
            _ => None,
        }
    }
}

/// A decoded request frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Client-chosen correlation id, echoed on the response.
    pub id: u64,
    /// What to do.
    pub verb: Verb,
    /// UTF-8 payload (shape depends on the verb).
    pub payload: String,
}

/// A decoded response frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// The request id this answers (0 for errors on undecodable frames).
    pub id: u64,
    /// Outcome class.
    pub status: Status,
    /// UTF-8 payload (answer text, metrics export, or error message).
    pub payload: String,
}

/// Why a frame could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The length word is below [`HEADER_LEN`] or above [`MAX_FRAME`];
    /// the stream is unsynchronized and must be closed.
    BadLength(usize),
    /// The body decoded far enough to carry `id`, but the verb byte is
    /// unknown — answerable with a structured error.
    UnknownVerb { id: u64, byte: u8 },
    /// The body decoded far enough to carry `id`, but the payload is not
    /// UTF-8 — answerable with a structured error.
    BadPayload { id: u64 },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::BadLength(len) => {
                write!(f, "frame length {len} outside [{HEADER_LEN}, {MAX_FRAME}]")
            }
            FrameError::UnknownVerb { byte, .. } => write!(f, "unknown verb byte {byte}"),
            FrameError::BadPayload { .. } => write!(f, "payload is not UTF-8"),
        }
    }
}

impl FrameError {
    /// The request id to answer with, when the frame decoded that far.
    /// `None` means the stream is unsynchronized.
    pub fn answerable_id(&self) -> Option<u64> {
        match self {
            FrameError::BadLength(_) => None,
            FrameError::UnknownVerb { id, .. } | FrameError::BadPayload { id } => Some(*id),
        }
    }
}

fn encode_frame(id: u64, tag: u8, payload: &[u8]) -> Vec<u8> {
    let len = (HEADER_LEN + payload.len()) as u32;
    let mut out = Vec::with_capacity(4 + len as usize);
    out.extend_from_slice(&len.to_be_bytes());
    out.extend_from_slice(&id.to_be_bytes());
    out.push(tag);
    out.extend_from_slice(payload);
    out
}

/// Encodes a request frame (length word included).
pub fn encode_request(request: &Request) -> Vec<u8> {
    encode_frame(request.id, request.verb as u8, request.payload.as_bytes())
}

/// Encodes a response frame (length word included).
pub fn encode_response(response: &Response) -> Vec<u8> {
    encode_frame(response.id, response.status as u8, response.payload.as_bytes())
}

/// Decodes a request body (the bytes *after* the length word).
pub fn decode_request(body: &[u8]) -> Result<Request, FrameError> {
    if body.len() < HEADER_LEN {
        return Err(FrameError::BadLength(body.len()));
    }
    let id = u64::from_be_bytes(body[..8].try_into().expect("8 bytes"));
    let verb = Verb::from_byte(body[8]).ok_or(FrameError::UnknownVerb { id, byte: body[8] })?;
    let payload = std::str::from_utf8(&body[HEADER_LEN..])
        .map_err(|_| FrameError::BadPayload { id })?
        .to_owned();
    Ok(Request { id, verb, payload })
}

/// Decodes a response body (the bytes *after* the length word).
pub fn decode_response(body: &[u8]) -> Result<Response, FrameError> {
    if body.len() < HEADER_LEN {
        return Err(FrameError::BadLength(body.len()));
    }
    let id = u64::from_be_bytes(body[..8].try_into().expect("8 bytes"));
    let status = Status::from_byte(body[8]).ok_or(FrameError::UnknownVerb { id, byte: body[8] })?;
    let payload = std::str::from_utf8(&body[HEADER_LEN..])
        .map_err(|_| FrameError::BadPayload { id })?
        .to_owned();
    Ok(Response { id, status, payload })
}

/// Reads one frame body from `reader`. `Ok(None)` is a clean EOF at a
/// frame boundary; EOF *inside* a frame is an error (truncated frame).
/// A length word outside `[HEADER_LEN, MAX_FRAME]` is reported without
/// consuming the body — the stream is unsynchronized past that point.
pub fn read_frame(reader: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_bytes = [0u8; 4];
    match reader.read_exact(&mut len_bytes) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len_bytes) as usize;
    if !(HEADER_LEN..=MAX_FRAME).contains(&len) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            FrameError::BadLength(len).to_string(),
        ));
    }
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body)?;
    Ok(Some(body))
}

/// Writes one already-encoded frame.
pub fn write_frame(writer: &mut impl Write, frame: &[u8]) -> io::Result<()> {
    writer.write_all(frame)?;
    writer.flush()
}

/// Builds an `AUGMENT` payload: `database \n level \n query`.
pub fn augment_payload(database: &str, level: usize, query: &str) -> String {
    format!("{database}\n{level}\n{query}")
}

/// Builds a `QUERY` payload: `database \n query`.
pub fn query_payload(database: &str, query: &str) -> String {
    format!("{database}\n{query}")
}

/// Parses an `AUGMENT` payload back into `(database, level, query)`.
pub fn parse_augment_payload(payload: &str) -> Result<(&str, usize, &str), String> {
    let (database, rest) =
        payload.split_once('\n').ok_or("AUGMENT payload needs database\\nlevel\\nquery")?;
    let (level, query) =
        rest.split_once('\n').ok_or("AUGMENT payload needs database\\nlevel\\nquery")?;
    let level: usize = level.trim().parse().map_err(|e| format!("bad level: {e}"))?;
    Ok((database, level, query))
}

/// Parses a `QUERY` payload back into `(database, query)`.
pub fn parse_query_payload(payload: &str) -> Result<(&str, &str), String> {
    payload.split_once('\n').ok_or_else(|| "QUERY payload needs database\\nquery".to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        for verb in [Verb::Query, Verb::Augment, Verb::Metrics, Verb::Checkpoint] {
            let request = Request {
                id: 0xdead_beef_cafe,
                verb,
                payload: augment_payload("transactions", 1, "SELECT * FROM x"),
            };
            let frame = encode_request(&request);
            let len = u32::from_be_bytes(frame[..4].try_into().unwrap()) as usize;
            assert_eq!(len, frame.len() - 4);
            assert_eq!(decode_request(&frame[4..]).unwrap(), request);
        }
    }

    #[test]
    fn response_round_trips() {
        for status in [Status::Ok, Status::Degraded, Status::Error, Status::Overload] {
            let response = Response { id: 7, status, payload: "answer text".to_owned() };
            let frame = encode_response(&response);
            assert_eq!(decode_response(&frame[4..]).unwrap(), response);
        }
    }

    #[test]
    fn read_frame_enforces_bounds_and_eof() {
        // Clean EOF at a boundary.
        let mut empty: &[u8] = &[];
        assert_eq!(read_frame(&mut empty).unwrap(), None);
        // Truncated length word → clean EOF is *not* reported.
        let mut short: &[u8] = &[0, 0];
        assert_eq!(read_frame(&mut short).unwrap(), None);
        // Truncated body.
        let mut torn: &[u8] = &[0, 0, 0, 9, 1, 2];
        assert_eq!(read_frame(&mut torn).unwrap_err().kind(), io::ErrorKind::UnexpectedEof);
        // Oversized length word.
        let huge = ((MAX_FRAME + 1) as u32).to_be_bytes();
        let mut bad: &[u8] = &huge;
        assert_eq!(read_frame(&mut bad).unwrap_err().kind(), io::ErrorKind::InvalidData);
        // Undersized length word (below the fixed header).
        let tiny = [0u8, 0, 0, 4, 9, 9, 9, 9];
        let mut bad: &[u8] = &tiny;
        assert_eq!(read_frame(&mut bad).unwrap_err().kind(), io::ErrorKind::InvalidData);
        // A well-formed frame reads back exactly.
        let frame = encode_request(&Request { id: 1, verb: Verb::Metrics, payload: "".into() });
        let mut cursor: &[u8] = &frame;
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), frame[4..].to_vec());
        assert_eq!(read_frame(&mut cursor).unwrap(), None);
    }

    #[test]
    fn decode_classifies_answerable_errors() {
        // Unknown verb: carries the id, answerable.
        let mut body = 42u64.to_be_bytes().to_vec();
        body.push(99);
        let err = decode_request(&body).unwrap_err();
        assert_eq!(err, FrameError::UnknownVerb { id: 42, byte: 99 });
        assert_eq!(err.answerable_id(), Some(42));
        // Bad UTF-8: carries the id, answerable.
        let mut body = 43u64.to_be_bytes().to_vec();
        body.push(Verb::Query as u8);
        body.extend_from_slice(&[0xff, 0xfe]);
        let err = decode_request(&body).unwrap_err();
        assert_eq!(err, FrameError::BadPayload { id: 43 });
        assert_eq!(err.answerable_id(), Some(43));
        // Too short for a header: unsynchronized.
        assert_eq!(decode_request(&[1, 2, 3]).unwrap_err().answerable_id(), None);
    }

    #[test]
    fn payload_builders_round_trip() {
        let p = augment_payload("transactions", 2, "SELECT *\nFROM t");
        // The query may itself contain newlines; only the first two split.
        assert_eq!(parse_augment_payload(&p).unwrap(), ("transactions", 2, "SELECT *\nFROM t"));
        let p = query_payload("catalogue", "q");
        assert_eq!(parse_query_payload(&p).unwrap(), ("catalogue", "q"));
        assert!(parse_augment_payload("no-newlines").is_err());
        assert!(parse_augment_payload("db\nnot-a-number\nq").is_err());
        assert!(parse_query_payload("no-newlines").is_err());
    }
}
