//! `quepa-serve`: the network serving front end.
//!
//! The paper's augmented-access layer fronts a polystore serving
//! interactive exploration; real polystores (BigDAWG, the tri-store
//! systems in PAPERS.md) are *services* with a network boundary. This
//! crate is that boundary for the reproduction:
//!
//! * [`protocol`] — the length-prefixed binary frame format
//!   (`[len][request-id][verb][payload]`) reusing the CLI verb surface:
//!   `QUERY` / `AUGMENT` / `METRICS` / `CHECKPOINT`.
//! * [`admission`] — the gate between accept and execute: a bounded
//!   depth counter plus an EWMA wait estimate decides Admit / Degrade
//!   (level-0 partial answer, the `DegradeMode::Partial` shape) / Shed
//!   (structured `OVERLOAD` response), with every decision counted in
//!   the `quepa-obs` registry.
//! * [`server`] — `std::net::TcpListener` accept loop, per-connection
//!   reader threads, execution on the shared PR-5 [`WorkerPool`].
//! * [`client`] — a blocking client plus the split send/read helpers the
//!   open-loop load generator in `quepa-bench` pipelines with.
//!
//! See `DESIGN.md`, "Serving model", for the frame layout and the
//! admission-control state machine.
//!
//! [`WorkerPool`]: quepa_core::WorkerPool

#![forbid(unsafe_code)]

pub mod admission;
pub mod client;
pub mod protocol;
pub mod server;

pub use admission::{AdmissionConfig, AdmissionController, Decision, Ticket};
pub use client::{read_response, send_request, Client};
pub use protocol::{
    augment_payload, decode_request, decode_response, encode_request, encode_response,
    parse_augment_payload, parse_query_payload, query_payload, read_frame, write_frame, FrameError,
    Request, Response, Status, Verb, HEADER_LEN, MAX_FRAME,
};
pub use server::Server;
