//! The TCP server: accept → frame → admit → execute → respond.
//!
//! One accept thread hands each connection to a reader thread; reader
//! threads decode frames and push admitted query work onto a shared
//! [`WorkerPool`] (the PR-5 pool type), so a single connection can have
//! many requests in flight and responses return in completion order,
//! matched by request id. Control-plane verbs (`METRICS`, `CHECKPOINT`)
//! execute inline on the reader thread — they are cheap, must not be
//! shed, and keep working while the query plane is overloaded.
//!
//! Admission control ([`AdmissionController`]) sits between decode and
//! execute. Every decision lands in the instance's `quepa-obs` registry:
//! `offered` at decode, `served` (plus `degraded`) when a response is
//! written, `shed` on rejection — so `offered == served + shed` holds
//! for every request that entered the ledger. Protocol errors never
//! enter it: an undecodable frame is answered (or the connection is
//! closed) before the gate is consulted.
//!
//! Malformed-frame policy (see `protocol`): a frame whose length word is
//! out of range leaves the stream unsynchronized — the server answers a
//! final `ERROR` with id 0 and closes; a frame that decodes far enough
//! to carry an id gets a structured `ERROR` and the connection lives on.
//! The server never panics on client bytes.

use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use quepa_core::{Quepa, WorkerPool};

use crate::admission::{AdmissionConfig, AdmissionController, Decision};
use crate::protocol::{
    decode_request, encode_response, parse_augment_payload, parse_query_payload, read_frame,
    write_frame, Request, Response, Status, Verb,
};

/// State shared by the accept thread and every connection.
struct Shared {
    quepa: Arc<Quepa>,
    gate: Arc<AdmissionController>,
    pool: WorkerPool,
    shutdown: AtomicBool,
    /// Live connection streams (keyed by connection token), kept so
    /// shutdown can unblock parked readers; handlers remove their own
    /// entry on exit.
    streams: Mutex<Vec<(u64, TcpStream)>>,
    next_conn: AtomicU64,
}

/// A running QUEPA server. Dropping it shuts everything down.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0`) and starts serving `quepa` in
    /// background threads. The executor pool is sized by
    /// `admission.width` — width 1 collapses to single-threaded serving,
    /// which must (and does: see the crate tests) answer bit-identically.
    pub fn start(
        quepa: Arc<Quepa>,
        addr: impl ToSocketAddrs,
        admission: AdmissionConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            quepa,
            gate: Arc::new(AdmissionController::new(admission)),
            pool: WorkerPool::new(admission.width),
            shutdown: AtomicBool::new(false),
            streams: Mutex::new(Vec::new()),
            next_conn: AtomicU64::new(0),
        });
        let connections = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shared = Arc::clone(&shared);
            let connections = Arc::clone(&connections);
            std::thread::Builder::new()
                .name("quepa-serve-accept".into())
                .spawn(move || accept_loop(&listener, &shared, &connections))
                .expect("spawn accept thread")
        };
        Ok(Server { addr, shared, accept: Some(accept), connections })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The admission gate (for tests and diagnostics).
    pub fn gate(&self) -> &Arc<AdmissionController> {
        &self.shared.gate
    }

    /// Stops accepting, unblocks and joins every connection thread.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        // Unblock readers parked in read_frame.
        for (_, stream) in self.shared.streams.lock().unwrap_or_else(|e| e.into_inner()).drain(..) {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        let handles: Vec<_> =
            self.connections.lock().unwrap_or_else(|e| e.into_inner()).drain(..).collect();
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    connections: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        let token = shared.next_conn.fetch_add(1, Ordering::Relaxed);
        if let Ok(keep) = stream.try_clone() {
            shared.streams.lock().unwrap_or_else(|e| e.into_inner()).push((token, keep));
        }
        let shared = Arc::clone(shared);
        let handle = std::thread::Builder::new()
            .name("quepa-serve-conn".into())
            .spawn(move || handle_connection(&shared, stream, token))
            .expect("spawn connection thread");
        connections.lock().unwrap_or_else(|e| e.into_inner()).push(handle);
    }
}

/// Writes one response under the connection's write lock; errors mean
/// the client is gone and are dropped (the reader will see EOF).
fn send(writer: &Mutex<TcpStream>, response: &Response) {
    let frame = encode_response(response);
    let mut stream = writer.lock().unwrap_or_else(|e| e.into_inner());
    let _ = write_frame(&mut *stream, &frame);
}

fn handle_connection(shared: &Arc<Shared>, stream: TcpStream, token: u64) {
    if let Ok(writer) = stream.try_clone() {
        let writer = Arc::new(Mutex::new(writer));
        read_loop(shared, BufReader::new(stream), &writer);
        // The server keeps its own clone of this socket (for shutdown),
        // so dropping our handles alone would leave the connection open:
        // close it explicitly so waiting clients see EOF.
        let _ = writer.lock().unwrap_or_else(|e| e.into_inner()).shutdown(std::net::Shutdown::Both);
    }
    let mut streams = shared.streams.lock().unwrap_or_else(|e| e.into_inner());
    streams.retain(|(t, _)| *t != token);
}

fn read_loop(
    shared: &Arc<Shared>,
    mut reader: BufReader<TcpStream>,
    writer: &Arc<Mutex<TcpStream>>,
) {
    loop {
        let body = match read_frame(&mut reader) {
            Ok(Some(body)) => body,
            Ok(None) => return,
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // Length word out of range: answer once, then close —
                // the stream is unsynchronized.
                send(writer, &Response { id: 0, status: Status::Error, payload: e.to_string() });
                return;
            }
            // Truncated frame or transport error: close quietly.
            Err(_) => return,
        };
        match decode_request(&body) {
            Ok(request) => dispatch(shared, writer, request),
            Err(e) => match e.answerable_id() {
                Some(id) => {
                    send(writer, &Response { id, status: Status::Error, payload: e.to_string() })
                }
                None => {
                    send(
                        writer,
                        &Response { id: 0, status: Status::Error, payload: e.to_string() },
                    );
                    return;
                }
            },
        }
    }
}

fn dispatch(shared: &Arc<Shared>, writer: &Arc<Mutex<TcpStream>>, request: Request) {
    match request.verb {
        Verb::Metrics => {
            let snapshot = shared.quepa.metrics_snapshot();
            let payload = if request.payload.trim().eq_ignore_ascii_case("json") {
                quepa_obs::json(&snapshot)
            } else {
                quepa_obs::prometheus_text(&snapshot)
            };
            send(writer, &Response { id: request.id, status: Status::Ok, payload });
        }
        Verb::Checkpoint => {
            let response = match shared.quepa.checkpoint_durable() {
                Ok(Some(lsn)) => Response {
                    id: request.id,
                    status: Status::Ok,
                    payload: format!("checkpoint cut written at LSN {lsn}"),
                },
                Ok(None) => Response {
                    id: request.id,
                    status: Status::Error,
                    payload: "no durable attachment (start the server with --data-dir)".into(),
                },
                Err(e) => {
                    Response { id: request.id, status: Status::Error, payload: e.to_string() }
                }
            };
            send(writer, &response);
        }
        Verb::Query | Verb::Augment => {
            let parsed = match request.verb {
                Verb::Query => parse_query_payload(&request.payload)
                    .map(|(database, query)| (database.to_owned(), 0, query.to_owned())),
                _ => parse_augment_payload(&request.payload)
                    .map(|(database, level, query)| (database.to_owned(), level, query.to_owned())),
            };
            let (database, level, query) = match parsed {
                Ok(parts) => parts,
                Err(e) => {
                    // A malformed payload is a protocol error, answered
                    // before the admission ledger is touched.
                    send(writer, &Response { id: request.id, status: Status::Error, payload: e });
                    return;
                }
            };
            let registry = Arc::clone(shared.quepa.metrics());
            registry.record_admission_offered();
            let (decision, ticket) = shared.gate.try_admit();
            let degraded = match decision {
                Decision::Shed { depth, est_wait } => {
                    registry.record_admission_shed();
                    send(
                        writer,
                        &Response {
                            id: request.id,
                            status: Status::Overload,
                            payload: format!(
                                "overload: depth={depth} est_wait_us={}",
                                est_wait.as_micros()
                            ),
                        },
                    );
                    return;
                }
                Decision::Degrade => true,
                Decision::Admit => false,
            };
            let quepa = Arc::clone(&shared.quepa);
            let gate = Arc::clone(&shared.gate);
            let writer = Arc::clone(writer);
            let id = request.id;
            shared.pool.submit(move || {
                let start = Instant::now();
                let result = quepa.serve_search(&database, &query, level, degraded);
                gate.record_service(start.elapsed());
                let response = match result {
                    Ok(answer) => Response {
                        id,
                        status: if degraded { Status::Degraded } else { Status::Ok },
                        payload: answer.normal_form().to_string(),
                    },
                    Err(e) => {
                        // An admitted request that errors was still
                        // answered: count it served so the ledger's
                        // offered == served + shed invariant holds.
                        registry.record_admission_served(false);
                        Response { id, status: Status::Error, payload: e.to_string() }
                    }
                };
                send(&writer, &response);
                drop(ticket);
            });
        }
    }
}
