//! A minimal blocking client over the wire protocol.
//!
//! [`Client`] is the one-request-at-a-time convenience used by the CLI's
//! `--connect` mode and the crate tests: it assigns ids, writes a frame,
//! and blocks for the matching response. Open-loop load generation needs
//! pipelining instead — for that, split the stream with
//! [`TcpStream::try_clone`] and drive [`send_request`] /
//! [`read_response`] from separate writer and reader threads; responses
//! arrive in completion order and carry the request id for matching.

use std::io::{self, BufReader};
use std::net::{TcpStream, ToSocketAddrs};

use crate::protocol::{
    augment_payload, decode_request, decode_response, encode_request, query_payload, read_frame,
    write_frame, Request, Response, Verb,
};

/// Writes one request frame to `stream`.
pub fn send_request(stream: &mut TcpStream, request: &Request) -> io::Result<()> {
    write_frame(stream, &encode_request(request))
}

/// Reads one response frame; `Ok(None)` is a clean EOF.
pub fn read_response(reader: &mut BufReader<TcpStream>) -> io::Result<Option<Response>> {
    let Some(body) = read_frame(reader)? else { return Ok(None) };
    decode_response(&body)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

/// Reads one *request* frame (server-side helper, used by tests).
pub fn read_request(reader: &mut BufReader<TcpStream>) -> io::Result<Option<Request>> {
    let Some(body) = read_frame(reader)? else { return Ok(None) };
    decode_request(&body)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

/// A blocking request/response client.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    next_id: u64,
}

impl Client {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { writer, reader, next_id: 1 })
    }

    /// Sends `verb` with `payload` and blocks for the response.
    pub fn call(&mut self, verb: Verb, payload: String) -> io::Result<Response> {
        let id = self.next_id;
        self.next_id += 1;
        send_request(&mut self.writer, &Request { id, verb, payload })?;
        let response = read_response(&mut self.reader)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "server closed"))?;
        if response.id != id {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("response id {} does not match request id {id}", response.id),
            ));
        }
        Ok(response)
    }

    /// `QUERY`: the local answer only.
    pub fn query(&mut self, database: &str, query: &str) -> io::Result<Response> {
        self.call(Verb::Query, query_payload(database, query))
    }

    /// `AUGMENT`: full augmented search at `level`.
    pub fn augment(&mut self, database: &str, level: usize, query: &str) -> io::Result<Response> {
        self.call(Verb::Augment, augment_payload(database, level, query))
    }

    /// `METRICS`: Prometheus text (`json = false`) or JSON.
    pub fn metrics(&mut self, json: bool) -> io::Result<Response> {
        self.call(Verb::Metrics, if json { "JSON".into() } else { String::new() })
    }

    /// `CHECKPOINT`: force a durable checkpoint cut.
    pub fn checkpoint(&mut self) -> io::Result<Response> {
        self.call(Verb::Checkpoint, String::new())
    }
}
