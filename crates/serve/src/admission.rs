//! Admission control: the bounded gate between accept and execute.
//!
//! The PR-5 worker pool queues without bound, so the bound lives here:
//! a depth counter over every request that has been admitted but not yet
//! answered, plus an EWMA of recent service times that turns depth into
//! an *estimated wait* (`depth / width × ewma` — the M/M/c back-of-envelope).
//! The decision ladder:
//!
//! ```text
//!            depth ≤ soft  ∧  est_wait ≤ deadline/2   → Admit   (full answer)
//!   soft  <  depth ≤ hard  ∨  est_wait ≤ deadline     → Degrade (level-0 answer)
//!            depth > hard  ∨  est_wait > deadline     → Shed    (OVERLOAD)
//! ```
//!
//! Degrading before shedding matches `DegradeMode::Partial`: a clamped
//! request still answers the *exact* local result, it just skips the
//! augmentation fan-out — the cheap shape that drains the queue. Only
//! when even that cannot meet the deadline does the server shed.
//!
//! Every decision is counted in the instance's `quepa-obs` registry by
//! the caller ([`Server`]); this module is pure mechanism and fully
//! deterministic given (depth, ewma), which is what the unit tests pin.
//!
//! [`Server`]: crate::server::Server

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use quepa_core::pool_width;

/// Thresholds of the admission ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Executor width the wait estimate divides by (workers draining the
    /// queue in parallel).
    pub width: usize,
    /// Depth above which requests degrade to level-0 answers.
    pub soft_depth: usize,
    /// Depth above which requests are shed outright.
    pub hard_depth: usize,
    /// Estimated-wait bound: above `deadline` shed, above `deadline/2`
    /// degrade.
    pub deadline: Duration,
}

impl Default for AdmissionConfig {
    /// Sized from the shared [`pool_width`] clamp so the gate and the
    /// executor agree on how fast the queue drains.
    fn default() -> Self {
        let width = pool_width();
        AdmissionConfig {
            width,
            soft_depth: 2 * width,
            hard_depth: 8 * width,
            deadline: Duration::from_secs(1),
        }
    }
}

/// What the gate decided for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Execute at the requested level.
    Admit,
    /// Execute clamped to level 0 (partial answer).
    Degrade,
    /// Reject with `OVERLOAD`; `depth` and `est_wait` explain why.
    Shed {
        /// Queue depth at decision time (including this request).
        depth: usize,
        /// Estimated wait at decision time.
        est_wait: Duration,
    },
}

/// The admission gate: shared by every connection of one server.
#[derive(Debug)]
pub struct AdmissionController {
    config: AdmissionConfig,
    /// Requests admitted but not yet answered.
    inflight: AtomicUsize,
    /// EWMA of service time, nanoseconds (α = 1/8). Zero until the first
    /// sample, which keeps the gate purely depth-based at cold start.
    ewma_ns: AtomicU64,
}

/// An admitted request's slot; dropping it releases the slot. Owns its
/// controller reference so it can ride into a `'static` pool job; hold
/// it across execution and call [`AdmissionController::record_service`]
/// with the measured latency before dropping.
#[derive(Debug)]
pub struct Ticket {
    controller: Arc<AdmissionController>,
}

impl Drop for Ticket {
    fn drop(&mut self) {
        self.controller.inflight.fetch_sub(1, Ordering::Relaxed);
    }
}

impl AdmissionController {
    /// A gate with the given thresholds.
    pub fn new(config: AdmissionConfig) -> Self {
        AdmissionController { config, inflight: AtomicUsize::new(0), ewma_ns: AtomicU64::new(0) }
    }

    /// The configured thresholds.
    pub fn config(&self) -> &AdmissionConfig {
        &self.config
    }

    /// Requests currently admitted but not yet answered.
    pub fn depth(&self) -> usize {
        self.inflight.load(Ordering::Relaxed)
    }

    /// The wait a newly admitted request would expect at `depth`.
    pub fn estimated_wait(&self, depth: usize) -> Duration {
        let ewma = self.ewma_ns.load(Ordering::Relaxed);
        Duration::from_nanos(ewma.saturating_mul(depth as u64) / self.config.width.max(1) as u64)
    }

    /// Runs the decision ladder for one arriving request. `Admit` and
    /// `Degrade` come with a [`Ticket`] occupying a queue slot; `Shed`
    /// occupies nothing.
    pub fn try_admit(self: &Arc<Self>) -> (Decision, Option<Ticket>) {
        let depth = self.inflight.fetch_add(1, Ordering::Relaxed) + 1;
        let est_wait = self.estimated_wait(depth);
        if depth > self.config.hard_depth || est_wait > self.config.deadline {
            self.inflight.fetch_sub(1, Ordering::Relaxed);
            return (Decision::Shed { depth, est_wait }, None);
        }
        let ticket = Ticket { controller: Arc::clone(self) };
        if depth > self.config.soft_depth || est_wait > self.config.deadline / 2 {
            (Decision::Degrade, Some(ticket))
        } else {
            (Decision::Admit, Some(ticket))
        }
    }

    /// Folds one measured service time into the EWMA (α = 1/8; the first
    /// sample seeds it whole). Load/store rather than CAS: a lost update
    /// under a race only delays convergence of an estimate.
    pub fn record_service(&self, took: Duration) {
        let sample = took.as_nanos().min(u128::from(u64::MAX)) as u64;
        let old = self.ewma_ns.load(Ordering::Relaxed);
        let new = if old == 0 { sample } else { old - old / 8 + sample / 8 };
        self.ewma_ns.store(new, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gate() -> Arc<AdmissionController> {
        Arc::new(AdmissionController::new(AdmissionConfig {
            width: 2,
            soft_depth: 2,
            hard_depth: 4,
            deadline: Duration::from_millis(100),
        }))
    }

    #[test]
    fn ladder_walks_admit_degrade_shed_on_depth() {
        let gate = gate();
        let (d1, t1) = gate.try_admit();
        let (d2, t2) = gate.try_admit();
        assert_eq!((d1, d2), (Decision::Admit, Decision::Admit));
        let (d3, t3) = gate.try_admit();
        let (d4, t4) = gate.try_admit();
        assert_eq!((d3, d4), (Decision::Degrade, Decision::Degrade));
        let (d5, t5) = gate.try_admit();
        assert!(matches!(d5, Decision::Shed { depth: 5, .. }), "{d5:?}");
        assert!(t5.is_none());
        assert_eq!(gate.depth(), 4, "a shed request occupies no slot");
        drop((t1, t2, t3, t4));
        assert_eq!(gate.depth(), 0, "tickets release their slots");
        let (d, _t) = gate.try_admit();
        assert_eq!(d, Decision::Admit, "the gate reopens once the queue drains");
    }

    #[test]
    fn estimated_wait_degrades_and_sheds_before_depth_does() {
        let gate = gate();
        // Seed the EWMA: one 80 ms sample.
        gate.record_service(Duration::from_millis(80));
        // depth 1 → est 80/2 = 40 ms ≤ 50 ms → Admit.
        let (d1, _t1) = gate.try_admit();
        assert_eq!(d1, Decision::Admit);
        // depth 2 → est 80 ms > deadline/2 → Degrade (depth alone allows).
        let (d2, _t2) = gate.try_admit();
        assert_eq!(d2, Decision::Degrade);
        // depth 3 → est 120 ms > 100 ms deadline → Shed below hard_depth.
        let (d3, t3) = gate.try_admit();
        assert!(
            matches!(d3, Decision::Shed { depth: 3, est_wait } if est_wait > Duration::from_millis(100))
        );
        assert!(t3.is_none());
    }

    #[test]
    fn ewma_converges_toward_recent_service_times() {
        let gate = gate();
        gate.record_service(Duration::from_millis(100));
        assert_eq!(gate.estimated_wait(2), Duration::from_millis(100));
        for _ in 0..64 {
            gate.record_service(Duration::from_millis(10));
        }
        let est = gate.estimated_wait(2);
        assert!(
            est < Duration::from_millis(15),
            "EWMA should approach the new 10 ms regime, got {est:?}"
        );
    }

    #[test]
    fn default_config_uses_the_shared_pool_clamp() {
        let config = AdmissionConfig::default();
        assert_eq!(config.width, pool_width());
        assert!(config.soft_depth < config.hard_depth);
    }
}
