//! Fuzz corpus for the wire protocol and the server's framing layer.
//!
//! Properties:
//!
//! 1. **No panics, classified errors**: `decode_request` over arbitrary
//!    bodies and `read_frame` over arbitrary byte streams never panic;
//!    every failure is a classified [`FrameError`] or `io::Error`.
//! 2. **Round trip**: encode ∘ decode is the identity for arbitrary
//!    requests and responses.
//! 3. **Server survives garbage**: a live server fed arbitrary malformed
//!    frames (truncated lengths, oversized lengths, garbage verbs,
//!    non-UTF-8 payloads) answers each with a structured `ERROR` or
//!    closes the connection cleanly — and keeps serving well-formed
//!    clients afterwards.
//!
//! The vendored proptest has no shrinking and therefore no
//! `proptest-regressions` corpus files; failures print the generated
//! input and deterministic case number instead (see DESIGN.md).

use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use quepa_polystore::Deployment;
use quepa_serve::{
    decode_request, decode_response, encode_request, encode_response, read_frame, read_response,
    AdmissionConfig, Client, Request, Response, Server, Status, Verb, HEADER_LEN, MAX_FRAME,
};
use quepa_workload::{BuiltPolystore, WorkloadConfig};

fn arb_verb() -> impl Strategy<Value = Verb> {
    prop_oneof![Just(Verb::Query), Just(Verb::Augment), Just(Verb::Metrics), Just(Verb::Checkpoint),]
}

fn arb_status() -> impl Strategy<Value = Status> {
    prop_oneof![
        Just(Status::Ok),
        Just(Status::Degraded),
        Just(Status::Error),
        Just(Status::Overload),
    ]
}

/// Malformed-leaning frames: whole random byte salads, frames with a
/// consistent length word but garbage header bytes, and truncations.
/// The boolean says whether every response must be `ERROR` (a raw salad
/// can, with astronomically small probability, form a valid request, so
/// that arm only asserts survival).
fn arb_wire_bytes() -> impl Strategy<Value = (Vec<u8>, bool)> {
    prop_oneof![
        // Raw byte salad (any length word, any body).
        prop::collection::vec(any::<u8>(), 0..64).prop_map(|bytes| (bytes, false)),
        // Consistent length word over a garbage body — exercises the
        // decode layer rather than the length check.
        (prop::collection::vec(any::<u8>(), 0..32)).prop_map(|body| {
            let mut frame = ((HEADER_LEN + body.len()) as u32).to_be_bytes().to_vec();
            frame.extend_from_slice(&[0u8; 8]);
            frame.push(99); // garbage verb
            frame.extend_from_slice(&body);
            (frame, true)
        }),
        // Oversized length words.
        ((MAX_FRAME as u32 + 1)..u32::MAX).prop_map(|len| (len.to_be_bytes().to_vec(), true)),
        // Undersized length words.
        (0u32..HEADER_LEN as u32).prop_map(|len| (len.to_be_bytes().to_vec(), true)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn request_encode_decode_round_trips(
        id in any::<u64>(),
        verb in arb_verb(),
        payload in "[ -~\\n]{0,128}",
    ) {
        let request = Request { id, verb, payload };
        let frame = encode_request(&request);
        prop_assert_eq!(decode_request(&frame[4..]).unwrap(), request);
    }

    #[test]
    fn response_encode_decode_round_trips(
        id in any::<u64>(),
        status in arb_status(),
        payload in "[ -~\\n]{0,128}",
    ) {
        let response = Response { id, status, payload };
        let frame = encode_response(&response);
        prop_assert_eq!(decode_response(&frame[4..]).unwrap(), response);
    }

    #[test]
    fn decode_never_panics_on_arbitrary_bodies(body in prop::collection::vec(any::<u8>(), 0..64)) {
        // Any outcome is fine; panicking is not.
        let _ = decode_request(&body);
        let _ = decode_response(&body);
    }

    #[test]
    fn read_frame_never_panics_on_arbitrary_streams(bytes in prop::collection::vec(any::<u8>(), 0..96)) {
        let mut cursor: &[u8] = &bytes;
        // Drain the stream; every step either yields a frame, a clean
        // EOF, or a classified error.
        for _ in 0..8 {
            match read_frame(&mut cursor) {
                Ok(Some(_)) => {}
                Ok(None) | Err(_) => break,
            }
        }
    }
}

/// One server shared by every fuzz case: feeding it garbage and then
/// proving a well-formed client still gets answers is the whole point.
#[test]
fn server_survives_malformed_frame_volleys() {
    let built = BuiltPolystore::build(WorkloadConfig {
        albums: 40,
        replica_sets: 0,
        deployment: Deployment::InProcess,
        seed: 99,
    });
    let quepa = Arc::new(built.into_quepa());
    let config = AdmissionConfig {
        width: 2,
        soft_depth: 64,
        hard_depth: 256,
        deadline: Duration::from_secs(60),
    };
    let server = Server::start(quepa, "127.0.0.1:0", config).unwrap();
    let addr = server.local_addr();

    // Drive the strategy by hand (the vendored proptest's macro only
    // binds plain identifiers): same deterministic per-case RNG scheme.
    let strategy = arb_wire_bytes();
    for case in 0..64u64 {
        let mut rng = proptest::TestRng::new("prop_protocol::server_survives", case);
        let (bytes, errors_only) = Strategy::gen_value(&strategy, &mut rng);
        let mut writer = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(writer.try_clone().unwrap());
        writer.set_write_timeout(Some(Duration::from_secs(5))).unwrap();
        reader.get_ref().set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        if writer.write_all(&bytes).is_ok() {
            // Half-close so a server waiting for the rest of a
            // truncated frame sees EOF instead of parking.
            let _ = writer.shutdown(std::net::Shutdown::Write);
        }
        // Drain responses until the server closes: each must be a
        // structured ERROR when the volley cannot form a request.
        loop {
            match read_response(&mut reader) {
                Ok(Some(response)) => {
                    if errors_only {
                        assert_eq!(
                            response.status,
                            Status::Error,
                            "case {case}: non-error response to {bytes:?}"
                        );
                    }
                }
                Ok(None) => break,
                // Server closed mid-frame or reset: a clean outcome for
                // an unsynchronized stream.
                Err(_) => break,
            }
        }
    }

    // After 64 garbage volleys the server still serves.
    let mut client = Client::connect(addr).unwrap();
    let response =
        client.augment("transactions", 1, "SELECT * FROM inventory WHERE seq < 5").unwrap();
    assert_eq!(response.status, Status::Ok);
    assert!(!response.payload.is_empty());
}
