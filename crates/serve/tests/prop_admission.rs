//! Property test: the admission ledger under flash-crowd arrivals.
//!
//! Random burst schedules — volleys of concurrent clients separated by
//! random pauses, the shape of a flash crowd hitting a tight gate —
//! against a live server with a narrow admission ladder. Properties:
//!
//! 1. **Two-sided accounting**: the server's admission ledger counts
//!    every request exactly once (`offered == served + shed`), and the
//!    client-observed response statuses reconcile with it exactly —
//!    `served` is the OK + DEGRADED count, `shed` is the OVERLOAD count,
//!    no request goes missing or double-counts regardless of how the
//!    volleys interleave inside the gate.
//! 2. **Structured shed responses**: every OVERLOAD payload carries a
//!    machine-readable depth and wait estimate
//!    (`overload: depth=N est_wait_us=M`) that evidences a legitimate
//!    trip — either the depth is above the hard threshold or the wait
//!    estimate is at/over the deadline (the two arms of the shed rule).
//!
//! Case count is low (each case boots a real TCP server), but every
//! case drives a different random burst schedule.

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use quepa_polystore::Deployment;
use quepa_serve::{AdmissionConfig, Client, Server, Status};
use quepa_workload::{BuiltPolystore, WorkloadConfig};

const DATABASE: &str = "transactions";
const QUERY: &str = "SELECT * FROM inventory WHERE seq < 10";

/// The narrow gate: two executors, degrade past depth 2, shed past
/// depth 4, and a deadline small enough that queue estimates trip it.
fn tight_gate() -> AdmissionConfig {
    AdmissionConfig {
        width: 2,
        soft_depth: 2,
        hard_depth: 4,
        deadline: Duration::from_millis(5),
    }
}

fn quepa() -> Arc<quepa_core::Quepa> {
    let built = BuiltPolystore::build(WorkloadConfig {
        albums: 30,
        replica_sets: 0,
        deployment: Deployment::InProcess,
        seed: 77,
    });
    Arc::new(built.into_quepa())
}

/// `overload: depth=N est_wait_us=M` → `(N, M)`.
fn parse_overload(payload: &str) -> Option<(u64, u64)> {
    let rest = payload.strip_prefix("overload: depth=")?;
    let (depth, wait) = rest.split_once(" est_wait_us=")?;
    Some((depth.parse().ok()?, wait.parse().ok()?))
}

/// A flash-crowd schedule: volleys of simultaneous clients with pauses
/// between them.
fn arb_bursts() -> impl Strategy<Value = Vec<(usize, u64)>> {
    prop::collection::vec((1usize..12, 0u64..15), 1..5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn ledger_balances_under_random_bursts(bursts in arb_bursts()) {
        let quepa = quepa();
        let config = tight_gate();
        let server =
            Server::start(Arc::clone(&quepa), "127.0.0.1:0", config).expect("start server");
        let addr = server.local_addr();

        let mut offered = 0u64;
        let (mut ok, mut degraded, mut overload) = (0u64, 0u64, 0u64);
        for &(burst, pause_ms) in &bursts {
            let responses: Vec<_> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..burst)
                    .map(|_| {
                        scope.spawn(move || {
                            let mut client = Client::connect(addr).expect("connect");
                            client.augment(DATABASE, 1, QUERY).expect("response")
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("client thread")).collect()
            });
            offered += burst as u64;
            for response in responses {
                match response.status {
                    Status::Ok => ok += 1,
                    Status::Degraded => degraded += 1,
                    Status::Overload => {
                        overload += 1;
                        let (depth, est_wait_us) = parse_overload(&response.payload)
                            .unwrap_or_else(|| {
                                panic!("unparseable overload payload: {:?}", response.payload)
                            });
                        // Shed rule: depth > hard ∨ est_wait > deadline.
                        // The payload truncates the wait to whole micros,
                        // so the deadline arm accepts equality.
                        prop_assert!(
                            depth > config.hard_depth as u64
                                || est_wait_us >= config.deadline.as_micros() as u64,
                            "shed without cause: depth {depth} <= hard_depth {} and \
                             est_wait {est_wait_us}us < deadline {}us",
                            config.hard_depth,
                            config.deadline.as_micros()
                        );
                    }
                    Status::Error => prop_assert!(false, "unexpected ERROR response"),
                }
            }
            std::thread::sleep(Duration::from_millis(pause_ms));
        }

        let ledger = quepa.metrics_snapshot().admission;
        prop_assert_eq!(ledger.offered, offered, "every request reaches the ledger once");
        prop_assert_eq!(ledger.offered, ledger.served + ledger.shed, "ledger balances");
        prop_assert_eq!(ledger.served, ok + degraded, "served reconciles with client statuses");
        prop_assert_eq!(ledger.shed, overload, "shed reconciles with OVERLOAD responses");
        prop_assert_eq!(ledger.degraded, degraded, "degraded subset reconciles");
    }
}
