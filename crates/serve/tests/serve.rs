//! End-to-end server tests over a loopback socket: answers match the
//! in-process engine bit-for-bit, admission accounting balances, the
//! control plane works, and malformed clients never take the server
//! down.

use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use quepa_core::Quepa;
use quepa_polystore::Deployment;
use quepa_serve::{
    read_response, send_request, AdmissionConfig, Client, Request, Server, Status, Verb,
};
use quepa_workload::{BuiltPolystore, WorkloadConfig};

const DATABASE: &str = "transactions";
const QUERY: &str = "SELECT * FROM inventory WHERE seq < 10";

fn quepa() -> Arc<Quepa> {
    let built = BuiltPolystore::build(WorkloadConfig {
        albums: 60,
        replica_sets: 0,
        deployment: Deployment::InProcess,
        seed: 77,
    });
    Arc::new(built.into_quepa())
}

fn wide_open() -> AdmissionConfig {
    AdmissionConfig {
        width: 4,
        soft_depth: 1024,
        hard_depth: 4096,
        deadline: Duration::from_secs(60),
    }
}

#[test]
fn served_answers_match_in_process_bit_for_bit() {
    let quepa = quepa();
    let expected = quepa
        .augmented_search(DATABASE, QUERY, 1)
        .expect("in-process query works")
        .normal_form()
        .to_string();
    let server = Server::start(Arc::clone(&quepa), "127.0.0.1:0", wide_open()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let response = client.augment(DATABASE, 1, QUERY).unwrap();
    assert_eq!(response.status, Status::Ok);
    assert_eq!(response.payload, expected, "wire answer differs from in-process answer");
    // QUERY is the level-0 surface.
    let local = client.query(DATABASE, QUERY).unwrap();
    assert_eq!(local.status, Status::Ok);
    assert_eq!(
        local.payload,
        quepa.augmented_search(DATABASE, QUERY, 0).unwrap().normal_form().to_string()
    );
}

/// The `threads_size: 1` collapse pin: a width-1 executor (single
/// serving thread) must answer bit-identically to the wide pool.
#[test]
fn single_threaded_serving_answers_bit_identically() {
    let quepa = quepa();
    let narrow = AdmissionConfig { width: 1, ..wide_open() };
    let wide = Server::start(Arc::clone(&quepa), "127.0.0.1:0", wide_open()).unwrap();
    let serial = Server::start(Arc::clone(&quepa), "127.0.0.1:0", narrow).unwrap();
    let mut wide_client = Client::connect(wide.local_addr()).unwrap();
    let mut serial_client = Client::connect(serial.local_addr()).unwrap();
    for level in [0, 1, 2] {
        let a = wide_client.augment(DATABASE, level, QUERY).unwrap();
        let b = serial_client.augment(DATABASE, level, QUERY).unwrap();
        assert_eq!(a.status, Status::Ok);
        assert_eq!(b.status, Status::Ok);
        assert_eq!(a.payload, b.payload, "level {level} diverged across pool widths");
    }
}

#[test]
fn admission_ledger_balances_served_plus_shed() {
    let quepa = quepa();
    // soft_depth 0 degrades every request (depth starts at 1) while the
    // roomy hard_depth admits them all — the all-degraded regime.
    let config = AdmissionConfig {
        width: 1,
        soft_depth: 0,
        hard_depth: 1024,
        deadline: Duration::from_secs(60),
    };
    let server = Server::start(Arc::clone(&quepa), "127.0.0.1:0", config).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    // Everything admitted at depth 1 > soft_depth 0 degrades.
    for _ in 0..5 {
        let response = client.augment(DATABASE, 1, QUERY).unwrap();
        assert_eq!(response.status, Status::Degraded);
        // The degraded payload is the exact level-0 answer.
        assert_eq!(
            response.payload,
            quepa.augmented_search(DATABASE, QUERY, 0).unwrap().normal_form().to_string()
        );
    }
    let admission = quepa.metrics_snapshot().admission;
    assert_eq!(admission.offered, 5);
    assert_eq!(admission.served, 5);
    assert_eq!(admission.degraded, 5);
    assert_eq!(admission.shed, 0);
    assert_eq!(admission.offered, admission.served + admission.shed);
}

#[test]
fn overload_response_is_structured_and_counted() {
    let quepa = quepa();
    // hard_depth 0 sheds every request at the gate (depth starts at 1).
    let config = AdmissionConfig {
        width: 1,
        soft_depth: 0,
        hard_depth: 0,
        deadline: Duration::from_secs(60),
    };
    let server = Server::start(Arc::clone(&quepa), "127.0.0.1:0", config).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let response = client.augment(DATABASE, 1, QUERY).unwrap();
    assert_eq!(response.status, Status::Overload);
    assert!(response.payload.starts_with("overload: depth="), "{}", response.payload);
    let admission = quepa.metrics_snapshot().admission;
    assert_eq!((admission.offered, admission.served, admission.shed), (1, 0, 1));
}

#[test]
fn metrics_and_checkpoint_control_plane() {
    let quepa = quepa();
    let server = Server::start(Arc::clone(&quepa), "127.0.0.1:0", wide_open()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let _ = client.augment(DATABASE, 1, QUERY).unwrap();
    let prom = client.metrics(false).unwrap();
    assert_eq!(prom.status, Status::Ok);
    assert!(prom.payload.contains("quepa_admission_offered_total 1"), "{}", prom.payload);
    let json = client.metrics(true).unwrap();
    assert_eq!(json.status, Status::Ok);
    assert!(json.payload.contains("\"admission\""), "{}", json.payload);
    // This instance has no durable attachment: CHECKPOINT answers a
    // structured error, not a hang or a panic.
    let cut = client.checkpoint().unwrap();
    assert_eq!(cut.status, Status::Error);
    assert!(cut.payload.contains("--data-dir"), "{}", cut.payload);
}

#[test]
fn pipelined_requests_come_back_with_matching_ids() {
    let quepa = quepa();
    let server = Server::start(quepa, "127.0.0.1:0", wide_open()).unwrap();
    let mut writer = TcpStream::connect(server.local_addr()).unwrap();
    let mut reader = BufReader::new(writer.try_clone().unwrap());
    let total = 16u64;
    for id in 1..=total {
        send_request(
            &mut writer,
            &Request {
                id,
                verb: Verb::Augment,
                payload: quepa_serve::augment_payload(DATABASE, 1, QUERY),
            },
        )
        .unwrap();
    }
    let mut seen = Vec::new();
    let mut payloads = std::collections::BTreeSet::new();
    for _ in 0..total {
        let response = read_response(&mut reader).unwrap().expect("response");
        assert_eq!(response.status, Status::Ok);
        payloads.insert(response.payload);
        seen.push(response.id);
    }
    seen.sort_unstable();
    assert_eq!(seen, (1..=total).collect::<Vec<_>>(), "every id answered exactly once");
    assert_eq!(payloads.len(), 1, "identical queries answer identically");
}

#[test]
fn malformed_frames_answer_errors_or_close_cleanly() {
    let quepa = quepa();
    let server = Server::start(quepa, "127.0.0.1:0", wide_open()).unwrap();
    let addr = server.local_addr();

    // Unknown verb: structured error, connection survives.
    let mut writer = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(writer.try_clone().unwrap());
    let mut frame = (9u32 + 1).to_be_bytes().to_vec();
    frame.extend_from_slice(&7u64.to_be_bytes());
    frame.push(200); // no such verb
    frame.push(b'x');
    writer.write_all(&frame).unwrap();
    let response = read_response(&mut reader).unwrap().expect("error response");
    assert_eq!((response.id, response.status), (7, Status::Error));
    // The same connection still serves.
    send_request(&mut writer, &Request { id: 8, verb: Verb::Metrics, payload: String::new() })
        .unwrap();
    let response = read_response(&mut reader).unwrap().expect("metrics response");
    assert_eq!((response.id, response.status), (8, Status::Ok));

    // Oversized length word: one final error (id 0), then close.
    let mut writer = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(writer.try_clone().unwrap());
    writer.write_all(&u32::MAX.to_be_bytes()).unwrap();
    let response = read_response(&mut reader).unwrap().expect("error response");
    assert_eq!((response.id, response.status), (0, Status::Error));
    assert_eq!(read_response(&mut reader).unwrap(), None, "stream closed after desync");

    // Truncated frame then EOF: the server just closes, no panic.
    let mut writer = TcpStream::connect(addr).unwrap();
    writer.write_all(&[0, 0, 0, 20, 1, 2, 3]).unwrap();
    drop(writer);

    // The server is still alive for well-behaved clients.
    let mut client = Client::connect(addr).unwrap();
    assert_eq!(client.metrics(false).unwrap().status, Status::Ok);
}
