//! The scale sweep: build time, resident index bytes, cold/warm
//! per-level augmentation latency and mutation-under-readers throughput
//! at 10⁴ / 10⁵ / 10⁶ objects (10⁷ with `QUEPA_SCALE_XL=1` — the nightly
//! sweep), through the sharded A' index (see [`quepa_bench::scale`]).
//!
//! `main` writes `BENCH_scale.json` at the repository root. Two headline
//! ratios are recorded and enforced by `bench_gate`:
//!
//! * `cold_latency_ratio_100x` — the worst per-level cold-latency growth
//!   from 1e4 to 1e6 objects (target ≤2× while objects grow 100×);
//! * `mutation_speedup` — whole-index-swap seconds per removal divided by
//!   sharded seconds per removal at the largest swept scale (target ≥5×).
//!
//! After the uniform sweep the run builds the adversarial topology
//! families ([`quepa_workload::TopologyFamily`]) at
//! [`scale::HOSTILE_SCALE`] objects and records per-family `build` /
//! `cold` / `warm` baselines as `hostile/<family>/...` scenarios —
//! including the supernode hub with ~1e5 p-relations, whose cold
//! latency `bench_gate` holds to an absolute ceiling.

use quepa_bench::scale;
use quepa_workload::TopologyFamily;

const LATENCY_RUNS: usize = 9;

struct Point {
    label: String,
    cold: [f64; scale::LEVELS.len()],
    warm: [f64; scale::LEVELS.len()],
    sharded: scale::MutationPoint,
    swap: scale::MutationPoint,
    build_s: f64,
    resident_bytes: usize,
    entries: usize,
}

fn sweep(objects: usize) -> Point {
    let lab = scale::build(objects);
    println!(
        "\n== {} objects: {} entries, {:.1} MiB resident, built in {:.2}s",
        objects,
        lab.entries,
        lab.resident_bytes as f64 / (1024.0 * 1024.0),
        lab.build_s
    );
    let mut cold = [0.0; scale::LEVELS.len()];
    let mut warm = [0.0; scale::LEVELS.len()];
    for (i, &level) in scale::LEVELS.iter().enumerate() {
        let (c, w) = scale::augment_latency(&lab, level, LATENCY_RUNS);
        println!("  level {level}: cold {c:.6}s  warm {w:.6}s");
        cold[i] = c;
        warm[i] = w;
    }
    let sharded = scale::mutation_throughput_sharded(&lab);
    let swap = scale::mutation_throughput_swap(&lab);
    println!(
        "  mutations x{} under {} readers: sharded {:.1}/s ({} reads), swap {:.1}/s ({} reads)",
        sharded.mutations,
        scale::READERS,
        sharded.qps,
        sharded.reads,
        swap.qps,
        swap.reads
    );
    Point {
        label: scale::scale_label(objects),
        cold,
        warm,
        sharded,
        swap,
        build_s: lab.build_s,
        resident_bytes: lab.resident_bytes,
        entries: lab.entries,
    }
}

fn main() {
    let mut counts = vec![10_000usize, 100_000, 1_000_000];
    if std::env::var("QUEPA_SCALE_XL").is_ok_and(|v| v == "1") {
        counts.push(10_000_000);
    }
    let points: Vec<Point> = counts.iter().map(|&n| sweep(n)).collect();

    struct HostilePoint {
        family: TopologyFamily,
        level: usize,
        objects: usize,
        relations: usize,
        entries: usize,
        build_s: f64,
        cold: f64,
        warm: f64,
    }
    let hostile_points: Vec<HostilePoint> = TopologyFamily::ALL
        .into_iter()
        .map(|family| {
            let lab = scale::build_hostile(family, scale::HOSTILE_SCALE);
            let level = scale::hostile_level(family);
            let (cold, warm) =
                scale::augment_latency_on(&lab.sharded, &lab.seeds, level, LATENCY_RUNS);
            println!(
                "\n== hostile {}: {} objects / {} relations -> {} entries, built in {:.2}s\n  \
                 level {level}: cold {cold:.6}s  warm {warm:.6}s",
                family.name(),
                lab.objects,
                lab.relations,
                lab.entries,
                lab.build_s
            );
            HostilePoint {
                family,
                level,
                objects: lab.objects,
                relations: lab.relations,
                entries: lab.entries,
                build_s: lab.build_s,
                cold,
                warm,
            }
        })
        .collect();

    let at = |label: &str| points.iter().find(|p| p.label == label);
    let (small, large) = (at("1e4").expect("1e4 swept"), at("1e6").expect("1e6 swept"));
    let cold_ratio = scale::LEVELS
        .iter()
        .enumerate()
        .map(|(i, _)| large.cold[i] / small.cold[i])
        .fold(0.0f64, f64::max);
    let last = points.last().expect("at least one point");
    let speedup = last.swap.mean_s / last.sharded.mean_s;
    println!(
        "\ncold latency growth 1e4 -> 1e6 (worst level): {cold_ratio:.2}x (target <= 2x)\n\
         mutation speedup sharded vs whole-index swap at {}: {speedup:.2}x (target >= 5x)",
        last.label
    );

    let mut entries = Vec::new();
    for p in &points {
        entries.push(format!(
            "    {{\"scenario\": \"scale/{}/build\", \"mean_s\": {:.9}, \"resident_bytes\": {}, \"entries\": {}}}",
            p.label, p.build_s, p.resident_bytes, p.entries
        ));
        for (i, &level) in scale::LEVELS.iter().enumerate() {
            entries.push(format!(
                "    {{\"scenario\": \"scale/{}/level{level}/cold\", \"mean_s\": {:.9}}}",
                p.label, p.cold[i]
            ));
            entries.push(format!(
                "    {{\"scenario\": \"scale/{}/level{level}/warm\", \"mean_s\": {:.9}}}",
                p.label, p.warm[i]
            ));
        }
        entries.push(format!(
            "    {{\"scenario\": \"scale/{}/mutation/sharded\", \"mean_s\": {:.9}, \"qps\": {:.1}, \"reads\": {}}}",
            p.label, p.sharded.mean_s, p.sharded.qps, p.sharded.reads
        ));
        entries.push(format!(
            "    {{\"scenario\": \"scale/{}/mutation/swap\", \"mean_s\": {:.9}, \"qps\": {:.1}, \"reads\": {}}}",
            p.label, p.swap.mean_s, p.swap.qps, p.swap.reads
        ));
    }
    for h in &hostile_points {
        entries.push(format!(
            "    {{\"scenario\": \"hostile/{}/build\", \"mean_s\": {:.9}, \"objects\": {}, \
             \"relations\": {}, \"entries\": {}}}",
            h.family.name(),
            h.build_s,
            h.objects,
            h.relations,
            h.entries
        ));
        entries.push(format!(
            "    {{\"scenario\": \"hostile/{}/cold\", \"mean_s\": {:.9}, \"level\": {}}}",
            h.family.name(),
            h.cold,
            h.level
        ));
        entries.push(format!(
            "    {{\"scenario\": \"hostile/{}/warm\", \"mean_s\": {:.9}, \"level\": {}}}",
            h.family.name(),
            h.warm,
            h.level
        ));
    }
    let json = format!(
        "{{\n  \"benchmark\": \"scale\",\n  \"readers\": {},\n  \"mutations\": {},\n  \
         \"cold_latency_ratio_100x\": {cold_ratio:.3},\n  \"target_latency_ratio\": 2.0,\n  \
         \"mutation_speedup\": {speedup:.2},\n  \"target_mutation_speedup\": 5.0,\n  \
         \"scenarios\": [\n{}\n  ]\n}}\n",
        scale::READERS,
        scale::MUTATIONS,
        entries.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scale.json");
    std::fs::write(path, &json).expect("write baseline json");
    println!("\nwrote {path}");
    print!("{json}");
}
