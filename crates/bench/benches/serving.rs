//! The open-loop serving sweep: offered rates from sub-saturation to 2×
//! measured capacity against the `quepa-serve` TCP front end (see
//! [`quepa_bench::serving`]).
//!
//! `main` writes `BENCH_serving.json` at the repository root. Three
//! headline ratios are recorded and enforced by `bench_gate`:
//!
//! * `p999_overload_ratio` — p999 of *served* requests at 2× capacity
//!   over p999 at the sub-saturation smoke rate (target ≤ 5×: admission
//!   control must bound the tail instead of queueing forever);
//! * `goodput_floor_ratio` — goodput at 2× capacity over the peak
//!   goodput of the sweep (target ≥ 0.7: overload must not collapse
//!   throughput);
//! * `flash_recovery_ratio` — recovery-phase p999 over pre-burst p999 of
//!   the flash-crowd traffic point (target ≤ 1.15: within
//!   [`traffic::RECOVERY_GRACE_S`] seconds of burst end the tail must be
//!   back within 15% of its pre-burst level).
//!
//! After the constant-rate sweep the run replays the time-varying
//! traffic families ([`traffic::TrafficFamily`]) against the same
//! server: the diurnal ramp and the 4× flash crowd, each recorded as a
//! `serving/<family>` scenario with both the client-observed ledger and
//! the server's own admission-ledger delta (two-sided accounting).

use std::time::Duration;

use quepa_bench::{serving, traffic};
use quepa_serve::Server;

/// Seconds each sweep point offers load for; the nightly overload-soak
/// job stretches this via `QUEPA_SERVING_POINT_SECS`.
fn point_secs() -> u64 {
    std::env::var("QUEPA_SERVING_POINT_SECS").ok().and_then(|s| s.parse().ok()).unwrap_or(4)
}

struct Point {
    fraction: f64,
    rate: f64,
    report: serving::OpenLoopReport,
}

/// One replayed time-varying traffic point: client-side report plus the
/// server admission-ledger delta across the run.
struct TrafficPoint {
    family: traffic::TrafficFamily,
    report: serving::OpenLoopReport,
    ledger_offered: u64,
    ledger_served: u64,
    ledger_degraded: u64,
    ledger_shed: u64,
}

fn main() {
    let point_secs = point_secs();
    let quepa = serving::bench_quepa();
    let server =
        Server::start(std::sync::Arc::clone(&quepa), "127.0.0.1:0", serving::bench_admission())
            .unwrap();
    let addr = server.local_addr();

    println!("probing capacity (overload burst) ...");
    let capacity = serving::probe_capacity(addr);
    println!("peak sustainable goodput ~= {capacity:.1} qps");

    let points: Vec<Point> = serving::SWEEP_FRACTIONS
        .iter()
        .enumerate()
        .map(|(i, &fraction)| {
            let rate = (capacity * fraction).max(1.0);
            let report = serving::measure_open_loop(
                addr,
                serving::OpenLoopSpec {
                    rate,
                    duration: Duration::from_secs(point_secs),
                    connections: serving::CONNECTIONS,
                    seed: 0xC0FFEE + i as u64,
                },
            );
            println!(
                "{}: offered {:.0}/s -> {} reqs, goodput {:.1} qps, p50 {:.4}s p99 {:.4}s p999 {:.4}s, shed {:.1}% ({} errors)",
                serving::scenario_name(fraction),
                rate,
                report.offered,
                report.goodput_qps,
                report.percentile_s(0.50),
                report.percentile_s(0.99),
                report.percentile_s(0.999),
                100.0 * report.shed_rate(),
                report.errors,
            );
            assert_eq!(
                report.offered,
                report.served() + report.shed + report.errors,
                "open-loop accounting must balance"
            );
            Point { fraction, rate, report }
        })
        .collect();

    let at =
        |fraction: f64| points.iter().find(|p| p.fraction == fraction).expect("fraction swept");
    let smoke = at(serving::SMOKE_FRACTION);
    let overload = at(2.0);
    let p999_ratio =
        overload.report.percentile_s(0.999) / smoke.report.percentile_s(0.999).max(1e-9);
    let peak = points.iter().map(|p| p.report.goodput_qps).fold(0.0f64, f64::max);
    let goodput_floor = overload.report.goodput_qps / peak.max(1e-9);
    println!(
        "\np999 under 2x overload vs sub-saturation: {p999_ratio:.2}x (target <= 5x)\n\
         goodput floor at 2x overload: {goodput_floor:.2} of peak {peak:.1} qps (target >= 0.7)"
    );

    // Time-varying traffic families against the same live server. Each
    // point runs 5× the constant-rate point length so the flash crowd
    // has meaningful pre-burst / burst / recovery windows.
    let horizon_s = (5 * point_secs) as f64;
    let traffic_points: Vec<TrafficPoint> = traffic::TrafficFamily::ALL
        .iter()
        .enumerate()
        .map(|(i, &family)| {
            println!("\nreplaying {} traffic for {horizon_s:.0}s ...", family.name());
            let schedule = family.schedule(capacity, horizon_s, 0xD1F0 + i as u64);
            let before = quepa.metrics_snapshot().admission;
            let report =
                serving::measure_schedule(addr, &schedule, serving::CONNECTIONS, horizon_s);
            let after = quepa.metrics_snapshot().admission;
            println!(
                "{}: {} reqs, goodput {:.1} qps, p999 {:.4}s, shed {:.1}% ({} errors)",
                family.name(),
                report.offered,
                report.goodput_qps,
                report.percentile_s(0.999),
                100.0 * report.shed_rate(),
                report.errors,
            );
            assert_eq!(
                report.offered,
                report.served() + report.shed + report.errors,
                "open-loop accounting must balance"
            );
            TrafficPoint {
                family,
                report,
                ledger_offered: after.offered - before.offered,
                ledger_served: after.served - before.served,
                ledger_degraded: after.degraded - before.degraded,
                ledger_shed: after.shed - before.shed,
            }
        })
        .collect();

    let flash = traffic_points
        .iter()
        .find(|p| p.family == traffic::TrafficFamily::FlashCrowd)
        .expect("flash crowd replayed");
    let [pre_w, burst_w, recovery_w] = traffic::flash_phases(horizon_s);
    let pre = flash.report.phase(pre_w.0, pre_w.1);
    let burst = flash.report.phase(burst_w.0, burst_w.1);
    let recovery = flash.report.phase(recovery_w.0, recovery_w.1);
    let flash_recovery_ratio = recovery.percentile_s(0.999) / pre.percentile_s(0.999).max(1e-9);
    println!(
        "\nflash crowd: pre p999 {:.4}s, burst shed {:.1}%, recovery p999 {:.4}s -> \
         recovery ratio {flash_recovery_ratio:.2}x (target <= 1.15x, grace {:.0}s)",
        pre.percentile_s(0.999),
        100.0 * burst.shed as f64 / burst.offered.max(1) as f64,
        recovery.percentile_s(0.999),
        traffic::RECOVERY_GRACE_S,
    );

    let mut entries = Vec::new();
    for p in &points {
        entries.push(format!(
            "    {{\"scenario\": \"{}\", \"mean_s\": {:.9}, \"rate\": {:.1}, \"qps\": {:.1}, \
             \"p50_s\": {:.9}, \"p99_s\": {:.9}, \"p999_s\": {:.9}, \"shed_rate\": {:.4}, \
             \"offered\": {}, \"served\": {}, \"degraded\": {}, \"shed\": {}, \"errors\": {}}}",
            serving::scenario_name(p.fraction),
            p.report.mean_s(),
            p.rate,
            p.report.goodput_qps,
            p.report.percentile_s(0.50),
            p.report.percentile_s(0.99),
            p.report.percentile_s(0.999),
            p.report.shed_rate(),
            p.report.offered,
            p.report.served(),
            p.report.degraded,
            p.report.shed,
            p.report.errors,
        ));
    }
    for p in &traffic_points {
        let mut entry = format!(
            "    {{\"scenario\": \"serving/{}\", \"mean_s\": {:.9}, \"qps\": {:.1}, \
             \"p50_s\": {:.9}, \"p99_s\": {:.9}, \"p999_s\": {:.9}, \"shed_rate\": {:.4}, \
             \"offered\": {}, \"served\": {}, \"degraded\": {}, \"shed\": {}, \"errors\": {}, \
             \"ledger_offered\": {}, \"ledger_served\": {}, \"ledger_degraded\": {}, \
             \"ledger_shed\": {}",
            p.family.name(),
            p.report.mean_s(),
            p.report.goodput_qps,
            p.report.percentile_s(0.50),
            p.report.percentile_s(0.99),
            p.report.percentile_s(0.999),
            p.report.shed_rate(),
            p.report.offered,
            p.report.served(),
            p.report.degraded,
            p.report.shed,
            p.report.errors,
            p.ledger_offered,
            p.ledger_served,
            p.ledger_degraded,
            p.ledger_shed,
        );
        if p.family == traffic::TrafficFamily::FlashCrowd {
            for (tag, phase) in [("pre", &pre), ("burst", &burst), ("recovery", &recovery)] {
                entry.push_str(&format!(
                    ", \"{tag}_offered\": {}, \"{tag}_served\": {}, \"{tag}_shed\": {}, \
                     \"{tag}_errors\": {}",
                    phase.offered,
                    phase.served(),
                    phase.shed,
                    phase.errors,
                ));
            }
            entry.push_str(&format!(
                ", \"pre_p999_s\": {:.9}, \"recovery_p999_s\": {:.9}, \
                 \"recovery_ratio\": {flash_recovery_ratio:.4}",
                pre.percentile_s(0.999),
                recovery.percentile_s(0.999),
            ));
        }
        entry.push('}');
        entries.push(entry);
    }
    let json = format!(
        "{{\n  \"benchmark\": \"serving\",\n  \"capacity_qps\": {capacity:.1},\n  \
         \"connections\": {},\n  \"point_secs\": {point_secs},\n  \
         \"p999_overload_ratio\": {p999_ratio:.3},\n  \"target_p999_ratio\": 5.0,\n  \
         \"goodput_floor_ratio\": {goodput_floor:.3},\n  \"target_goodput_floor\": 0.7,\n  \
         \"flash_recovery_ratio\": {flash_recovery_ratio:.3},\n  \
         \"target_flash_recovery_ratio\": 1.15,\n  \
         \"scenarios\": [\n{}\n  ]\n}}\n",
        serving::CONNECTIONS,
        entries.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serving.json");
    std::fs::write(path, &json).expect("write baseline json");
    println!("\nwrote {path}");
    print!("{json}");
}
