//! Criterion micro-version of Fig. 11: the concurrent augmenters while
//! THREADS_SIZE varies, and the augmenter family side by side.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use quepa_bench::Lab;
use quepa_core::{AugmenterKind, QuepaConfig};
use quepa_polystore::{Deployment, StoreKind};
use quepa_workload::queries::query_for;

fn bench_threads(c: &mut Criterion) {
    let lab = Lab::new(800, 1, Deployment::Centralized);
    let query = query_for(StoreKind::Relational, 400);
    let mut group = c.benchmark_group("fig11-threads");
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    group.sample_size(10);
    for augmenter in [
        AugmenterKind::Inner,
        AugmenterKind::Outer,
        AugmenterKind::OuterBatch,
        AugmenterKind::OuterInner,
    ] {
        for threads in [1usize, 4, 16] {
            let config = QuepaConfig {
                augmenter,
                threads_size: threads,
                batch_size: 128,
                cache_size: 0,
                ..QuepaConfig::default()
            };
            group.bench_with_input(
                BenchmarkId::new(augmenter.name(), threads),
                &config,
                |b, config| {
                    b.iter(|| lab.run("transactions", &query, 0, *config, true));
                },
            );
        }
    }
    group.finish();
}

fn bench_family(c: &mut Criterion) {
    let lab = Lab::new(800, 1, Deployment::Centralized);
    let query = query_for(StoreKind::Document, 400);
    let mut group = c.benchmark_group("fig11-family");
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    group.sample_size(10);
    for augmenter in AugmenterKind::ALL {
        let config = QuepaConfig {
            augmenter,
            threads_size: 8,
            batch_size: 128,
            cache_size: 0,
            ..QuepaConfig::default()
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(augmenter.name()),
            &config,
            |b, config| {
                b.iter(|| lab.run("catalogue", &query, 1, *config, true));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_threads, bench_family);
criterion_main!(benches);
