//! Concurrent-serving throughput: one shared QUEPA instance, 1 / 4 / 16 /
//! 64 closed-loop clients issuing the same 50-seed augmented search over
//! the distributed 10-store polystore (see [`quepa_bench::throughput`]
//! for the serving configuration and why `threads_size = 1` /
//! `cache_size = 0`).
//!
//! `main` writes `BENCH_throughput.json` at the repository root: QPS,
//! wall seconds per query (`mean_s`, the gate's comparison unit) and
//! p50/p99 per-query latency for each client count, plus the headline
//! 16-client-vs-serial QPS ratio (target ≥4×, enforced by `bench_gate`).
//!
//! A second sweep replays per-client Zipf(1.1) window-query streams with
//! the cache on (`zipf/*` scenarios) — the skewed-workload serving path
//! through the sharded LRU and single-flight table.

use quepa_bench::throughput;

fn main() {
    let lab = throughput::lab();
    let mut entries = Vec::new();
    let mut points = Vec::new();
    println!(
        "{:>8} {:>9} {:>10} {:>11} {:>10} {:>10}",
        "clients", "queries", "qps", "mean_s", "p50_s", "p99_s"
    );
    for clients in throughput::CLIENT_LEVELS {
        let p = throughput::measure(&lab, clients, throughput::default_per_client(clients));
        println!(
            "{:>8} {:>9} {:>10.1} {:>11.6} {:>10.6} {:>10.6}",
            p.clients, p.queries, p.qps, p.mean_s, p.p50_s, p.p99_s
        );
        entries.push(format!(
            "    {{\"scenario\": \"{}\", \"mean_s\": {:.6}, \"qps\": {:.1}, \"p50_s\": {:.6}, \"p99_s\": {:.6}}}",
            throughput::scenario_name(clients),
            p.mean_s,
            p.qps,
            p.p50_s,
            p.p99_s
        ));
        points.push(p);
    }
    let qps_of = |clients: usize| {
        points.iter().find(|p| p.clients == clients).map(|p| p.qps).unwrap_or(f64::NAN)
    };
    let ratio = qps_of(16) / qps_of(1);
    println!("\n16-client vs serial QPS ratio: {ratio:.2}x (target >= 4x)");

    println!(
        "\nZipf(s={}) skewed serving, {} ranks x {}-object windows, cache on:",
        throughput::ZIPF_S,
        throughput::ZIPF_RANKS,
        throughput::ZIPF_WINDOW
    );
    println!(
        "{:>8} {:>9} {:>10} {:>11} {:>10} {:>10}",
        "clients", "queries", "qps", "mean_s", "p50_s", "p99_s"
    );
    for clients in throughput::CLIENT_LEVELS {
        let p = throughput::measure_zipf(&lab, clients, throughput::default_per_client(clients));
        println!(
            "{:>8} {:>9} {:>10.1} {:>11.6} {:>10.6} {:>10.6}",
            p.clients, p.queries, p.qps, p.mean_s, p.p50_s, p.p99_s
        );
        entries.push(format!(
            "    {{\"scenario\": \"{}\", \"mean_s\": {:.6}, \"qps\": {:.1}, \"p50_s\": {:.6}, \"p99_s\": {:.6}}}",
            throughput::zipf_scenario_name(clients),
            p.mean_s,
            p.qps,
            p.p50_s,
            p.p99_s
        ));
    }

    let json = format!(
        "{{\n  \"benchmark\": \"throughput\",\n  \"query\": \"{}\",\n  \"qps_ratio_c16_vs_c1\": {:.2},\n  \"target_ratio\": 4.0,\n  \"scenarios\": [\n{}\n  ]\n}}\n",
        throughput::QUERY.replace('"', "\\\""),
        ratio,
        entries.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_throughput.json");
    std::fs::write(path, &json).expect("write baseline json");
    println!("\nwrote {path}");
    print!("{json}");
}
