//! Microbenchmarks of the four storage engines' native query paths — the
//! substrate costs underneath every augmentation experiment.

use criterion::{criterion_group, criterion_main, Criterion};
use quepa_bench::Lab;
use quepa_polystore::Deployment;

fn bench_stores(c: &mut Criterion) {
    let lab = Lab::new(2_000, 0, Deployment::InProcess);
    let mut group = c.benchmark_group("stores-native");
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));

    group.bench_function("relational-like-scan", |b| {
        b.iter(|| {
            lab.polystore
                .execute("transactions", "SELECT * FROM inventory WHERE name LIKE '%wish%'")
                .unwrap()
        });
    });
    group.bench_function("relational-range", |b| {
        b.iter(|| {
            lab.polystore
                .execute("transactions", "SELECT * FROM inventory WHERE seq < 500")
                .unwrap()
        });
    });
    group.bench_function("document-filter", |b| {
        b.iter(|| {
            lab.polystore.execute("catalogue", r#"db.albums.find({"seq":{"$lt":500}})"#).unwrap()
        });
    });
    group.bench_function("graph-pattern", |b| {
        b.iter(|| {
            lab.polystore.execute("similar", "MATCH (n:Album) WHERE n.seq < 500 RETURN n").unwrap()
        });
    });
    group.bench_function("kv-scan", |b| {
        b.iter(|| lab.polystore.execute("discount", "SCAN k COUNT 500").unwrap());
    });
    group.bench_function("point-get-by-global-key", |b| {
        let key: quepa_pdm::GlobalKey = "transactions.inventory.a77".parse().unwrap();
        b.iter(|| lab.polystore.get(&key).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_stores);
criterion_main!(benches);
