//! Ablation benchmarks for QUEPA's design choices:
//!
//! * **LRU cache on/off** — what the §IV-C cache buys on repeated queries;
//! * **Consistency materialization** — the insert-time cost of enforcing
//!   the Consistency Condition / identity transitivity (raw edge insertion
//!   vs. the materializing insert path);
//! * **Canonical vs. per-seed augmentation planning** — the CPU price of
//!   the work-partition step that lets the outer augmenters parallelize;
//! * **Batch grouping** — grouping keys by store vs. the grouped fetch
//!   itself (how much of BATCH's win is grouping logic vs. round trips).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use quepa_aindex::{AIndex, EdgeOrigin};
use quepa_bench::Lab;
use quepa_core::{AugmenterKind, QuepaConfig};
use quepa_pdm::{GlobalKey, Probability, RelationKind};
use quepa_polystore::{Deployment, StoreKind};
use quepa_workload::queries::query_for;

fn key(db: usize, n: usize) -> GlobalKey {
    GlobalKey::parse_parts(format!("db{db}"), "c", format!("k{n}")).unwrap()
}

/// Cache on vs. off on a repeated (warm) query.
fn bench_cache_ablation(c: &mut Criterion) {
    let lab = Lab::new(800, 1, Deployment::Centralized);
    let query = query_for(StoreKind::Relational, 300);
    let mut group = c.benchmark_group("ablation-cache");
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    group.sample_size(10);
    for (label, cache_size) in [("off", 0usize), ("on", 1 << 20)] {
        let config = QuepaConfig {
            augmenter: AugmenterKind::OuterBatch,
            batch_size: 256,
            threads_size: 4,
            cache_size,
            ..QuepaConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(label), &config, |b, config| {
            // Warm runs: prime once, measure repeats.
            lab.quepa.set_optimizer(None);
            lab.quepa.set_config(*config);
            lab.quepa.drop_caches();
            let _ = lab.quepa.augmented_search("transactions", &query, 0);
            b.iter(|| lab.quepa.augmented_search("transactions", &query, 0).unwrap());
        });
    }
    group.finish();
}

/// The cost of consistency enforcement at insert time: the materializing
/// insert path vs. raw edge insertion of the same direct relations.
fn bench_consistency_ablation(c: &mut Criterion) {
    // Cliques of 6 copies per entity: the worst realistic case in the
    // generated workloads (13-store polystores build 10-cliques).
    let entities = 2_000usize;
    let mut group = c.benchmark_group("ablation-consistency");
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    group.sample_size(10);
    group.bench_function("materializing-insert", |b| {
        b.iter(|| {
            let mut ix = AIndex::new();
            for e in 0..entities {
                for d in 1..6 {
                    ix.insert_identity(&key(0, e), &key(d, e), Probability::of(0.9));
                }
                ix.insert_matching(&key(0, e), &key(6, e), Probability::of(0.7));
            }
            ix
        });
    });
    group.bench_function("raw-insert", |b| {
        b.iter(|| {
            let mut ix = AIndex::new();
            for e in 0..entities {
                for d in 1..6 {
                    ix.insert_raw(
                        &key(0, e),
                        &key(d, e),
                        RelationKind::Identity,
                        Probability::of(0.9),
                        EdgeOrigin::Direct,
                    );
                }
                ix.insert_raw(
                    &key(0, e),
                    &key(6, e),
                    RelationKind::Matching,
                    Probability::of(0.7),
                    EdgeOrigin::Direct,
                );
            }
            ix
        });
    });
    group.finish();
}

/// What the closure buys at *query* time: augmenting over a materialized
/// index (level 0 suffices) vs. chasing the same relations over a raw,
/// unclosed index (level must rise to reach the same objects).
fn bench_closure_query_ablation(c: &mut Criterion) {
    let entities = 2_000usize;
    let mut closed = AIndex::new();
    let mut raw = AIndex::new();
    for e in 0..entities {
        for d in 1..6 {
            closed.insert_identity(&key(0, e), &key(d, e), Probability::of(0.9));
            raw.insert_raw(
                &key(0, e),
                &key(d, e),
                RelationKind::Identity,
                Probability::of(0.9),
                EdgeOrigin::Direct,
            );
        }
    }
    let seeds: Vec<GlobalKey> = (0..200).map(|e| key(3, e * 7)).collect();
    let mut group = c.benchmark_group("ablation-closure-query");
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    // Closed: every clique member is one hop away (level 0).
    group.bench_function("closed-level0", |b| {
        b.iter(|| closed.augment(&seeds, 0));
    });
    // Raw: the star topology needs level 1 from a non-hub seed.
    group.bench_function("raw-level1", |b| {
        b.iter(|| raw.augment(&seeds, 1));
    });
    group.finish();
}

/// Batching ablation at a fixed store: one grouped round trip vs. key-at-
/// a-time fetches, isolating the grouping machinery from the network.
fn bench_grouping_ablation(c: &mut Criterion) {
    let lab = Lab::new(800, 0, Deployment::Centralized);
    let query = query_for(StoreKind::Document, 400);
    let mut group = c.benchmark_group("ablation-grouping");
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    group.sample_size(10);
    for (label, augmenter) in
        [("sequential", AugmenterKind::Sequential), ("batch", AugmenterKind::Batch)]
    {
        let config = QuepaConfig {
            augmenter,
            batch_size: 4096,
            threads_size: 1,
            cache_size: 0,
            ..QuepaConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(label), &config, |b, config| {
            b.iter(|| lab.run("catalogue", &query, 0, *config, true));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_cache_ablation,
    bench_consistency_ablation,
    bench_closure_query_ablation,
    bench_grouping_ablation
);
criterion_main!(benches);
