//! Happy-path cost of the resilience layer.
//!
//! The retry/breaker machinery must be free when nothing fails: a
//! trivial policy (the default configuration) bypasses the executor
//! entirely, and even a production-shaped policy only adds an
//! `is_trivial` check plus a breaker lookup per round trip. This bench
//! pins that claim on the hot-path scenario recorded in
//! `BENCH_augment_hotpath.json` (centralized / 10 stores / level 1 /
//! cold, embedded as `hotpath_reference` at emit time): the
//! trivial-policy mean must stay within noise of that baseline, and the
//! resilient no-fault mean close behind.
//!
//! `main` writes `BENCH_fault_overhead.json` at the repository root.

use std::time::Duration;

use criterion::{criterion_group, BenchmarkId, Criterion};
use quepa_bench::Lab;
use quepa_core::{QuepaConfig, ResilienceConfig};
use quepa_polystore::Deployment;

/// The hot-path query: 50 seeds augmenting concurrently.
const QUERY: &str = "SELECT * FROM inventory WHERE seq < 50";

/// (label, resilience) — trivial is the recorded-baseline path.
fn policies() -> [(&'static str, ResilienceConfig); 2] {
    [("trivial", ResilienceConfig::default()), ("resilient-nofault", ResilienceConfig::resilient())]
}

fn config_with(resilience: ResilienceConfig) -> QuepaConfig {
    QuepaConfig { resilience, ..QuepaConfig::default() }
}

fn bench_fault_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("fault-overhead");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    for deployment in [Deployment::InProcess, Deployment::Centralized] {
        let lab = Lab::new(200, 2, deployment); // 10 stores
        for (label, resilience) in policies() {
            let name = format!("{}/10stores/level1/cold/{label}", deployment.name());
            let config = config_with(resilience);
            group.bench_with_input(BenchmarkId::from_parameter(&name), &config, |b, config| {
                b.iter(|| lab.run("transactions", QUERY, 1, *config, true));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fault_overhead);

/// Mean end-to-end query seconds over `runs` measured executions (after
/// five throwaway warm-ups), matching the `augment_hotpath` methodology
/// (the answer's own `duration`, not a wall clock around the harness) so
/// the two baselines compare like for like.
fn measure(lab: &Lab, config: QuepaConfig, runs: usize) -> f64 {
    for _ in 0..5 {
        lab.run("transactions", QUERY, 1, config, true);
    }
    let mut total = Duration::ZERO;
    for _ in 0..runs {
        total += lab.run("transactions", QUERY, 1, config, true).0;
    }
    total.as_secs_f64() / runs as f64
}

/// The current hot-path recording this baseline embeds as its reference
/// (`bench_gate`'s overhead pin is baseline-to-baseline, so the
/// reference must track the checked-in file, not a constant).
fn hotpath_reference() -> f64 {
    let path = std::path::Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_augment_hotpath.json"
    ));
    let baseline = quepa_bench::baseline::Baseline::load(path)
        .expect("record BENCH_augment_hotpath.json first");
    baseline.means["centralized/10stores/level1/cold"]
}

fn emit_baseline() {
    let mut entries = Vec::new();
    for deployment in [Deployment::InProcess, Deployment::Centralized] {
        let lab = Lab::new(200, 2, deployment);
        for (label, resilience) in policies() {
            let mean = measure(&lab, config_with(resilience), 50);
            entries.push(format!(
                "    {{\"scenario\": \"{}/10stores/level1/cold/{label}\", \"mean_s\": {mean:.6}}}",
                deployment.name(),
            ));
        }
    }
    let json = format!(
        "{{\n  \"benchmark\": \"fault_overhead\",\n  \"query\": \"{}\",\n  \"runs_per_scenario\": 50,\n  \"hotpath_reference\": {{\"scenario\": \"centralized/10stores/level1/cold\", \"mean_s\": {:.6}}},\n  \"scenarios\": [\n{}\n  ]\n}}\n",
        QUERY.replace('"', "\\\""),
        hotpath_reference(),
        entries.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fault_overhead.json");
    std::fs::write(path, &json).expect("write baseline json");
    println!("\nwrote {path}");
    print!("{json}");
}

fn main() {
    benches();
    emit_baseline();
}
