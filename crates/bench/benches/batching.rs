//! Criterion micro-version of Fig. 9 / Fig. 10(a,b): the effect of
//! BATCH_SIZE on the BATCH and OUTER-BATCH augmenters, per deployment.
//!
//! The `figures` binary sweeps the full grid; this bench keeps a small,
//! statistically sampled subset for regression tracking.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use quepa_bench::Lab;
use quepa_core::{AugmenterKind, QuepaConfig};
use quepa_polystore::{Deployment, StoreKind};
use quepa_workload::queries::query_for;

fn bench_batching(c: &mut Criterion) {
    for deployment in [Deployment::Centralized, Deployment::Distributed] {
        let lab = Lab::new(800, 1, deployment);
        let query = query_for(StoreKind::Relational, 400);
        let mut group = c.benchmark_group(format!("fig9-batching/{}", deployment.name()));
        group.warm_up_time(std::time::Duration::from_secs(1));
        group.measurement_time(std::time::Duration::from_secs(3));
        group.sample_size(10);
        for augmenter in [AugmenterKind::Batch, AugmenterKind::OuterBatch] {
            for batch_size in [1usize, 16, 256, 4096] {
                let config = QuepaConfig {
                    augmenter,
                    batch_size,
                    threads_size: 4,
                    cache_size: 0, // cold path: every lookup hits the store
                    ..QuepaConfig::default()
                };
                group.bench_with_input(
                    BenchmarkId::new(augmenter.name(), batch_size),
                    &config,
                    |b, config| {
                        b.iter(|| lab.run("transactions", &query, 0, *config, true));
                    },
                );
            }
        }
        group.finish();
    }
}

criterion_group!(benches, bench_batching);
criterion_main!(benches);
