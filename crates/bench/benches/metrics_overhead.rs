//! Cost of the observability layer on the augmentation hot path.
//!
//! The layer must be free when disabled: with `observability: false` the
//! engine installs no thread-local context and every `record_*` call is
//! one TLS read plus a branch. This bench pins that claim on the hot-path
//! scenario recorded in `BENCH_augment_hotpath.json` (centralized /
//! 10 stores / level 1 / cold, embedded as `hotpath_reference` at emit
//! time): the disabled-path mean must stay within 2% of that baseline.
//! The enabled path is measured alongside so regressions in the
//! recording cost itself are visible too.
//!
//! `main` writes `BENCH_metrics_overhead.json` at the repository root.

use std::time::Duration;

use criterion::{criterion_group, BenchmarkId, Criterion};
use quepa_bench::Lab;
use quepa_core::QuepaConfig;
use quepa_polystore::Deployment;

/// The hot-path query: 50 seeds augmenting concurrently.
const QUERY: &str = "SELECT * FROM inventory WHERE seq < 50";

/// (label, observability) — disabled is the recorded-baseline path.
fn modes() -> [(&'static str, bool); 2] {
    [("disabled", false), ("enabled", true)]
}

fn config_with(observability: bool) -> QuepaConfig {
    QuepaConfig { observability, ..QuepaConfig::default() }
}

fn bench_metrics_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("metrics-overhead");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    for deployment in [Deployment::InProcess, Deployment::Centralized] {
        let lab = Lab::new(200, 2, deployment); // 10 stores
        for (label, observability) in modes() {
            let name = format!("{}/10stores/level1/cold/{label}", deployment.name());
            let config = config_with(observability);
            group.bench_with_input(BenchmarkId::from_parameter(&name), &config, |b, config| {
                b.iter(|| lab.run("transactions", QUERY, 1, *config, true));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_metrics_overhead);

/// Median wall-clock seconds over `runs` measured executions (after five
/// throwaway warm-ups). The run distribution is a tight sleep-dominated
/// floor plus rare scheduler spikes that can inflate a 50-run *mean* by
/// 20%+; the median recovers the stable central value (within a percent
/// of criterion's estimate on the same scenario), which is what a
/// regression gate needs to compare against.
fn measure(lab: &Lab, config: QuepaConfig, runs: usize) -> f64 {
    for _ in 0..5 {
        lab.run("transactions", QUERY, 1, config, true);
    }
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| lab.run("transactions", QUERY, 1, config, true).0.as_secs_f64())
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[runs / 2]
}

/// The current hot-path recording this baseline embeds as its reference
/// (`bench_gate`'s overhead pin is baseline-to-baseline, so the
/// reference must track the checked-in file, not a constant).
fn hotpath_reference() -> f64 {
    let path = std::path::Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_augment_hotpath.json"
    ));
    let baseline = quepa_bench::baseline::Baseline::load(path)
        .expect("record BENCH_augment_hotpath.json first");
    baseline.means["centralized/10stores/level1/cold"]
}

fn emit_baseline() {
    let mut entries = Vec::new();
    for deployment in [Deployment::InProcess, Deployment::Centralized] {
        let lab = Lab::new(200, 2, deployment);
        for (label, observability) in modes() {
            let mean = measure(&lab, config_with(observability), 50);
            entries.push(format!(
                "    {{\"scenario\": \"{}/10stores/level1/cold/{label}\", \"mean_s\": {mean:.6}}}",
                deployment.name(),
            ));
        }
    }
    let json = format!(
        "{{\n  \"benchmark\": \"metrics_overhead\",\n  \"query\": \"{}\",\n  \"runs_per_scenario\": 50,\n  \"hotpath_reference\": {{\"scenario\": \"centralized/10stores/level1/cold\", \"mean_s\": {:.6}}},\n  \"scenarios\": [\n{}\n  ]\n}}\n",
        QUERY.replace('"', "\\\""),
        hotpath_reference(),
        entries.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_metrics_overhead.json");
    std::fs::write(path, &json).expect("write baseline json");
    println!("\nwrote {path}");
    print!("{json}");
}

fn main() {
    benches();
    emit_baseline();
}
