//! Criterion micro-version of Fig. 13: QUEPA against the middleware
//! baselines on the same augmented query.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use quepa_bench::Lab;
use quepa_core::{AugmenterKind, QuepaConfig};
use quepa_polystore::{Deployment, StoreKind};
use quepa_workload::queries::query_for;

fn bench_middleware(c: &mut Criterion) {
    let lab = Lab::new(600, 1, Deployment::Centralized);
    let query = query_for(StoreKind::Document, 300);
    let middlewares = lab.middlewares(usize::MAX);
    let mut group = c.benchmark_group("fig13-middleware");
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    group.sample_size(10);

    let quepa_config = QuepaConfig {
        augmenter: AugmenterKind::OuterBatch,
        batch_size: 256,
        threads_size: 8,
        cache_size: 0,
        ..QuepaConfig::default()
    };
    group.bench_function("QUEPA", |b| {
        b.iter(|| lab.run("catalogue", &query, 0, quepa_config, true));
    });
    for m in &middlewares {
        m.warm_up().expect("warm-up");
        group.bench_with_input(BenchmarkId::from_parameter(m.name()), &query, |b, query| {
            b.iter(|| m.augmented_query("catalogue", query, 0).expect("middleware run"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_middleware);
criterion_main!(benches);
