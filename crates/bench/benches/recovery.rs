//! The durability sweep: WAL overhead on the mutation path and cold
//! recovery latency (see [`quepa_bench::recovery`]).
//!
//! `main` writes `BENCH_recovery.json` at the repository root. Two
//! headline ratios are recorded and enforced by `bench_gate`:
//!
//! * `wal_off_overhead` — volatile `apply_mutations` seconds per op over
//!   the raw sharded-update baseline (target ≤1.05×: durability must be
//!   free when unused);
//! * `recover_growth_10x` — cold recovery seconds at 10⁵ ops over 10⁴
//!   ops (target ≤25×: recovery stays roughly linear in the log).

use quepa_bench::recovery;
use quepa_bench::scale::median;
use quepa_core::SyncPolicy;

const RUNS: usize = 5;

fn measure(label: &str, f: impl Fn() -> recovery::MutationPoint) -> recovery::MutationPoint {
    let mut means: Vec<(f64, recovery::MutationPoint)> =
        (0..RUNS).map(|_| f()).map(|p| (p.mean_s, p)).collect();
    means.sort_by(|a, b| a.0.total_cmp(&b.0));
    let p = means[RUNS / 2].1;
    println!("  {label:<14} {:.9}s/op  ({:.0} ops/s)", p.mean_s, p.qps);
    p
}

fn recover_point(ops: usize) -> (String, f64, usize) {
    let stream = recovery::ops(ops);
    let dir = recovery::BenchDir::new(&format!("recover-{ops}"));
    recovery::build_durable_dir(&dir.0, &stream);
    let mut walls = Vec::with_capacity(RUNS);
    let mut replayed = 0;
    for _ in 0..RUNS {
        let (wall, report) = recovery::recover_cold(&dir.0);
        assert_eq!(report.replayed, ops - ops / 2, "recovery must replay the tail");
        replayed = report.replayed;
        walls.push(wall);
    }
    let wall = median(&mut walls);
    let label = quepa_bench::scale::scale_label(ops);
    println!("  recover/{label:<7} {wall:.6}s  ({replayed} records replayed)");
    (label, wall, replayed)
}

fn main() {
    println!("== mutation paths ({} ops, batch {})", recovery::MUTATION_OPS, recovery::BATCH);
    let stream = recovery::ops(recovery::MUTATION_OPS);
    let baseline = measure("baseline", || recovery::mutation_baseline(&stream));
    let wal_off = measure("wal-off", || recovery::mutation_wal_off(&stream));
    let buffered = measure("wal-buffered", || {
        recovery::mutation_durable(&stream, SyncPolicy::Buffered, "buffered")
    });
    let fsync =
        measure("wal-fsync", || recovery::mutation_durable(&stream, SyncPolicy::Always, "fsync"));

    println!("== cold recovery (checkpoint cut at midpoint + WAL tail)");
    let points: Vec<(String, f64, usize)> =
        [10_000usize, 100_000].into_iter().map(recover_point).collect();

    let overhead = wal_off.mean_s / baseline.mean_s;
    let growth = points[1].1 / points[0].1;
    println!(
        "\nwal-off overhead vs baseline: {overhead:.3}x (target <= 1.05x)\n\
         recovery growth 1e4 -> 1e5: {growth:.2}x (target <= 25x)"
    );

    let mut entries = Vec::new();
    for (label, p) in [
        ("baseline", baseline),
        ("wal-off", wal_off),
        ("wal-buffered", buffered),
        ("wal-fsync", fsync),
    ] {
        entries.push(format!(
            "    {{\"scenario\": \"recovery/1e4/mutation/{label}\", \"mean_s\": {:.9}, \"qps\": {:.1}}}",
            p.mean_s, p.qps
        ));
    }
    for (label, wall, replayed) in &points {
        entries.push(format!(
            "    {{\"scenario\": \"recovery/{label}/recover\", \"mean_s\": {wall:.9}, \"replayed\": {replayed}}}"
        ));
    }
    let json = format!(
        "{{\n  \"benchmark\": \"recovery\",\n  \"ops\": {},\n  \"batch\": {},\n  \
         \"wal_off_overhead\": {overhead:.3},\n  \"target_wal_off_overhead\": 1.05,\n  \
         \"recover_growth_10x\": {growth:.2},\n  \"target_recover_growth\": 25.0,\n  \
         \"scenarios\": [\n{}\n  ]\n}}\n",
        recovery::MUTATION_OPS,
        recovery::BATCH,
        entries.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_recovery.json");
    std::fs::write(path, &json).expect("write baseline json");
    println!("\nwrote {path}");
    print!("{json}");
}
