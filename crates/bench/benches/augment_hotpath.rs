//! The multi-seed augmentation hot path: a query whose answer seeds many
//! simultaneous augmentations, at levels 0 and 1, over 4- and 10-store
//! polystores, cold and warm cache, under the three paper deployments
//! (§VII-A): in-process (no simulated latency — isolates the index,
//! augmenter and cache compute this crate optimizes), centralized
//! (~50 µs per round trip) and distributed (~400 µs).
//!
//! Besides the Criterion groups, `main` re-measures every scenario with a
//! plain wall-clock loop and writes the means to
//! `BENCH_augment_hotpath.json` at the repository root, so successive
//! changes to the hot path can be compared against a recorded baseline.

use std::time::Duration;

use criterion::{criterion_group, BenchmarkId, Criterion};
use quepa_bench::Lab;
use quepa_core::QuepaConfig;
use quepa_polystore::Deployment;

/// 50 original objects ⇒ 50 concurrent augmentation seeds.
const QUERY: &str = "SELECT * FROM inventory WHERE seq < 50";

/// `(store count, replica sets)` per §VII-A: stores = 4 + 3 × sets.
const SCALES: [(usize, usize); 2] = [(4, 0), (10, 2)];

/// The three deployments of §VII-A.
const DEPLOYMENTS: [Deployment; 3] =
    [Deployment::InProcess, Deployment::Centralized, Deployment::Distributed];

fn scenario_name(deployment: Deployment, stores: usize, level: usize, cold: bool) -> String {
    format!(
        "{}/{stores}stores/level{level}/{}",
        deployment.name(),
        if cold { "cold" } else { "warm" }
    )
}

fn bench_hotpath(c: &mut Criterion) {
    let mut group = c.benchmark_group("augment-hotpath");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    for deployment in DEPLOYMENTS {
        for (stores, sets) in SCALES {
            let lab = Lab::new(200, sets, deployment);
            for level in [0usize, 1] {
                for cold in [true, false] {
                    let name = scenario_name(deployment, stores, level, cold);
                    group.bench_with_input(
                        BenchmarkId::from_parameter(&name),
                        &(level, cold),
                        |b, &(level, cold)| {
                            // Time the answer's own duration: the warm
                            // variant primes inside `Lab::run`, which must
                            // not count against the warm scenario.
                            b.iter_custom(|iters| {
                                let mut total = Duration::ZERO;
                                for _ in 0..iters {
                                    total += lab
                                        .run(
                                            "transactions",
                                            QUERY,
                                            level,
                                            QuepaConfig::default(),
                                            cold,
                                        )
                                        .0;
                                }
                                total
                            });
                        },
                    );
                }
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_hotpath);

/// Mean end-to-end query seconds over `runs` measured executions (after
/// five throwaway warm-up executions). Measures the answer's own
/// `duration`, not a wall clock around `Lab::run`: the warm variant drops
/// caches and re-runs a priming search *inside* the call, so wall-clocking
/// the whole thing charged that priming query to the warm scenario and
/// recorded warm means slower than cold ones.
fn measure(lab: &Lab, level: usize, cold: bool, runs: usize) -> f64 {
    let config = QuepaConfig::default();
    for _ in 0..5 {
        lab.run("transactions", QUERY, level, config, cold);
    }
    let mut total = Duration::ZERO;
    for _ in 0..runs {
        total += lab.run("transactions", QUERY, level, config, cold).0;
    }
    total.as_secs_f64() / runs as f64
}

fn emit_baseline() {
    let mut entries = Vec::new();
    for deployment in DEPLOYMENTS {
        for (stores, sets) in SCALES {
            let lab = Lab::new(200, sets, deployment);
            for level in [0usize, 1] {
                for cold in [true, false] {
                    let mean = measure(&lab, level, cold, 50);
                    entries.push(format!(
                        "    {{\"scenario\": \"{}\", \"mean_s\": {:.6}}}",
                        scenario_name(deployment, stores, level, cold),
                        mean
                    ));
                }
            }
        }
    }
    let json = format!(
        "{{\n  \"benchmark\": \"augment_hotpath\",\n  \"query\": \"{}\",\n  \"runs_per_scenario\": 50,\n  \"scenarios\": [\n{}\n  ]\n}}\n",
        QUERY.replace('"', "\\\""),
        entries.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_augment_hotpath.json");
    std::fs::write(path, &json).expect("write baseline json");
    println!("\nwrote {path}");
    print!("{json}");
}

fn main() {
    benches();
    emit_baseline();
}
