//! Cross-store filter pushdown vs client-side fetch-all: the same
//! filtered augmented search over the distributed 10-store lab with the
//! planner's pushdown forced on and forced off (see
//! [`quepa_bench::pushdown`] for the configuration and why
//! `threads_size = 1` / `cache_size = 0`).
//!
//! `main` writes `BENCH_pushdown.json` at the repository root: the
//! median end-to-end seconds of each mode plus the headline
//! fetch-all-over-pushdown speedup (target ≥2×, enforced by
//! `bench_gate` recorded and live). The two modes are asserted
//! bit-identical before anything is recorded.

use quepa_bench::pushdown;

const RUNS: usize = 41;

fn main() {
    let lab = pushdown::lab();
    assert!(
        pushdown::answers_agree(&lab),
        "pushdown and fetch-all disagree — run quepa-check before benching"
    );

    let mut entries = Vec::new();
    let mut means = [0.0f64; 2];
    println!("{:>10} {:>11} {:>10} {:>8}", "mode", "mean_s", "augmented", "missing");
    for (i, mode) in [true, false].into_iter().enumerate() {
        let p = pushdown::measure(&lab, mode, RUNS);
        println!(
            "{:>10} {:>11.6} {:>10} {:>8}",
            pushdown::mode_name(mode),
            p.mean_s,
            p.augmented,
            p.missing
        );
        entries.push(format!(
            "    {{\"scenario\": \"{}\", \"mean_s\": {:.6}, \"augmented\": {}, \"missing\": {}}}",
            pushdown::scenario_name(mode),
            p.mean_s,
            p.augmented,
            p.missing
        ));
        means[i] = p.mean_s;
    }
    let speedup = means[1] / means[0];
    println!("\npushdown speedup vs fetch-all: {speedup:.2}x (target >= 2x)");

    let json = format!(
        "{{\n  \"benchmark\": \"pushdown\",\n  \"query\": \"{}\",\n  \"filter\": \"{}\",\n  \"speedup\": {:.2},\n  \"target_speedup\": 2.0,\n  \"scenarios\": [\n{}\n  ]\n}}\n",
        pushdown::QUERY.replace('"', "\\\""),
        pushdown::FILTER.replace('"', "\\\""),
        speedup,
        entries.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pushdown.json");
    std::fs::write(path, &json).expect("write baseline json");
    println!("\nwrote {path}");
    print!("{json}");
}
