//! Microbenchmarks of the A' index itself: insertion (with transitivity
//! materialization), the augmentation primitive at several levels, and
//! lazy deletion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use quepa_aindex::AIndex;
use quepa_pdm::{GlobalKey, Probability};

fn key(db: usize, n: usize) -> GlobalKey {
    GlobalKey::parse_parts(format!("db{db}"), "c", format!("k{n}")).unwrap()
}

/// A uniformly dense index: cliques of 4 copies per entity plus matching
/// chains, like the workload generator's wiring.
fn build_index(entities: usize) -> AIndex {
    let mut ix = AIndex::new();
    for e in 0..entities {
        for d in 1..4 {
            ix.insert_identity(&key(0, e), &key(d, e), Probability::of(0.9));
        }
        if e > 0 {
            ix.insert_matching(&key(0, e - 1), &key(0, e), Probability::of(0.7));
        }
    }
    ix
}

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("aindex-insert");
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    group.sample_size(10);
    for entities in [1_000usize, 10_000] {
        group.bench_with_input(BenchmarkId::new("build", entities), &entities, |b, &entities| {
            b.iter(|| build_index(entities));
        });
    }
    group.finish();
}

fn bench_augment(c: &mut Criterion) {
    let ix = build_index(10_000);
    let seeds: Vec<GlobalKey> = (0..100).map(|e| key(0, e * 7)).collect();
    let mut group = c.benchmark_group("aindex-augment");
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    for level in [0usize, 1, 2, 3] {
        group.bench_with_input(BenchmarkId::new("level", level), &level, |b, &level| {
            b.iter(|| ix.augment(&seeds, level));
        });
    }
    group.finish();
}

fn bench_lazy_delete(c: &mut Criterion) {
    let mut group = c.benchmark_group("aindex-remove");
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    group.sample_size(10);
    group.bench_function("remove-1000-objects", |b| {
        b.iter_batched(
            || build_index(2_000),
            |mut ix| {
                for e in 0..1_000 {
                    ix.remove_object(&key(0, e));
                }
                ix
            },
            criterion::BatchSize::SmallInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_insert, bench_augment, bench_lazy_delete);
criterion_main!(benches);
