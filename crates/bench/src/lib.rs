//! # quepa-bench — the experiment harness
//!
//! Shared plumbing for the Criterion benches (`benches/`) and the
//! `figures` binary that regenerates every figure of §VII. One [`Lab`] is
//! one experimental polystore (a scale + replica count + deployment) with
//! its QUEPA instance and, on demand, the middleware baselines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod pushdown;
pub mod recovery;
pub mod scale;
pub mod serving;
pub mod throughput;
pub mod traffic;

use std::sync::Arc;
use std::time::Duration;

use quepa_aindex::AIndex;
use quepa_baselines::{ArangoAug, ArangoNat, MetaAug, MetaNat, Middleware, Talend};
use quepa_core::{Quepa, QuepaConfig};
use quepa_polystore::{Deployment, Polystore};
use quepa_workload::{BuiltPolystore, WorkloadConfig};

/// One experimental polystore with its QUEPA instance.
pub struct Lab {
    /// The workload parameters that built this lab.
    pub config: WorkloadConfig,
    /// The QUEPA system under test.
    pub quepa: Quepa,
    /// A handle to the same store registry (baselines share it).
    pub polystore: Polystore,
    /// A snapshot of the A' index for the baselines.
    pub index: Arc<AIndex>,
}

impl Lab {
    /// Builds a lab.
    pub fn new(albums: usize, replica_sets: usize, deployment: Deployment) -> Self {
        let config = WorkloadConfig { albums, replica_sets, deployment, seed: 42 };
        let built = BuiltPolystore::build(config);
        let polystore = built.polystore.clone();
        let index = Arc::new(built.index.clone());
        let quepa = built.into_quepa();
        Lab { config, quepa, polystore, index }
    }

    /// Runs one augmented search under `config`, cold or warm, returning
    /// `(end-to-end time, #original, #augmented)`.
    pub fn run(
        &self,
        database: &str,
        query: &str,
        level: usize,
        config: QuepaConfig,
        cold: bool,
    ) -> (Duration, usize, usize) {
        self.quepa.set_optimizer(None);
        self.quepa.set_config(config);
        if cold {
            self.quepa.drop_caches();
        } else {
            // Warm-cache runs measure "a subsequent execution of the
            // corresponding cold-cache run" (§VII-A): prime then measure.
            self.quepa.drop_caches();
            let _ = self.quepa.augmented_search(database, query, level);
        }
        let answer = self
            .quepa
            .augmented_search(database, query, level)
            .expect("experiment query must be valid");
        (answer.duration, answer.original.len(), answer.augmented.len())
    }

    /// The five middleware baselines over this lab's polystore, with the
    /// given heap budget for the memory-bound ones.
    pub fn middlewares(&self, budget_bytes: usize) -> Vec<Box<dyn Middleware>> {
        vec![
            Box::new(MetaNat::new(self.polystore.clone(), Arc::clone(&self.index), budget_bytes)),
            Box::new(MetaAug::new(self.polystore.clone(), Arc::clone(&self.index))),
            Box::new(Talend::new(self.polystore.clone(), Arc::clone(&self.index))),
            Box::new(ArangoNat::new(self.polystore.clone(), Arc::clone(&self.index), budget_bytes)),
            Box::new(ArangoAug::new(self.polystore.clone(), Arc::clone(&self.index), budget_bytes)),
        ]
    }

    /// Approximate byte size of all objects in the polystore — the
    /// reference for middleware budget scaling.
    pub fn polystore_bytes(&self) -> usize {
        // Objects average ~190 bytes in the generated workload.
        self.polystore.total_objects() * 190
    }
}

/// Output plumbing for the experiment binaries: [`say!`] prints a line
/// to stdout and, once [`output::tee_to`] has installed a sink file,
/// appends the same line there. The figures run used to be captured by
/// shell redirection and checked in; now the binary owns its artifact
/// (an ignored `figures/` directory) and the terminal stays live.
pub mod output {
    use std::fs::File;
    use std::io::Write as _;
    use std::path::Path;
    use std::sync::{Mutex, OnceLock};

    static SINK: OnceLock<Mutex<File>> = OnceLock::new();

    /// Installs `path` as the tee sink (parent directories are created).
    /// Only the first installation in a process takes effect.
    pub fn tee_to(path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let file = File::create(path)?;
        let _ = SINK.set(Mutex::new(file));
        Ok(())
    }

    /// Prints one line to stdout and to the sink, if installed.
    pub fn emit(line: std::fmt::Arguments<'_>) {
        println!("{line}");
        if let Some(sink) = SINK.get() {
            let _ = writeln!(sink.lock().expect("tee sink"), "{line}");
        }
    }
}

/// `println!` that also lands in the tee sink (see [`output`]).
#[macro_export]
macro_rules! say {
    () => { $crate::output::emit(format_args!("")) };
    ($($t:tt)*) => { $crate::output::emit(format_args!($($t)*)) };
}

/// Renders a duration in the unit the paper's axes use (seconds with
/// millisecond precision).
pub fn fmt_duration(d: Duration) -> String {
    format!("{:.4}", d.as_secs_f64())
}

/// Prints one aligned table row.
pub fn row(cells: &[String]) -> String {
    cells.iter().map(|c| format!("{c:>12}")).collect::<Vec<_>>().join(" ")
}

/// Prints a table header followed by its underline.
pub fn header(title: &str, cells: &[&str]) {
    say!("\n## {title}");
    let line = row(&cells.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    say!("{line}");
    say!("{}", "-".repeat(line.len()));
}

#[cfg(test)]
mod tests {
    use super::*;
    use quepa_core::AugmenterKind;

    #[test]
    fn lab_runs_cold_and_warm() {
        let lab = Lab::new(100, 0, Deployment::InProcess);
        let cfg = QuepaConfig::default();
        let (d_cold, orig, aug) =
            lab.run("transactions", "SELECT * FROM inventory WHERE seq < 20", 0, cfg, true);
        assert_eq!(orig, 20);
        assert!(aug > 0);
        assert!(d_cold > Duration::ZERO);
        let (_, _, aug_warm) =
            lab.run("transactions", "SELECT * FROM inventory WHERE seq < 20", 0, cfg, false);
        assert_eq!(aug, aug_warm, "warm answers the same objects");
    }

    #[test]
    fn middlewares_enumerate() {
        let lab = Lab::new(30, 0, Deployment::InProcess);
        let ms = lab.middlewares(usize::MAX);
        let names: Vec<&str> = ms.iter().map(|m| m.name()).collect();
        assert_eq!(names, vec!["META-NAT", "META-AUG", "TALEND", "ARANGO-NAT", "ARANGO-AUG"]);
        assert!(lab.polystore_bytes() > 0);
    }

    #[test]
    fn augmenters_complete_on_lab() {
        let lab = Lab::new(60, 1, Deployment::InProcess);
        for kind in AugmenterKind::ALL {
            let cfg = QuepaConfig { augmenter: kind, ..QuepaConfig::default() };
            let (_, orig, aug) =
                lab.run("catalogue", r#"db.albums.find({"seq":{"$lt":10}})"#, 1, cfg, true);
            assert_eq!(orig, 10);
            assert!(aug > 0, "{kind}");
        }
    }
}
