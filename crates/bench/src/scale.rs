//! The million-object scale sweep (`benches/scale.rs`, gated by
//! `bench_gate`).
//!
//! One [`ScaleLab`] is the A' index of a `WorkloadConfig::at_scale`
//! polystore, served through the sharded index. The sweep records, per
//! object count:
//!
//! * **build_s** — wall time to build the polystore + index;
//! * **resident bytes** — the sharded index's own accounting, summed
//!   over shards;
//! * **cold/warm augmentation latency per level** — a fixed 50-seed
//!   `augment_multi` on a fresh view (cold: first traversal, scratch
//!   allocation and cache misses included) and repeated on the same view
//!   (warm). The seed set and the per-key neighborhood are
//!   scale-invariant by the workload's uniform-density construction, so
//!   any latency growth is the index's own — the acceptance bar is ≤2×
//!   while objects grow 100×;
//! * **mutation throughput under concurrent readers** — a writer applies
//!   `remove_object` calls while [`READERS`] closed-loop reader threads
//!   augment continuously, once against the sharded delta-overlay path
//!   (`ShardedIndex::update`: one shard republished per removal) and once
//!   against the whole-index-swap baseline (`SnapshotCell::update`:
//!   clone-everything copy-on-write). The sharded path must win by ≥5×.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;
use std::time::Instant;

use quepa_aindex::{AIndex, ShardedIndex};
use quepa_core::snapshot::SnapshotCell;
use quepa_pdm::GlobalKey;
use quepa_polystore::Deployment;
use quepa_workload::{BuiltPolystore, TopologyFamily, WorkloadConfig};

/// Augmentation levels the sweep records.
pub const LEVELS: [usize; 3] = [0, 1, 2];

/// Seeds per augmentation call — matches the serving benches' 50-object
/// local query.
pub const SEEDS: usize = 50;

/// Concurrent reader threads of the mutation benchmark.
pub const READERS: usize = 16;

/// Removals applied per mutation measurement.
pub const MUTATIONS: usize = 48;

/// One built scale point.
pub struct ScaleLab {
    /// The object-count target this lab was built for.
    pub objects: usize,
    /// Wall seconds to build the polystore + index.
    pub build_s: f64,
    /// Sharded-index resident bytes, summed over shards.
    pub resident_bytes: usize,
    /// Interned index entries, summed over shards.
    pub entries: usize,
    /// The index under test, behind the sharded serving path.
    pub sharded: ShardedIndex,
    /// A pristine unsharded clone (the mutation baseline starts here).
    pub master: AIndex,
    /// The fixed augmentation seed set.
    pub seeds: Vec<GlobalKey>,
    /// Distinct removal victims, disjoint from the seeds.
    pub victims: Vec<GlobalKey>,
}

/// Builds the scale point for `objects` total data objects (in-process
/// deployment: the sweep measures the index, not simulated round trips).
pub fn build(objects: usize) -> ScaleLab {
    let config = WorkloadConfig::at_scale(objects, Deployment::InProcess, 42);
    let t0 = Instant::now();
    let built = BuiltPolystore::build(config);
    let build_s = t0.elapsed().as_secs_f64();
    let master = built.index;

    let all: Vec<GlobalKey> = master.keys().cloned().collect();
    assert!(all.len() > SEEDS + MUTATIONS, "scale lab too small: {} keys", all.len());
    let seeds: Vec<GlobalKey> = all[..SEEDS].to_vec();
    // Victims stride through the middle of the key range so every
    // measurement removes live, well-connected nodes far from the seeds.
    let stride = (all.len() - SEEDS) / (MUTATIONS + 1);
    let victims: Vec<GlobalKey> =
        (0..MUTATIONS).map(|i| all[SEEDS + (i + 1) * stride].clone()).collect();

    let sharded = ShardedIndex::new(master.clone());
    let stats = sharded.shard_stats();
    ScaleLab {
        objects,
        build_s,
        resident_bytes: stats.iter().map(|s| s.resident_bytes).sum(),
        entries: stats.iter().map(|s| s.entries).sum(),
        sharded,
        master,
        seeds,
        victims,
    }
}

/// Median cold and warm augmentation seconds at `level` over `runs`
/// measured pairs. Cold is the first `augment_multi` on a fresh view;
/// warm repeats it on the same view.
pub fn augment_latency(lab: &ScaleLab, level: usize, runs: usize) -> (f64, f64) {
    augment_latency_on(&lab.sharded, &lab.seeds, level, runs)
}

/// [`augment_latency`] against any sharded index + seed set (the scale
/// sweep and the hostile labs share the measurement).
pub fn augment_latency_on(
    sharded: &ShardedIndex,
    seeds: &[GlobalKey],
    level: usize,
    runs: usize,
) -> (f64, f64) {
    let mut cold = Vec::with_capacity(runs);
    let mut warm = Vec::with_capacity(runs);
    for _ in 0..runs {
        let view = sharded.view();
        let t0 = Instant::now();
        let first = view.augment_multi(seeds, level);
        cold.push(t0.elapsed().as_secs_f64());
        let t1 = Instant::now();
        let second = view.augment_multi(seeds, level);
        warm.push(t1.elapsed().as_secs_f64());
        assert_eq!(first, second, "augmentation must be deterministic on one view");
    }
    (median(&mut cold), median(&mut warm))
}

/// Objects per hostile topology in the recorded sweep: large enough that
/// the supernode hub carries ~1e5 p-relations — the degree the tentpole
/// names — and the deep-chain family holds >1500 chains of depth 64.
pub const HOSTILE_SCALE: usize = 100_000;

/// One built adversarial-topology point: a [`TopologyFamily`] instance
/// served through the same sharded path as the uniform scale sweep.
pub struct HostileLab {
    /// The topology family this lab instantiates.
    pub family: TopologyFamily,
    /// Objects in the topology.
    pub objects: usize,
    /// P-relations declared by the generator (identity edges expand
    /// further inside the index via clique materialization).
    pub relations: usize,
    /// Wall seconds to materialize the A' index from the topology.
    pub build_s: f64,
    /// Interned index entries, summed over shards.
    pub entries: usize,
    /// Sharded-index resident bytes, summed over shards.
    pub resident_bytes: usize,
    /// The index under test, behind the sharded serving path.
    pub sharded: ShardedIndex,
    /// The family's canonical probe seeds (hub + satellites, chain
    /// heads, or cluster representatives).
    pub seeds: Vec<GlobalKey>,
    /// The supernode hub's key, when the family has one.
    pub hub: Option<GlobalKey>,
}

/// The augmentation level each family's baseline probes at: deep chains
/// are a depth stress, the other two are breadth stresses.
pub fn hostile_level(family: TopologyFamily) -> usize {
    match family {
        TopologyFamily::DeepChain => 2,
        TopologyFamily::Supernode | TopologyFamily::NearDup => 1,
    }
}

/// Builds the hostile point for `family` at `scale` objects (seed 42,
/// like every recorded lab).
pub fn build_hostile(family: TopologyFamily, scale: usize) -> HostileLab {
    let topo = family.generate(scale, 42);
    let relations = topo.relations.len();
    let objects = topo.objects;
    let hub = topo.hub.map(|i| topo.key(i));
    let seeds = topo.probe_keys();
    let t0 = Instant::now();
    let index = topo.index();
    let build_s = t0.elapsed().as_secs_f64();
    let sharded = ShardedIndex::new(index);
    let stats = sharded.shard_stats();
    HostileLab {
        family,
        objects,
        relations,
        build_s,
        entries: stats.iter().map(|s| s.entries).sum(),
        resident_bytes: stats.iter().map(|s| s.resident_bytes).sum(),
        sharded,
        seeds,
        hub,
    }
}

/// One measured mutation run.
#[derive(Debug, Clone, Copy)]
pub struct MutationPoint {
    /// Removals applied.
    pub mutations: usize,
    /// Removals per wall-clock second.
    pub qps: f64,
    /// Wall seconds per removal (the gate's comparison unit).
    pub mean_s: f64,
    /// Reader augmentations completed during the run.
    pub reads: usize,
}

/// Mutation throughput through the sharded delta-overlay path: each
/// removal locks the writer, projects the dirty shard's overlay and
/// publishes one directory swap, while [`READERS`] threads keep
/// augmenting on their own views.
pub fn mutation_throughput_sharded(lab: &ScaleLab) -> MutationPoint {
    let sharded = ShardedIndex::new(lab.master.clone());
    run_mutations(
        &lab.victims,
        &lab.seeds,
        |seeds| {
            sharded.view().augment_multi(seeds, 1);
        },
        |key| {
            sharded.update(|ix| ix.remove_object(key));
        },
    )
}

/// Mutation throughput through the whole-index-swap baseline the sharded
/// path replaced: every removal clones the entire index copy-on-write and
/// swaps the `Arc`.
pub fn mutation_throughput_swap(lab: &ScaleLab) -> MutationPoint {
    let cell = SnapshotCell::new(lab.master.clone());
    run_mutations(
        &lab.victims,
        &lab.seeds,
        |seeds| {
            cell.load().augment_multi(seeds, 1);
        },
        |key| {
            cell.update(|ix| ix.remove_object(key));
        },
    )
}

fn run_mutations(
    victims: &[GlobalKey],
    seeds: &[GlobalKey],
    read: impl Fn(&[GlobalKey]) + Sync,
    write: impl Fn(&GlobalKey),
) -> MutationPoint {
    let stop = AtomicBool::new(false);
    let start = Barrier::new(READERS + 1);
    let mut reads = 0usize;
    let mut wall = 0.0f64;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..READERS)
            .map(|_| {
                let (read, stop, start) = (&read, &stop, &start);
                scope.spawn(move || {
                    start.wait();
                    let mut done = 0usize;
                    while !stop.load(Ordering::Relaxed) {
                        read(seeds);
                        done += 1;
                    }
                    done
                })
            })
            .collect();
        start.wait();
        let t0 = Instant::now();
        for key in victims {
            write(key);
        }
        wall = t0.elapsed().as_secs_f64();
        stop.store(true, Ordering::Relaxed);
        reads = handles.into_iter().map(|h| h.join().expect("reader thread")).sum();
    });
    MutationPoint {
        mutations: victims.len(),
        qps: victims.len() as f64 / wall,
        mean_s: wall / victims.len() as f64,
        reads,
    }
}

/// The recorded scenario-name stem for an object count (`1e4`, `1e5`, …).
pub fn scale_label(objects: usize) -> String {
    let exp = (objects as f64).log10().round() as u32;
    if objects == 10usize.pow(exp) {
        format!("1e{exp}")
    } else {
        format!("{objects}")
    }
}

/// Median of an unsorted sample (sorts in place).
pub fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_lab_measures_and_mutates() {
        let lab = build(2_000);
        assert!(lab.build_s > 0.0 && lab.resident_bytes > 0 && lab.entries > 0);
        let (cold, warm) = augment_latency(&lab, 1, 3);
        assert!(cold > 0.0 && warm > 0.0);
        let sharded = mutation_throughput_sharded(&lab);
        let swap = mutation_throughput_swap(&lab);
        assert_eq!(sharded.mutations, MUTATIONS);
        assert!(sharded.qps > 0.0 && swap.qps > 0.0);
        assert!(sharded.reads > 0, "readers must make progress during mutations");
        // The full ≥5× claim is recorded by the sweep and enforced by
        // bench_gate at 1e4; at this tiny scale just require a win.
        assert!(
            sharded.mean_s < swap.mean_s,
            "sharded removals ({:.6}s) must beat whole-index swaps ({:.6}s)",
            sharded.mean_s,
            swap.mean_s
        );
    }

    #[test]
    fn hostile_labs_build_and_probe() {
        for family in TopologyFamily::ALL {
            let lab = build_hostile(family, 2_000);
            assert_eq!(lab.family, family);
            assert!(lab.build_s > 0.0 && lab.entries > 0 && lab.resident_bytes > 0);
            assert!(lab.relations > 0 && lab.objects >= 2_000, "{}", family.name());
            assert_eq!(lab.hub.is_some(), family == TopologyFamily::Supernode);
            let (cold, warm) = augment_latency_on(&lab.sharded, &lab.seeds, hostile_level(family), 3);
            assert!(cold > 0.0 && warm > 0.0, "{}", family.name());
        }
    }

    #[test]
    fn labels_and_median() {
        assert_eq!(scale_label(10_000), "1e4");
        assert_eq!(scale_label(1_000_000), "1e6");
        assert_eq!(scale_label(12_345), "12345");
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
    }
}
