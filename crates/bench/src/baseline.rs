//! Checked-in benchmark baselines (`BENCH_*.json` at the repository root).
//!
//! The files are written by the bench binaries themselves in a fixed
//! shape, so a full JSON parser is unnecessary (and unavailable offline):
//! a scanner that pairs every `"scenario"` string with the `"mean_s"`
//! number that follows it recovers exactly the data the regression gate
//! needs, and rejects malformed files loudly.

use std::collections::BTreeMap;
use std::path::Path;

/// One baseline file: scenario name → recorded mean seconds.
#[derive(Debug, Clone, PartialEq)]
pub struct Baseline {
    /// The benchmark name (`"augment_hotpath"`, …) from the file header.
    pub benchmark: String,
    /// Recorded per-scenario means, in file order (BTreeMap for stable
    /// iteration in reports).
    pub means: BTreeMap<String, f64>,
    /// Every numeric field of every scenario object, keyed scenario →
    /// field name → value. `mean_s` appears here too; richer baselines
    /// (the serving sweep records `p999_s`, `qps`, `shed`, …) are read
    /// through this map.
    pub fields: BTreeMap<String, BTreeMap<String, f64>>,
}

impl Baseline {
    /// Loads and scans a `BENCH_*.json` file.
    pub fn load(path: &Path) -> Result<Baseline, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Baseline::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Scans the baseline shape out of the JSON text.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let benchmark =
            string_after(text, "\"benchmark\"").ok_or("missing \"benchmark\" field")?.to_owned();
        let mut means = BTreeMap::new();
        let mut fields = BTreeMap::new();
        let mut rest = text;
        while let Some(pos) = rest.find("\"scenario\"") {
            rest = &rest[pos..];
            let scenario = string_after(rest, "\"scenario\"").ok_or("unreadable scenario name")?;
            let mean = number_after(rest, "\"mean_s\"")
                .ok_or_else(|| format!("scenario {scenario:?} has no mean_s"))?;
            if means.insert(scenario.to_owned(), mean).is_some() {
                return Err(format!("duplicate scenario {scenario:?}"));
            }
            // Every `"key": number` pair up to the object's closing brace
            // (the emitters write one flat object per line, no nesting).
            let object = &rest[..rest.find('}').ok_or("unterminated scenario object")?];
            let mut numbers = BTreeMap::new();
            let mut scan = object;
            while let Some(open) = scan.find('"') {
                scan = &scan[open + 1..];
                let Some(close) = scan.find('"') else { break };
                let key = &scan[..close];
                scan = &scan[close + 1..];
                if let Some(value) = leading_number(scan) {
                    numbers.insert(key.to_owned(), value);
                }
            }
            fields.insert(scenario.to_owned(), numbers);
            rest = &rest["\"scenario\"".len()..];
        }
        // The header's hotpath_reference also carries a scenario/mean pair
        // in some files; it lives *before* the scenarios array under a
        // different key, so it never collides — but an empty set means the
        // file is not a baseline at all.
        if means.is_empty() {
            return Err("no scenarios found".into());
        }
        Ok(Baseline { benchmark, means, fields })
    }

    /// One numeric field of one scenario, when both exist.
    pub fn field(&self, scenario: &str, key: &str) -> Option<f64> {
        self.fields.get(scenario)?.get(key).copied()
    }
}

/// The string literal following `key` (after a colon), unescaped enough
/// for scenario names (which contain no escapes by construction).
fn string_after<'a>(text: &'a str, key: &str) -> Option<&'a str> {
    let after = &text[text.find(key)? + key.len()..];
    let after = after.trim_start().strip_prefix(':')?.trim_start();
    let after = after.strip_prefix('"')?;
    after.split('"').next()
}

/// The number following `key` (after a colon).
fn number_after(text: &str, key: &str) -> Option<f64> {
    leading_number(&text[text.find(key)? + key.len()..])
}

/// The number at the head of `text` (after a colon), running to the
/// first non-numeric character or the end of the slice.
fn leading_number(text: &str) -> Option<f64> {
    let after = text.trim_start().strip_prefix(':')?.trim_start();
    let end = after
        .find(|c: char| !c.is_ascii_digit() && c != '.' && c != '-' && c != '+' && c != 'e')
        .unwrap_or(after.len());
    after[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "benchmark": "augment_hotpath",
  "query": "SELECT * FROM inventory WHERE seq < 50",
  "runs_per_scenario": 50,
  "scenarios": [
    {"scenario": "in-process/4stores/level0/cold", "mean_s": 0.000673},
    {"scenario": "centralized/10stores/level1/cold", "mean_s": 0.001828}
  ]
}"#;

    #[test]
    fn parses_the_emitted_shape() {
        let b = Baseline::parse(SAMPLE).unwrap();
        assert_eq!(b.benchmark, "augment_hotpath");
        assert_eq!(b.means.len(), 2);
        assert_eq!(b.means["centralized/10stores/level1/cold"], 0.001828);
        assert_eq!(b.field("in-process/4stores/level0/cold", "mean_s"), Some(0.000673));
    }

    #[test]
    fn scans_every_numeric_field_of_a_scenario() {
        let text = r#"{
  "benchmark": "serving",
  "capacity_qps": 320.0,
  "scenarios": [
    {"scenario": "serving/open-loop/2.00x", "mean_s": 0.0421, "qps": 301.5, "p999_s": 0.31, "shed": 1204, "offered": 2560}
  ]
}"#;
        let b = Baseline::parse(text).unwrap();
        assert_eq!(b.field("serving/open-loop/2.00x", "qps"), Some(301.5));
        assert_eq!(b.field("serving/open-loop/2.00x", "p999_s"), Some(0.31));
        assert_eq!(b.field("serving/open-loop/2.00x", "offered"), Some(2560.0));
        assert_eq!(b.field("serving/open-loop/2.00x", "missing"), None);
        assert_eq!(b.field("no-such-scenario", "qps"), None);
    }

    #[test]
    fn parses_files_with_a_hotpath_reference() {
        let text = r#"{
  "benchmark": "fault_overhead",
  "hotpath_reference": {"scenario": "centralized/10stores/level1/cold", "mean_s": 0.001828},
  "scenarios": [
    {"scenario": "in-process/10stores/level1/cold/trivial", "mean_s": 0.001502}
  ]
}"#;
        let b = Baseline::parse(text).unwrap();
        // The reference pair is scanned too — harmless, the gate only
        // looks up scenarios it re-measures.
        assert_eq!(b.means["in-process/10stores/level1/cold/trivial"], 0.001502);
        assert_eq!(b.means["centralized/10stores/level1/cold"], 0.001828);
    }

    #[test]
    fn rejects_malformed_files() {
        assert!(Baseline::parse("{}").is_err(), "no benchmark field");
        assert!(
            Baseline::parse(r#"{"benchmark": "x"}"#).is_err(),
            "a baseline without scenarios is no baseline"
        );
        assert!(Baseline::parse(
            r#"{"benchmark": "x", "scenarios": [{"scenario": "a"}, {"scenario": "a"}]}"#
        )
        .is_err());
    }

    #[test]
    fn checked_in_baselines_scan() {
        for name in [
            "BENCH_augment_hotpath.json",
            "BENCH_fault_overhead.json",
            "BENCH_metrics_overhead.json",
            "BENCH_throughput.json",
            "BENCH_scale.json",
            "BENCH_recovery.json",
            "BENCH_serving.json",
        ] {
            let path =
                std::path::Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../..")).join(name);
            if !path.exists() {
                continue; // metrics baseline lands with its bench
            }
            let b = Baseline::load(&path).unwrap_or_else(|e| panic!("{e}"));
            assert!(!b.means.is_empty(), "{name}");
            for (scenario, mean) in &b.means {
                assert!(*mean > 0.0, "{name}: {scenario} has non-positive mean");
            }
        }
    }
}
