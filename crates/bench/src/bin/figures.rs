//! Regenerates every figure of §VII as printed series.
//!
//! ```text
//! figures [--fig 9|10ab|10cd|11ab|11cf|12|13ab|13cd|cache|all] [--albums N]
//! ```
//!
//! Each experiment prints the series the corresponding paper figure plots
//! (times in seconds). Scale substitutions relative to the paper are
//! printed inline, never applied silently.

use std::collections::HashMap;
use std::time::Duration;

use quepa_bench::{fmt_duration, header, row, say, Lab};
use quepa_core::{
    AdaptiveOptimizer, AugmenterKind, HumanOptimizer, Optimizer, QuepaConfig, RandomOptimizer,
};
use quepa_polystore::{Deployment, StoreKind};
use quepa_workload::experiments::{BATCH_SIZES, QUERY_SIZES, REPLICA_SETS, THREAD_COUNTS};
use quepa_workload::queries::{holdout_query_set, query_for, standard_query_set};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut fig = "all".to_owned();
    let mut albums = 10_000usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--fig" => {
                fig = args.get(i + 1).cloned().unwrap_or_default();
                i += 2;
            }
            "--albums" => {
                albums = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .expect("--albums requires a number");
                i += 2;
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }
    // Every say! line below is tee'd into the (git-ignored) figures
    // directory, so a full run leaves its artifact without shell
    // redirection and partial runs never clobber a checked-in file.
    let out = std::path::Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
        .join("figures/figures_output.txt");
    if let Err(e) = quepa_bench::output::tee_to(&out) {
        eprintln!("cannot open {}: {e}", out.display());
        std::process::exit(2);
    }
    eprintln!("(output tee'd to {})", out.display());
    say!("# QUEPA experiment harness — scale: {albums} album entities");
    say!("# (the paper's polystore is ~1000x larger; latencies are scaled 1000x down,");
    say!("#  so relative comparisons — who wins, crossovers — are the meaningful output)");

    let run_all = fig == "all";
    if run_all || fig == "9" {
        fig9_batching(albums, Deployment::Centralized, "Fig. 9");
    }
    if run_all || fig == "10ab" {
        fig9_batching(albums.min(4_000), Deployment::Distributed, "Fig. 10(a,b)");
    }
    if run_all || fig == "10cd" {
        fig10cd_batch_scalability(albums);
    }
    if run_all || fig == "11ab" {
        fig11ab_threads(albums);
    }
    if run_all || fig == "11cf" {
        fig11cf_scalability(albums);
    }
    if run_all || fig == "12" {
        fig12_optimizer_quality();
    }
    if run_all || fig == "13ab" {
        fig13ab_middleware_sizes(albums);
    }
    if run_all || fig == "13cd" {
        fig13cd_middleware_stores(albums.min(4_000));
    }
    if run_all || fig == "cache" {
        fig_cache(albums.min(4_000));
    }
    say!("\n# done");
}

/// Average of the timed query over the relational and document targets
/// (the paper averages over the per-store query family).
fn avg_run(lab: &Lab, size: usize, level: usize, config: QuepaConfig, cold: bool) -> Duration {
    let mut total = Duration::ZERO;
    let targets = [("transactions", StoreKind::Relational), ("catalogue", StoreKind::Document)];
    for (db, kind) in targets {
        let (d, _, _) = lab.run(db, &query_for(kind, size), level, config, cold);
        total += d;
    }
    total / targets.len() as u32
}

/// Fig. 9 (centralized) / Fig. 10(a,b) (distributed): BATCH vs OUTER-BATCH
/// execution time while BATCH_SIZE varies (log x-axis); (a) cold level 0,
/// (b) warm level 1. 10-store polystore, 10 000-result queries.
fn fig9_batching(albums: usize, deployment: Deployment, label: &str) {
    let size = albums.min(10_000);
    if size != 10_000 {
        say!("\n# {label}: query size reduced to {size} (scale substitution)");
    }
    let lab = Lab::new(albums, 2, deployment);
    for (panel, cold, level) in [("(a) cold, level 0", true, 0), ("(b) warm, level 1", false, 1)] {
        header(
            &format!("{label} {panel} — {} deployment", deployment.name()),
            &["BATCH_SIZE", "BATCH", "OUTER-BATCH"],
        );
        for &batch in &BATCH_SIZES {
            let batch_cfg = QuepaConfig {
                augmenter: AugmenterKind::Batch,
                batch_size: batch,
                threads_size: 4,
                cache_size: 1_048_576,
                ..QuepaConfig::default()
            };
            let ob_cfg = QuepaConfig { augmenter: AugmenterKind::OuterBatch, ..batch_cfg };
            let t_batch = avg_run(&lab, size, level, batch_cfg, cold);
            let t_ob = avg_run(&lab, size, level, ob_cfg, cold);
            say!("{}", row(&[batch.to_string(), fmt_duration(t_batch), fmt_duration(t_ob)]));
        }
    }
}

/// Fig. 10(c,d): scalability over the query size in the distributed
/// deployment — batching vs the sequential augmenter.
fn fig10cd_batch_scalability(albums: usize) {
    let lab = Lab::new(albums, 2, Deployment::Distributed);
    const SEQ_CAP: usize = 1_000;
    say!(
        "\n# Fig. 10(c,d): SEQUENTIAL is only run up to {SEQ_CAP}-result queries \
         (it needs one round trip per object; larger points would take minutes \
         and add no information)"
    );
    for (panel, cold, level) in [("(c) cold, level 0", true, 0), ("(d) warm, level 1", false, 1)] {
        header(
            &format!("Fig. 10{panel} — distributed"),
            &["QUERY_SIZE", "SEQUENTIAL", "BATCH", "OUTER-BATCH"],
        );
        for &size in &QUERY_SIZES {
            let size = size.min(albums);
            let base = QuepaConfig {
                batch_size: 1_024,
                threads_size: 4,
                cache_size: 1_048_576,
                augmenter: AugmenterKind::Batch,
                ..QuepaConfig::default()
            };
            let t_seq = if size <= SEQ_CAP {
                fmt_duration(avg_run(
                    &lab,
                    size,
                    level,
                    QuepaConfig { augmenter: AugmenterKind::Sequential, ..base },
                    cold,
                ))
            } else {
                "-".into()
            };
            let t_batch = avg_run(&lab, size, level, base, cold);
            let t_ob = avg_run(
                &lab,
                size,
                level,
                QuepaConfig { augmenter: AugmenterKind::OuterBatch, ..base },
                cold,
            );
            say!("{}", row(&[size.to_string(), t_seq, fmt_duration(t_batch), fmt_duration(t_ob)]));
        }
    }
}

/// Fig. 11(a,b): the concurrent augmenters while THREADS_SIZE varies.
fn fig11ab_threads(albums: usize) {
    let size = albums.min(5_000);
    let lab = Lab::new(albums, 2, Deployment::Centralized);
    let augs = [
        AugmenterKind::Inner,
        AugmenterKind::Outer,
        AugmenterKind::OuterBatch,
        AugmenterKind::OuterInner,
    ];
    for (panel, cold, level) in [("(a) cold, level 0", true, 0), ("(b) warm, level 1", false, 1)] {
        header(
            &format!("Fig. 11{panel} — {size}-result queries, 10 stores"),
            &["THREADS", "INNER", "OUTER", "OUTER-BATCH", "OUTER-INNER"],
        );
        for &threads in &THREAD_COUNTS {
            let mut cells = vec![threads.to_string()];
            for aug in augs {
                let cfg = QuepaConfig {
                    augmenter: aug,
                    threads_size: threads,
                    batch_size: 256,
                    cache_size: 1_048_576,
                    ..QuepaConfig::default()
                };
                cells.push(fmt_duration(avg_run(&lab, size, level, cfg, cold)));
            }
            say!("{}", row(&cells));
        }
    }
}

/// Fig. 11(c–f): every augmenter over the query size (c cold / d warm) and
/// over the number of stores (e cold / f warm).
fn fig11cf_scalability(albums: usize) {
    let lab = Lab::new(albums, 2, Deployment::Centralized);
    let names: Vec<&str> = AugmenterKind::ALL.iter().map(|k| k.name()).collect();
    let mut headers = vec!["QUERY_SIZE"];
    headers.extend(&names);
    for (panel, cold, level) in [("(c) cold, level 0", true, 0), ("(d) warm, level 1", false, 1)] {
        header(&format!("Fig. 11{panel} — 10 stores"), &headers);
        for &size in &QUERY_SIZES {
            let size = size.min(albums);
            let mut cells = vec![size.to_string()];
            for aug in AugmenterKind::ALL {
                let cfg = QuepaConfig {
                    augmenter: aug,
                    threads_size: 8,
                    batch_size: 256,
                    cache_size: 1_048_576,
                    ..QuepaConfig::default()
                };
                cells.push(fmt_duration(avg_run(&lab, size, level, cfg, cold)));
            }
            say!("{}", row(&cells));
        }
    }

    let mut headers = vec!["STORES"];
    headers.extend(&names);
    let size = albums.min(1_000);
    for (panel, cold, level) in [("(e) cold, level 0", true, 0), ("(f) warm, level 1", false, 1)] {
        header(&format!("Fig. 11{panel} — {size}-result queries"), &headers);
        for &sets in &REPLICA_SETS {
            let lab = Lab::new(albums.min(4_000), sets, Deployment::Centralized);
            let mut cells = vec![lab.config.database_count().to_string()];
            for aug in AugmenterKind::ALL {
                let cfg = QuepaConfig {
                    augmenter: aug,
                    threads_size: 8,
                    batch_size: 256,
                    cache_size: 1_048_576,
                    ..QuepaConfig::default()
                };
                cells.push(fmt_duration(avg_run(&lab, size, level, cfg, cold)));
            }
            say!("{}", row(&cells));
        }
    }
}

/// Fig. 12: quality of the ADAPTIVE optimizer against HUMAN and RANDOM on
/// 25 hold-out queries × 4 polystore variants × levels {0, 1}.
fn fig12_optimizer_quality() {
    const FIG12_ALBUMS: usize = 600; // hold-out sizes go up to 595
    say!("\n# Fig. 12: training on the standard grid, then 25 hold-out queries");
    say!("# per polystore variant; for each run HUMAN and RANDOM execute their");
    say!("# configuration under all 6 augmenters, ADAPTIVE gets a single run.");

    let mut best_counts: HashMap<&'static str, usize> = HashMap::new();
    // top-1 / top-2 / top-3 / top-5 membership of the ADAPTIVE run.
    let mut topk = [0usize; 4];
    let mut total_runs = 0usize;

    for &sets in &REPLICA_SETS {
        let lab = Lab::new(FIG12_ALBUMS, sets, Deployment::Centralized);
        // --- Phase 1: collect training logs by sweeping configurations.
        lab.quepa.set_optimizer(None);
        let _ = lab.quepa.take_logs();
        for q in standard_query_set(&[100, 300]) {
            for aug in AugmenterKind::ALL {
                for (batch, threads) in [(16, 2), (256, 8)] {
                    let cfg = QuepaConfig {
                        augmenter: aug,
                        batch_size: batch,
                        threads_size: threads,
                        cache_size: 8_192,
                        ..QuepaConfig::default()
                    };
                    lab.quepa.set_config(cfg);
                    lab.quepa.drop_caches();
                    let _ = lab.quepa.augmented_search(&q.database, &q.query, 0);
                    let _ = lab.quepa.augmented_search(&q.database, &q.query, 1);
                }
            }
        }
        let logs = lab.quepa.take_logs();
        let adaptive = AdaptiveOptimizer::train(&logs).expect("enough training situations");
        let human = HumanOptimizer::default();
        let random = RandomOptimizer::new(7 + sets as u64);

        // --- Phase 3: hold-out queries.
        for q in holdout_query_set() {
            for level in [0usize, 1] {
                total_runs += 1;
                let mut runs: Vec<(&'static str, Duration)> = Vec::with_capacity(13);
                // HUMAN and RANDOM each provide one configuration whose
                // knobs we execute under all six augmenters (§VII-C). The
                // probe run supplies the query characteristics every
                // optimizer sees.
                let probe =
                    lab.quepa.augmented_search(&q.database, &q.query, level).expect("probe run");
                let feats = quepa_core::QueryFeatures {
                    target_kind: lab.polystore.connector_by_name(&q.database).unwrap().kind(),
                    store_count: lab.polystore.len(),
                    result_size: probe.original.len(),
                    augmented_size: probe.augmented.len(),
                    level,
                    distributed: false,
                    filtered: false,
                };
                let current = lab.quepa.config();
                for (name, cfg) in [
                    ("HUMAN", human.choose(&feats, &current)),
                    ("RANDOM", random.choose(&feats, &current)),
                ] {
                    for aug in AugmenterKind::ALL {
                        let c = QuepaConfig { augmenter: aug, ..cfg };
                        let (d, _, _) = lab.run(&q.database, &q.query, level, c, true);
                        runs.push((name, d));
                    }
                }
                let c = adaptive.choose(&feats, &current);
                let (d, _, _) = lab.run(&q.database, &q.query, level, c, true);
                runs.push(("ADAPTIVE", d));

                // Fig. 12(a): which optimizer owns the fastest run.
                let best = runs.iter().min_by_key(|(_, d)| *d).expect("13 runs");
                *best_counts.entry(best.0).or_insert(0) += 1;
                // Fig. 12(b): the rank of the ADAPTIVE run.
                let mut sorted: Vec<_> = runs.iter().collect();
                sorted.sort_by_key(|(_, d)| *d);
                let rank = sorted.iter().position(|(n, _)| *n == "ADAPTIVE").expect("present");
                for (slot, k) in [1usize, 2, 3, 5].iter().enumerate() {
                    if rank < *k {
                        topk[slot] += 1;
                    }
                }
            }
        }
    }

    header("Fig. 12(a) — times each optimizer is the best", &["OPTIMIZER", "WINS"]);
    for name in ["ADAPTIVE", "HUMAN", "RANDOM"] {
        say!(
            "{}",
            row(&[name.to_string(), best_counts.get(name).copied().unwrap_or(0).to_string()])
        );
    }
    header("Fig. 12(b) — ADAPTIVE run rank among the 13 runs", &["TOP-K", "RUNS", "SHARE"]);
    for (slot, k) in [1usize, 2, 3, 5].iter().enumerate() {
        say!(
            "{}",
            row(&[
                format!("top-{k}"),
                topk[slot].to_string(),
                format!("{:.0}%", 100.0 * topk[slot] as f64 / total_runs as f64),
            ])
        );
    }
}

/// Fig. 13(a,b): QUEPA (with ADAPTIVE) against the middleware tools over
/// the query size, 10-store polystore. `X` marks out-of-memory runs.
fn fig13ab_middleware_sizes(albums: usize) {
    let lab = Lab::new(albums, 2, Deployment::Centralized);
    let budget = middleware_budget(&lab);
    let middlewares = lab.middlewares(budget);
    let adaptive = train_quick_adaptive(&lab);

    for (panel, cold, level) in [("(a) cold, level 0", true, 0), ("(b) warm, level 1", false, 1)] {
        let mut headers = vec!["QUERY_SIZE", "QUEPA"];
        headers.extend(middlewares.iter().map(|m| m.name()));
        header(&format!("Fig. 13{panel} — 10 stores"), &headers);
        for &size in &QUERY_SIZES {
            let size = size.min(albums);
            let mut cells = vec![size.to_string()];
            // QUEPA with the trained adaptive optimizer.
            lab.quepa.set_optimizer(None);
            let feats_cfg = adaptive_config(&lab, &adaptive, size, level);
            cells.push(fmt_duration(avg_run(&lab, size, level, feats_cfg, cold)));
            for m in &middlewares {
                if cold {
                    m.reset();
                } else {
                    let _ = m.warm_up();
                    let _ = m.augmented_query(
                        "catalogue",
                        &query_for(StoreKind::Document, size),
                        level,
                    );
                }
                // Middleware target: catalogue — the one store every tool
                // supports (Metamodel lacks Redis, Arango lacks SQL).
                let t0 = std::time::Instant::now();
                match m.augmented_query("catalogue", &query_for(StoreKind::Document, size), level) {
                    Ok(_) => cells.push(fmt_duration(t0.elapsed())),
                    Err(quepa_baselines::MiddlewareError::OutOfMemory { .. }) => {
                        cells.push("X".into())
                    }
                    Err(e) => cells.push(format!("({e:.0?})")),
                }
            }
            say!("{}", row(&cells));
        }
    }
}

/// Fig. 13(c,d): the same competitors over the number of databases at a
/// fixed 1000-result query size. The middleware heap budget is held
/// constant across the axis (it fits the 10-store polystore), so the
/// memory-hungry tools hit `X` as stores grow — the paper's observation.
fn fig13cd_middleware_stores(albums: usize) {
    let budget = middleware_budget(&Lab::new(albums, 2, Deployment::Centralized));
    for (panel, cold, level) in [("(c) cold, level 0", true, 0), ("(d) warm, level 1", false, 1)] {
        let mut printed_header = false;
        for &sets in &REPLICA_SETS {
            let lab = Lab::new(albums, sets, Deployment::Centralized);
            let middlewares = lab.middlewares(budget);
            if !printed_header {
                let mut headers = vec!["STORES", "QUEPA"];
                headers.extend(middlewares.iter().map(|m| m.name()));
                header(&format!("Fig. 13{panel} — 1000-result queries"), &headers);
                printed_header = true;
            }
            let adaptive = train_quick_adaptive(&lab);
            let size = 1_000.min(albums);
            let mut cells = vec![lab.config.database_count().to_string()];
            let cfg = adaptive_config(&lab, &adaptive, size, level);
            cells.push(fmt_duration(avg_run(&lab, size, level, cfg, cold)));
            for m in &middlewares {
                if cold {
                    m.reset();
                } else {
                    let _ = m.warm_up();
                    let _ = m.augmented_query(
                        "catalogue",
                        &query_for(StoreKind::Document, size),
                        level,
                    );
                }
                let t0 = std::time::Instant::now();
                match m.augmented_query("catalogue", &query_for(StoreKind::Document, size), level) {
                    Ok(_) => cells.push(fmt_duration(t0.elapsed())),
                    Err(quepa_baselines::MiddlewareError::OutOfMemory { .. }) => {
                        cells.push("X".into())
                    }
                    Err(e) => cells.push(format!("({e:.0?})")),
                }
            }
            say!("{}", row(&cells));
        }
    }
}

/// The §VII-B(c) memory experiment (described in prose in the paper):
/// CACHE_SIZE sensitivity per deployment on a repeated workload.
fn fig_cache(albums: usize) {
    use quepa_workload::experiments::CACHE_SIZES;
    for deployment in [Deployment::Centralized, Deployment::Distributed] {
        let lab = Lab::new(albums, 1, deployment);
        header(
            &format!("§VII-B(c) cache sensitivity — {}", deployment.name()),
            &["CACHE_SIZE", "TIME", "HIT-RATE"],
        );
        let size = albums.min(1_000);
        for &cache in &CACHE_SIZES {
            let cfg = QuepaConfig {
                augmenter: AugmenterKind::OuterBatch,
                batch_size: 256,
                threads_size: 4,
                cache_size: cache,
                ..QuepaConfig::default()
            };
            // A repeated workload: the same query three times, measuring
            // the last run (the cache can only help on repeats).
            lab.quepa.set_optimizer(None);
            lab.quepa.set_config(cfg);
            lab.quepa.drop_caches();
            lab.quepa.cache().reset_stats();
            let q = query_for(StoreKind::Relational, size);
            let _ = lab.quepa.augmented_search("transactions", &q, 1);
            let _ = lab.quepa.augmented_search("transactions", &q, 1);
            let answer = lab.quepa.augmented_search("transactions", &q, 1).unwrap();
            let (hits, misses) = lab.quepa.cache().stats();
            let rate = if hits + misses == 0 { 0.0 } else { hits as f64 / (hits + misses) as f64 };
            say!(
                "{}",
                row(&[
                    cache.to_string(),
                    fmt_duration(answer.duration),
                    format!("{:.0}%", rate * 100.0),
                ])
            );
        }
    }
}

/// The middleware heap budget: every tool gets the same machine, sized so
/// ArangoDB's import of the 10-store polystore *just* fits (20% headroom).
/// Growing the polystore to 13 stores — or materializing the largest
/// queries' join intermediates — exceeds it, the paper's Fig. 13 cliffs.
fn middleware_budget(lab: &Lab) -> usize {
    let probe = quepa_baselines::ArangoNat::new(
        lab.polystore.clone(),
        std::sync::Arc::clone(&lab.index),
        usize::MAX,
    );
    quepa_baselines::Middleware::warm_up(&probe).expect("unbounded import");
    probe.budget().high_water() * 12 / 10
}

/// Trains a small ADAPTIVE model on the lab (used by the Fig. 13 runs).
fn train_quick_adaptive(lab: &Lab) -> AdaptiveOptimizer {
    lab.quepa.set_optimizer(None);
    let _ = lab.quepa.take_logs();
    for q in standard_query_set(&[100, 500]) {
        for aug in [AugmenterKind::Sequential, AugmenterKind::Batch, AugmenterKind::OuterBatch] {
            let cfg = QuepaConfig {
                augmenter: aug,
                batch_size: 256,
                threads_size: 8,
                cache_size: 8_192,
                ..QuepaConfig::default()
            };
            lab.quepa.set_config(cfg);
            lab.quepa.drop_caches();
            let _ = lab.quepa.augmented_search(&q.database, &q.query, 0);
        }
    }
    let logs = lab.quepa.take_logs();
    AdaptiveOptimizer::train(&logs).expect("training logs span several situations")
}

/// Asks the trained optimizer for the configuration it would use for this
/// size/level (probing the features with a cheap index-only estimate).
fn adaptive_config(
    lab: &Lab,
    adaptive: &AdaptiveOptimizer,
    size: usize,
    level: usize,
) -> QuepaConfig {
    let probe = lab
        .quepa
        .augmented_search("transactions", &query_for(StoreKind::Relational, size.min(100)), 0)
        .expect("probe");
    let feats = quepa_core::QueryFeatures {
        target_kind: StoreKind::Relational,
        store_count: lab.polystore.len(),
        result_size: size,
        augmented_size: probe.augmented.len() * size.max(100) / 100,
        level,
        distributed: false,
        filtered: false,
    };
    adaptive.choose(&feats, &lab.quepa.config())
}
