use quepa_polystore::Deployment;
use quepa_workload::{BuiltPolystore, WorkloadConfig};
use std::time::Instant;

fn main() {
    for (albums, sets) in [(2000usize, 0usize), (2000, 3), (8000, 0), (8000, 3)] {
        let t0 = Instant::now();
        let b = BuiltPolystore::build(WorkloadConfig {
            albums,
            replica_sets: sets,
            deployment: Deployment::Centralized,
            seed: 42,
        });
        let build = t0.elapsed();
        let stats = b.index.stats();

        let quepa = b.into_quepa();
        let a = quepa
            .augmented_search("transactions", "SELECT * FROM inventory WHERE seq < 1000", 0)
            .unwrap();
        println!("albums={albums} sets={sets} build={build:?} idx_nodes={} idx_edges={} q1000_l0: aug={} dur={:?}",
                 stats.nodes, stats.identity_edges + stats.matching_edges, a.augmented.len(), a.duration);
    }
}
