//! CI bench-regression gate.
//!
//! Re-measures a smoke subset of the four recorded baselines
//! (`BENCH_augment_hotpath.json`, `BENCH_fault_overhead.json`,
//! `BENCH_metrics_overhead.json`, `BENCH_throughput.json`) and fails —
//! exit code 1 — when any scenario drifts more than `TOLERANCE` from its
//! checked-in mean, or when the concurrent-serving path no longer scales:
//! 16 closed-loop clients must sustain at least 4× the serial QPS.
//! A scenario that misses the band on the quick pass is re-measured
//! with more runs before it counts as a regression (CI machines jitter;
//! the simulated-network sleeps keep means stable, but one noisy run
//! must not block a PR).
//!
//! The serving front end is gated from its recorded sweep
//! (`BENCH_serving.json`): p999 under 2× overload ≤5× the
//! sub-saturation p999, goodput at 2× overload ≥70% of peak, and the
//! accounting invariant `offered == served + shed + errors` in every
//! recorded scenario. Only the sub-saturation smoke point is
//! re-measured live (the full overload sweep is the nightly
//! `overload-soak` job).
//!
//! The smoke subset covers the in-process and centralized deployments at
//! the 10-store / level-1 / cold hot path — the scenario every baseline
//! records. The distributed deployment and the warm/level-0 variants are
//! *not* re-measured here (they multiply gate time ×6 for the same code
//! paths); the full sweep remains `cargo bench -p quepa-bench`.
//!
//! ```sh
//! cargo run --release -p quepa-bench --bin bench_gate
//! ```

use std::path::Path;
use std::time::Duration;

use quepa_bench::baseline::Baseline;
use quepa_bench::{pushdown, recovery, scale, serving, throughput, traffic, Lab};
use quepa_core::{QuepaConfig, ResilienceConfig};
use quepa_polystore::Deployment;
use quepa_serve::Server;
use quepa_workload::TopologyFamily;

/// Allowed drift from the recorded mean, either direction.
const TOLERANCE: f64 = 0.15;
/// Quick-pass / confirmation-pass measured runs per scenario.
const QUICK_RUNS: usize = 15;
const CONFIRM_RUNS: usize = 40;
/// The hot-path query every baseline records.
const QUERY: &str = "SELECT * FROM inventory WHERE seq < 50";
/// Absolute ceiling on the recorded supernode cold probe: expanding a
/// hub with ~1e5 p-relations must stay interactive, not merely stable
/// relative to its own past.
const SUPERNODE_COLD_CEILING_S: f64 = 0.5;
/// Recovery-phase p999 of the flash crowd over its pre-burst p999.
const FLASH_RECOVERY_LIMIT: f64 = 1.15;
/// Horizon of the live flash-crowd accounting leg.
const FLASH_LIVE_HORIZON_S: f64 = 10.0;

/// One smoke scenario: which baseline file it lives in, its recorded
/// name, and the configuration that reproduces it.
struct Scenario {
    file: &'static str,
    name: String,
    config: QuepaConfig,
}

fn scenarios(deployment: Deployment) -> Vec<Scenario> {
    let dep = deployment.name();
    let base = QuepaConfig::default();
    let mut out = vec![Scenario {
        file: "BENCH_augment_hotpath.json",
        name: format!("{dep}/10stores/level1/cold"),
        config: base,
    }];
    for (label, resilience) in [
        ("trivial", ResilienceConfig::default()),
        ("resilient-nofault", ResilienceConfig::resilient()),
    ] {
        out.push(Scenario {
            file: "BENCH_fault_overhead.json",
            name: format!("{dep}/10stores/level1/cold/{label}"),
            config: QuepaConfig { resilience, ..base },
        });
    }
    for (label, observability) in [("disabled", false), ("enabled", true)] {
        out.push(Scenario {
            file: "BENCH_metrics_overhead.json",
            name: format!("{dep}/10stores/level1/cold/{label}"),
            config: QuepaConfig { observability, ..base },
        });
    }
    out
}

/// Median end-to-end query seconds over `runs` measured executions after
/// five throwaway warm-ups — the answer's own `duration`, matching the
/// methodology the baseline emitters record. The run distribution is a
/// sleep-dominated floor plus rare scheduler spikes; a mean over a
/// handful of runs can drift 20%+ on a loaded CI box while the median
/// stays within a percent of the quiet-machine value, so the gate
/// compares medians.
fn measure(lab: &Lab, config: QuepaConfig, runs: usize) -> f64 {
    for _ in 0..5 {
        lab.run("transactions", QUERY, 1, config, true);
    }
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| lab.run("transactions", QUERY, 1, config, true).0.as_secs_f64())
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[runs / 2]
}

fn main() {
    let root = Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    let load = |file: &str| {
        Baseline::load(&root.join(file)).unwrap_or_else(|e| {
            eprintln!("bench_gate: {e}");
            std::process::exit(2);
        })
    };
    let baselines = [
        load("BENCH_augment_hotpath.json"),
        load("BENCH_fault_overhead.json"),
        load("BENCH_metrics_overhead.json"),
    ];
    let throughput_baseline = load("BENCH_throughput.json");
    let recorded = |file: &str, name: &str| -> f64 {
        let b = match file {
            "BENCH_augment_hotpath.json" => &baselines[0],
            "BENCH_fault_overhead.json" => &baselines[1],
            _ => &baselines[2],
        };
        *b.means.get(name).unwrap_or_else(|| {
            eprintln!("bench_gate: {file} has no scenario {name:?} — regenerate the baseline");
            std::process::exit(2);
        })
    };

    // The 2% acceptance pin: the disabled observability path must cost
    // the same as the un-instrumented hot path it replaced. Compared
    // baseline-to-baseline (both recorded on the same machine) so the
    // check is deterministic in CI.
    let hotpath = recorded("BENCH_augment_hotpath.json", "centralized/10stores/level1/cold");
    let disabled =
        recorded("BENCH_metrics_overhead.json", "centralized/10stores/level1/cold/disabled");
    let pin = (disabled - hotpath) / hotpath;
    println!(
        "observability disabled-path pin: {disabled:.6}s vs hotpath {hotpath:.6}s ({:+.2}%, limit +2%)",
        pin * 100.0
    );
    let mut failed = pin > 0.02;
    if failed {
        eprintln!("bench_gate: disabled observability exceeds the 2% overhead pin");
    }

    println!("{:<52} {:>10} {:>10} {:>8}  verdict", "scenario", "recorded", "measured", "delta");
    let mut rows = Vec::new();
    for deployment in [Deployment::InProcess, Deployment::Centralized] {
        let lab = Lab::new(200, 2, deployment); // 10 stores
        for s in scenarios(deployment) {
            let want = recorded(s.file, &s.name);
            let mut got = measure(&lab, s.config, QUICK_RUNS);
            let mut delta = (got - want) / want;
            if delta.abs() > TOLERANCE {
                // One noisy pass is not a regression: confirm with more
                // runs and keep the measurement closer to the record.
                let again = measure(&lab, s.config, CONFIRM_RUNS);
                let again_delta = (again - want) / want;
                if again_delta.abs() < delta.abs() {
                    got = again;
                    delta = again_delta;
                }
            }
            let ok = delta.abs() <= TOLERANCE;
            failed |= !ok;
            let verdict = if ok { "ok" } else { "REGRESSION" };
            println!(
                "{:<52} {:>9.6}s {:>9.6}s {:>+7.1}%  {verdict}",
                s.name,
                want,
                got,
                delta * 100.0
            );
            rows.push((s.name, ok));
        }
    }

    // ---- concurrent-serving throughput ---------------------------------
    // Re-measure the serial and 16-client levels of the throughput bench:
    // each must stay within the tolerance band of its recorded wall
    // seconds per query, and the measured QPS ratio must hold the ≥4×
    // scaling claim the tentpole makes.
    let tlab = throughput::lab();
    let mut tpoints = Vec::new();
    for clients in [1usize, 16] {
        let name = throughput::scenario_name(clients);
        let want = *throughput_baseline.means.get(&name).unwrap_or_else(|| {
            eprintln!("bench_gate: BENCH_throughput.json has no scenario {name:?}");
            std::process::exit(2);
        });
        let per_client = throughput::default_per_client(clients);
        let mut point = throughput::measure(&tlab, clients, per_client);
        let mut delta = (point.mean_s - want) / want;
        if delta.abs() > TOLERANCE {
            let again = throughput::measure(&tlab, clients, 2 * per_client);
            let again_delta = (again.mean_s - want) / want;
            if again_delta.abs() < delta.abs() {
                point = again;
                delta = again_delta;
            }
        }
        let ok = delta.abs() <= TOLERANCE;
        failed |= !ok;
        let verdict = if ok { "ok" } else { "REGRESSION" };
        println!(
            "{:<52} {:>9.6}s {:>9.6}s {:>+7.1}%  {verdict}",
            name,
            want,
            point.mean_s,
            delta * 100.0
        );
        rows.push((name, ok));
        tpoints.push(point);
    }
    let ratio = tpoints[1].qps / tpoints[0].qps;
    let ratio_ok = ratio >= 4.0;
    failed |= !ratio_ok;
    println!(
        "throughput scaling: {:.1} qps serial -> {:.1} qps at 16 clients ({ratio:.2}x, target >=4x)  {}",
        tpoints[0].qps,
        tpoints[1].qps,
        if ratio_ok { "ok" } else { "REGRESSION" }
    );
    if !ratio_ok {
        rows.push(("throughput-qps-ratio-16v1".into(), false));
    }

    // ---- cross-store filter pushdown -----------------------------------
    // The recorded pushdown sweep (BENCH_pushdown.json) carries the
    // tentpole's headline claim: the filtered search with per-group
    // predicate pushdown beats the client-side fetch-all fan-out ≥2×.
    // The gate re-checks the recorded ratio, re-measures both modes
    // within the tolerance band (with the usual confirmation pass), and
    // holds the *live* ratio to the same ≥2× floor.
    let pushdown_baseline = load("BENCH_pushdown.json");
    let prec = |name: &str| -> f64 {
        *pushdown_baseline.means.get(name).unwrap_or_else(|| {
            eprintln!(
                "bench_gate: BENCH_pushdown.json has no scenario {name:?} — regenerate with `cargo bench -p quepa-bench --bench pushdown`"
            );
            std::process::exit(2);
        })
    };
    let rec_push = prec(&pushdown::scenario_name(true));
    let rec_fetch = prec(&pushdown::scenario_name(false));
    let rec_pd_speedup = rec_fetch / rec_push;
    let rec_pd_ok = rec_pd_speedup >= 2.0;
    failed |= !rec_pd_ok;
    println!(
        "\nrecorded pushdown speedup vs fetch-all: {rec_pd_speedup:.2}x (target >=2x)  {}",
        if rec_pd_ok { "ok" } else { "REGRESSION" }
    );
    if !rec_pd_ok {
        rows.push(("pushdown-speedup-recorded".into(), false));
    }
    let plab = pushdown::lab();
    if !pushdown::answers_agree(&plab) {
        eprintln!("bench_gate: pushdown and fetch-all answers diverge — run quepa-check");
        failed = true;
        rows.push(("pushdown-answers-agree".into(), false));
    }
    let mut live_points = [0.0f64; 2];
    for (i, mode) in [true, false].into_iter().enumerate() {
        let name = pushdown::scenario_name(mode);
        let want = prec(&name);
        let mut got = pushdown::measure(&plab, mode, QUICK_RUNS).mean_s;
        let mut delta = (got - want) / want;
        if delta.abs() > TOLERANCE {
            let again = pushdown::measure(&plab, mode, CONFIRM_RUNS).mean_s;
            let again_delta = (again - want) / want;
            if again_delta.abs() < delta.abs() {
                got = again;
                delta = again_delta;
            }
        }
        let ok = delta.abs() <= TOLERANCE;
        failed |= !ok;
        let verdict = if ok { "ok" } else { "REGRESSION" };
        println!("{name:<52} {want:>9.6}s {got:>9.6}s {:>+7.1}%  {verdict}", delta * 100.0);
        rows.push((name, ok));
        live_points[i] = got;
    }
    let live_pd_speedup = live_points[1] / live_points[0];
    let live_pd_ok = live_pd_speedup >= 2.0;
    failed |= !live_pd_ok;
    println!(
        "live pushdown speedup vs fetch-all: {live_pd_speedup:.2}x (target >=2x)  {}",
        if live_pd_ok { "ok" } else { "REGRESSION" }
    );
    if !live_pd_ok {
        rows.push(("pushdown-speedup-live".into(), false));
    }

    // ---- sharded-index scale smoke -------------------------------------
    // The recorded sweep (BENCH_scale.json) carries the two acceptance
    // ratios of the sharded index; the gate re-checks them from the
    // recorded scenarios, then re-measures the 1e4 point: augmentation
    // medians within the tolerance band and the sharded-vs-swap mutation
    // speedup ≥5× live, under the same 16 concurrent readers.
    let scale_baseline = load("BENCH_scale.json");
    let srec = |name: &str| -> f64 {
        *scale_baseline.means.get(name).unwrap_or_else(|| {
            eprintln!(
                "bench_gate: BENCH_scale.json has no scenario {name:?} — regenerate with `cargo bench -p quepa-bench --bench scale`"
            );
            std::process::exit(2);
        })
    };
    let worst_cold = scale::LEVELS
        .iter()
        .map(|l| {
            srec(&format!("scale/1e6/level{l}/cold")) / srec(&format!("scale/1e4/level{l}/cold"))
        })
        .fold(0.0f64, f64::max);
    let cold_ok = worst_cold <= 2.0;
    failed |= !cold_ok;
    println!(
        "\nrecorded cold augmentation growth 1e4 -> 1e6 (worst level): {worst_cold:.2}x (limit 2x)  {}",
        if cold_ok { "ok" } else { "REGRESSION" }
    );
    if !cold_ok {
        rows.push(("scale-cold-latency-growth".into(), false));
    }
    let rec_speedup = srec("scale/1e6/mutation/swap") / srec("scale/1e6/mutation/sharded");
    let rec_speedup_ok = rec_speedup >= 5.0;
    failed |= !rec_speedup_ok;
    println!(
        "recorded mutation speedup sharded vs whole-index swap at 1e6: {rec_speedup:.2}x (target >=5x)  {}",
        if rec_speedup_ok { "ok" } else { "REGRESSION" }
    );
    if !rec_speedup_ok {
        rows.push(("scale-mutation-speedup-recorded".into(), false));
    }

    let slab = scale::build(10_000);
    for level in scale::LEVELS {
        let quick = scale::augment_latency(&slab, level, QUICK_RUNS);
        let mut confirmed: Option<(f64, f64)> = None;
        for (tag, pick) in [("cold", 0usize), ("warm", 1)] {
            let name = format!("scale/1e4/level{level}/{tag}");
            let want = srec(&name);
            let mut got = if pick == 0 { quick.0 } else { quick.1 };
            let mut delta = (got - want) / want;
            if delta.abs() > TOLERANCE {
                let pair = *confirmed
                    .get_or_insert_with(|| scale::augment_latency(&slab, level, CONFIRM_RUNS));
                let again = if pick == 0 { pair.0 } else { pair.1 };
                let again_delta = (again - want) / want;
                if again_delta.abs() < delta.abs() {
                    got = again;
                    delta = again_delta;
                }
            }
            let ok = delta.abs() <= TOLERANCE;
            failed |= !ok;
            let verdict = if ok { "ok" } else { "REGRESSION" };
            println!(
                "{:<52} {:>9.6}s {:>9.6}s {:>+7.1}%  {verdict}",
                name,
                want,
                got,
                delta * 100.0
            );
            rows.push((name, ok));
        }
    }
    let sharded = scale::mutation_throughput_sharded(&slab);
    let swap = scale::mutation_throughput_swap(&slab);
    let live_speedup = swap.mean_s / sharded.mean_s;
    let live_ok = live_speedup >= 5.0;
    failed |= !live_ok;
    println!(
        "live mutation speedup at 1e4 under {} readers: sharded {:.6}s vs swap {:.6}s per removal ({live_speedup:.2}x, target >=5x)  {}",
        scale::READERS,
        sharded.mean_s,
        swap.mean_s,
        if live_ok { "ok" } else { "REGRESSION" }
    );
    if !live_ok {
        rows.push(("scale-mutation-speedup-live".into(), false));
    }

    // ---- hostile topologies --------------------------------------------
    // Every adversarial topology family must carry recorded build/cold/
    // warm baselines (a missing one exits 2, like any lost scenario).
    // The supernode hub — ~1e5 p-relations on one object — is the family
    // the tentpole bounds: its recorded cold probe is held to an absolute
    // ceiling and re-measured live within the tolerance band.
    for family in TopologyFamily::ALL {
        for tag in ["build", "cold", "warm"] {
            let _ = srec(&format!("hostile/{}/{tag}", family.name()));
        }
    }
    let supernode_cold = srec("hostile/supernode/cold");
    let ceiling_ok = supernode_cold <= SUPERNODE_COLD_CEILING_S;
    failed |= !ceiling_ok;
    println!(
        "\nrecorded supernode cold probe: {supernode_cold:.6}s (ceiling {SUPERNODE_COLD_CEILING_S}s)  {}",
        if ceiling_ok { "ok" } else { "REGRESSION" }
    );
    if !ceiling_ok {
        rows.push(("hostile-supernode-cold-ceiling".into(), false));
    }
    let hlab = scale::build_hostile(TopologyFamily::Supernode, scale::HOSTILE_SCALE);
    let hlevel = scale::hostile_level(TopologyFamily::Supernode);
    let hquick = scale::augment_latency_on(&hlab.sharded, &hlab.seeds, hlevel, QUICK_RUNS);
    let mut hconfirmed: Option<(f64, f64)> = None;
    for (tag, pick) in [("cold", 0usize), ("warm", 1)] {
        let name = format!("hostile/supernode/{tag}");
        let want = srec(&name);
        let mut got = if pick == 0 { hquick.0 } else { hquick.1 };
        let mut delta = (got - want) / want;
        if delta.abs() > TOLERANCE {
            let pair = *hconfirmed.get_or_insert_with(|| {
                scale::augment_latency_on(&hlab.sharded, &hlab.seeds, hlevel, CONFIRM_RUNS)
            });
            let again = if pick == 0 { pair.0 } else { pair.1 };
            let again_delta = (again - want) / want;
            if again_delta.abs() < delta.abs() {
                got = again;
                delta = again_delta;
            }
        }
        let ok = delta.abs() <= TOLERANCE;
        failed |= !ok;
        let verdict = if ok { "ok" } else { "REGRESSION" };
        println!("{name:<52} {want:>9.6}s {got:>9.6}s {:>+7.1}%  {verdict}", delta * 100.0);
        rows.push((name, ok));
    }

    // ---- durability smoke ----------------------------------------------
    // The recorded durability sweep (BENCH_recovery.json) carries two
    // acceptance claims: the shared mutation entry point costs nothing
    // when no WAL is attached (wal-off ≡ baseline, both recorded on the
    // same machine so the pin is deterministic), and cold recovery stays
    // roughly linear in the log. The gate re-checks both from the
    // recorded scenarios, then re-measures the wal-off/baseline ratio
    // live.
    let recovery_baseline = load("BENCH_recovery.json");
    let rrec = |name: &str| -> f64 {
        *recovery_baseline.means.get(name).unwrap_or_else(|| {
            eprintln!(
                "bench_gate: BENCH_recovery.json has no scenario {name:?} — regenerate with `cargo bench -p quepa-bench --bench recovery`"
            );
            std::process::exit(2);
        })
    };
    let rec_overhead =
        rrec("recovery/1e4/mutation/wal-off") / rrec("recovery/1e4/mutation/baseline");
    let rec_overhead_ok = (rec_overhead - 1.0).abs() <= 0.02;
    failed |= !rec_overhead_ok;
    println!(
        "\nrecorded wal-off mutation cost vs baseline: {rec_overhead:.3}x (pin 1.00x +-2%)  {}",
        if rec_overhead_ok { "ok" } else { "REGRESSION" }
    );
    if !rec_overhead_ok {
        rows.push(("recovery-wal-off-pin-recorded".into(), false));
    }
    let rec_growth = rrec("recovery/1e5/recover") / rrec("recovery/1e4/recover");
    let rec_growth_ok = rec_growth <= 25.0;
    failed |= !rec_growth_ok;
    println!(
        "recorded cold recovery growth 1e4 -> 1e5 ops: {rec_growth:.2}x (limit 25x)  {}",
        if rec_growth_ok { "ok" } else { "REGRESSION" }
    );
    if !rec_growth_ok {
        rows.push(("recovery-growth-recorded".into(), false));
    }
    let stream = recovery::ops(recovery::MUTATION_OPS);
    let mut live_base = recovery::mutation_baseline(&stream);
    let mut live_off = recovery::mutation_wal_off(&stream);
    let mut live_overhead = live_off.mean_s / live_base.mean_s;
    if live_overhead > 1.05 {
        // One noisy pass is not a regression; re-measure both paths.
        let again_base = recovery::mutation_baseline(&stream);
        let again_off = recovery::mutation_wal_off(&stream);
        let again = again_off.mean_s / again_base.mean_s;
        if again < live_overhead {
            (live_base, live_off, live_overhead) = (again_base, again_off, again);
        }
    }
    let live_overhead_ok = live_overhead <= 1.05;
    failed |= !live_overhead_ok;
    println!(
        "live wal-off mutation cost vs baseline: {:.9}s vs {:.9}s per op ({live_overhead:.3}x, limit 1.05x)  {}",
        live_off.mean_s,
        live_base.mean_s,
        if live_overhead_ok { "ok" } else { "REGRESSION" }
    );
    if !live_overhead_ok {
        rows.push(("recovery-wal-off-pin-live".into(), false));
    }

    // ---- serving front end ---------------------------------------------
    // The recorded open-loop sweep (BENCH_serving.json) carries the two
    // tail-latency acceptance claims of the serving tentpole: admission
    // control must bound the p999 under 2× overload to ≤5× the
    // sub-saturation p999, and goodput at 2× overload must hold ≥70% of
    // the sweep's peak. Both are re-checked from the recorded scenarios
    // (the full sweep lives in the nightly overload-soak job); the gate
    // then re-measures only the sub-saturation smoke point live against
    // a real TCP server.
    let serving_baseline = load("BENCH_serving.json");
    let svrec = |scenario: &str, key: &str| -> f64 {
        serving_baseline.field(scenario, key).unwrap_or_else(|| {
            eprintln!(
                "bench_gate: BENCH_serving.json scenario {scenario:?} has no {key:?} — regenerate with `cargo bench -p quepa-bench --bench serving`"
            );
            std::process::exit(2);
        })
    };
    let smoke_name = serving::scenario_name(serving::SMOKE_FRACTION);
    let overload_name = serving::scenario_name(2.0);
    for fraction in serving::SWEEP_FRACTIONS {
        let name = serving::scenario_name(fraction);
        let offered = svrec(&name, "offered");
        let accounted = svrec(&name, "served") + svrec(&name, "shed") + svrec(&name, "errors");
        if (offered - accounted).abs() > 0.5 {
            eprintln!(
                "bench_gate: {name} recorded accounting does not balance ({offered} offered vs {accounted} accounted)"
            );
            failed = true;
            rows.push((format!("{name}-accounting"), false));
        }
    }
    let p999_ratio = svrec(&overload_name, "p999_s") / svrec(&smoke_name, "p999_s").max(1e-9);
    let p999_ok = p999_ratio <= 5.0;
    failed |= !p999_ok;
    println!(
        "\nrecorded serving p999 under 2x overload vs sub-saturation: {p999_ratio:.2}x (limit 5x)  {}",
        if p999_ok { "ok" } else { "REGRESSION" }
    );
    if !p999_ok {
        rows.push(("serving-p999-overload-ratio".into(), false));
    }
    let peak_qps = serving::SWEEP_FRACTIONS
        .iter()
        .map(|f| svrec(&serving::scenario_name(*f), "qps"))
        .fold(0.0f64, f64::max);
    let goodput_floor = svrec(&overload_name, "qps") / peak_qps.max(1e-9);
    let goodput_ok = goodput_floor >= 0.7;
    failed |= !goodput_ok;
    println!(
        "recorded serving goodput floor at 2x overload: {goodput_floor:.2} of peak {peak_qps:.1} qps (target >=0.7)  {}",
        if goodput_ok { "ok" } else { "REGRESSION" }
    );
    if !goodput_ok {
        rows.push(("serving-goodput-floor".into(), false));
    }

    // Live smoke point: the recorded sub-saturation rate against a real
    // server, latency-from-scheduled-arrival mean within the band.
    let squepa = serving::bench_quepa();
    let mut server =
        Server::start(std::sync::Arc::clone(&squepa), "127.0.0.1:0", serving::bench_admission())
            .expect("start serving smoke server");
    let smoke_rate = svrec(&smoke_name, "rate");
    let smoke_want = svrec(&smoke_name, "mean_s");
    let smoke_spec = |seed: u64, secs: u64| serving::OpenLoopSpec {
        rate: smoke_rate,
        duration: Duration::from_secs(secs),
        connections: serving::CONNECTIONS,
        seed,
    };
    let mut smoke = serving::measure_open_loop(server.local_addr(), smoke_spec(0xC0FFEE, 2));
    let mut smoke_delta = (smoke.mean_s() - smoke_want) / smoke_want;
    if smoke_delta.abs() > TOLERANCE {
        let again = serving::measure_open_loop(server.local_addr(), smoke_spec(0xC0FFEF, 4));
        let again_delta = (again.mean_s() - smoke_want) / smoke_want;
        if again_delta.abs() < smoke_delta.abs() {
            smoke = again;
            smoke_delta = again_delta;
        }
    }
    let smoke_sane = smoke.errors == 0
        && smoke.offered == smoke.served() + smoke.shed + smoke.errors
        && smoke.offered > 0;
    let smoke_ok = smoke_delta.abs() <= TOLERANCE && smoke_sane;
    failed |= !smoke_ok;
    println!(
        "{:<52} {:>9.6}s {:>9.6}s {:>+7.1}%  {}",
        format!("{smoke_name} (live, {:.0}/s)", smoke_rate),
        smoke_want,
        smoke.mean_s(),
        smoke_delta * 100.0,
        if smoke_ok { "ok" } else { "REGRESSION" }
    );
    if !smoke_sane {
        eprintln!(
            "bench_gate: live serving smoke unhealthy — offered {} served {} shed {} errors {}",
            smoke.offered,
            smoke.served(),
            smoke.shed,
            smoke.errors
        );
    }
    rows.push((format!("{smoke_name}-live"), smoke_ok));

    // ---- time-varying traffic ------------------------------------------
    // The recorded traffic points carry two-sided accounting: the
    // client-observed ledger must balance, match the server's own
    // admission-ledger delta exactly (recorded runs are error-free), and
    // the server ledger must balance offered == served + shed. The flash
    // crowd additionally pins the recovery bound — recovery-phase p999
    // within 15% of pre-burst — sheds a nonzero share of the 4× burst,
    // and balances the ledger in every phase.
    for family in traffic::TrafficFamily::ALL {
        let name = format!("serving/{}", family.name());
        let offered = svrec(&name, "offered");
        let client_balanced =
            offered == svrec(&name, "served") + svrec(&name, "shed") + svrec(&name, "errors");
        let ledger_offered = svrec(&name, "ledger_offered");
        let ledger_balanced =
            ledger_offered == svrec(&name, "ledger_served") + svrec(&name, "ledger_shed");
        let two_sided = svrec(&name, "errors") == 0.0
            && offered == ledger_offered
            && svrec(&name, "shed") == svrec(&name, "ledger_shed");
        let ok = client_balanced && ledger_balanced && two_sided;
        failed |= !ok;
        println!(
            "recorded {name} two-sided ledger: client {offered:.0} offered / server {ledger_offered:.0} offered  {}",
            if ok { "ok" } else { "REGRESSION" }
        );
        if !ok {
            eprintln!(
                "bench_gate: {name} ledgers disagree (client balanced: {client_balanced}, server balanced: {ledger_balanced}, two-sided: {two_sided})"
            );
            rows.push((format!("{name}-ledger"), false));
        }
    }
    let flash_name = format!("serving/{}", traffic::TrafficFamily::FlashCrowd.name());
    for tag in ["pre", "burst", "recovery"] {
        let balanced = svrec(&flash_name, &format!("{tag}_offered"))
            == svrec(&flash_name, &format!("{tag}_served"))
                + svrec(&flash_name, &format!("{tag}_shed"))
                + svrec(&flash_name, &format!("{tag}_errors"));
        failed |= !balanced;
        if !balanced {
            eprintln!("bench_gate: recorded flash-crowd {tag} phase ledger does not balance");
            rows.push((format!("flash-{tag}-phase-ledger"), false));
        }
    }
    let recovery_ratio = svrec(&flash_name, "recovery_ratio");
    let recovery_ok = recovery_ratio <= FLASH_RECOVERY_LIMIT;
    failed |= !recovery_ok;
    println!(
        "recorded flash-crowd recovery p999 vs pre-burst: {recovery_ratio:.2}x (limit {FLASH_RECOVERY_LIMIT}x, grace {:.0}s)  {}",
        traffic::RECOVERY_GRACE_S,
        if recovery_ok { "ok" } else { "REGRESSION" }
    );
    if !recovery_ok {
        rows.push(("flash-recovery-ratio".into(), false));
    }
    let burst_sheds = svrec(&flash_name, "burst_shed") > 0.0;
    failed |= !burst_sheds;
    if !burst_sheds {
        eprintln!("bench_gate: recorded flash-crowd burst shed nothing — 4x burst not biting");
        rows.push(("flash-burst-sheds".into(), false));
    }

    // Live flash-crowd accounting leg: a short burst replay against the
    // same server; the client-side count of every response must equal
    // the server's admission-ledger delta exactly, with zero errors.
    let capacity = svrec(&smoke_name, "rate") / serving::SMOKE_FRACTION;
    let schedule =
        traffic::TrafficFamily::FlashCrowd.schedule(capacity, FLASH_LIVE_HORIZON_S, 0xF1A5);
    let before = squepa.metrics_snapshot().admission;
    let flash_live = serving::measure_schedule(
        server.local_addr(),
        &schedule,
        serving::CONNECTIONS,
        FLASH_LIVE_HORIZON_S,
    );
    let after = squepa.metrics_snapshot().admission;
    let (d_offered, d_served, d_shed) = (
        after.offered - before.offered,
        after.served - before.served,
        after.shed - before.shed,
    );
    let flash_live_ok = flash_live.errors == 0
        && flash_live.offered > 0
        && flash_live.offered == flash_live.served() + flash_live.shed
        && flash_live.offered as u64 == d_offered
        && flash_live.shed as u64 == d_shed
        && d_offered == d_served + d_shed;
    failed |= !flash_live_ok;
    println!(
        "live flash crowd ({FLASH_LIVE_HORIZON_S:.0}s @ {capacity:.0} qps capacity): client {} offered = {} served + {} shed, server delta {d_offered} = {d_served} + {d_shed}  {}",
        flash_live.offered,
        flash_live.served(),
        flash_live.shed,
        if flash_live_ok { "ok" } else { "REGRESSION" }
    );
    if !flash_live_ok {
        rows.push(("flash-live-two-sided-ledger".into(), false));
    }
    server.shutdown();

    let bad: Vec<&str> = rows.iter().filter(|(_, ok)| !ok).map(|(n, _)| n.as_str()).collect();
    if failed {
        eprintln!(
            "\nbench_gate: FAILED — {} scenario(s) out of band: {}",
            bad.len(),
            bad.join(", ")
        );
        eprintln!(
            "(tolerance ±{:.0}%; regenerate baselines with the bench binaries if intended)",
            TOLERANCE * 100.0
        );
        std::process::exit(1);
    }
    println!("\nbench_gate: all {} scenarios within ±{:.0}%", rows.len(), TOLERANCE * 100.0);
}
