//! CI serving smoke: boot the TCP server on loopback, drive an
//! open-loop sub-saturation load, and assert the run is healthy.
//!
//! Health means: **zero protocol errors** and the accounting invariant
//! `served + shed == offered` on both sides of the wire — the client's
//! per-request outcomes and the server's own admission ledger must
//! agree exactly. The served-latency histogram and a run transcript are
//! written to `target/serving-smoke/` for CI artifact upload (the
//! transcript is what you read when the job fails).
//!
//! ```sh
//! cargo run --release -p quepa-bench --bin serving_smoke -- [secs] [rate]
//! ```
//!
//! Defaults: 10 s at one quarter of the throughput bench's recorded
//! serving capacity — the same operating point `bench_gate` re-measures.
//! Exit code 0 on a healthy run, 1 on any violated invariant.

use std::path::PathBuf;
use std::time::Duration;

use quepa_bench::{serving, throughput};
use quepa_serve::Server;

/// Fallback sub-saturation rate when `BENCH_serving.json` is absent
/// (first recording run), requests/second.
const FALLBACK_RATE: f64 = 60.0;

fn main() {
    let mut args = std::env::args().skip(1);
    let secs: u64 = args.next().map(|a| a.parse().expect("secs: integer")).unwrap_or(10);
    let rate: f64 = args
        .next()
        .map(|a| a.parse().expect("rate: requests/second"))
        .unwrap_or_else(recorded_smoke_rate);

    let quepa = serving::bench_quepa();
    let mut server = Server::start(quepa.clone(), "127.0.0.1:0", serving::bench_admission())
        .expect("start smoke server");
    let addr = server.local_addr();
    println!("serving_smoke: server on {addr}, offering {rate:.0}/s open-loop for {secs}s");

    let report = serving::measure_open_loop(
        addr,
        serving::OpenLoopSpec {
            rate,
            duration: Duration::from_secs(secs),
            connections: serving::CONNECTIONS,
            seed: 0x5140,
        },
    );
    let ledger = quepa.metrics_snapshot().admission;
    server.shutdown();

    let mut transcript = vec![format!(
        "run: rate={rate:.1}/s secs={secs} connections={} query={:?} level={}",
        serving::CONNECTIONS,
        throughput::QUERY,
        throughput::LEVEL,
    )];
    transcript.extend(serving::histogram_lines(&report));
    transcript.push(format!(
        "server ledger: offered={} served={} degraded={} shed={}",
        ledger.offered, ledger.served, ledger.degraded, ledger.shed
    ));

    let mut violations = Vec::new();
    if report.offered == 0 {
        violations.push("no requests offered (schedule empty)".to_owned());
    }
    if report.errors != 0 {
        violations.push(format!("{} protocol errors (must be 0)", report.errors));
    }
    if report.offered != report.served() + report.shed + report.errors {
        violations.push(format!(
            "client accounting broken: {} offered != {} served + {} shed + {} errors",
            report.offered,
            report.served(),
            report.shed,
            report.errors
        ));
    }
    if ledger.offered as usize != report.offered
        || ledger.served as usize != report.served()
        || ledger.shed as usize != report.shed
    {
        violations.push(format!(
            "server ledger disagrees with the client: offered {} vs {}, served {} vs {}, shed {} vs {}",
            ledger.offered,
            report.offered,
            ledger.served,
            report.served(),
            ledger.shed,
            report.shed
        ));
    }
    for violation in &violations {
        transcript.push(format!("VIOLATION: {violation}"));
    }
    transcript
        .push(format!("verdict: {}", if violations.is_empty() { "healthy" } else { "FAILED" }));

    let dir = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/serving-smoke"));
    std::fs::create_dir_all(&dir).expect("create artifact dir");
    let body = transcript.join("\n") + "\n";
    std::fs::write(dir.join("histogram.txt"), &body).expect("write histogram artifact");
    print!("{body}");
    println!("artifacts in {}", dir.display());

    if !violations.is_empty() {
        eprintln!("serving_smoke: FAILED — {}", violations.join("; "));
        std::process::exit(1);
    }
    println!(
        "serving_smoke: healthy — {} served ({} degraded), {} shed, goodput {:.1} qps, p999 {:.4}s",
        report.served(),
        report.degraded,
        report.shed,
        report.goodput_qps,
        report.percentile_s(0.999)
    );
}

/// A quarter of the recorded serving capacity, or the fallback when the
/// sweep has not been recorded yet.
fn recorded_smoke_rate() -> f64 {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serving.json");
    let smoke = serving::scenario_name(serving::SMOKE_FRACTION);
    std::fs::read_to_string(path)
        .ok()
        .and_then(|text| quepa_bench::baseline::Baseline::parse(&text).ok()?.field(&smoke, "rate"))
        .unwrap_or(FALLBACK_RATE)
}
