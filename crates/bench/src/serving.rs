//! Open-loop network serving load: arrival-rate driven, not closed-loop.
//!
//! Closed-loop clients (the `throughput` bench) wait for each answer
//! before sending the next request, so an overloaded server silently
//! slows its own offered load — the classic coordinated-omission trap.
//! This module drives the `quepa-serve` TCP front end *open-loop*: a
//! deterministic seeded schedule of Poisson arrivals is computed up
//! front, writer threads inject each request at its scheduled instant
//! whether or not earlier answers came back, and latency is measured
//! from the **scheduled arrival**, not the send — queueing delay the
//! server imposes is part of the number.
//!
//! Accounting is client-side and total: every scheduled request is
//! offered, and each gets exactly one terminal outcome — served (full or
//! degraded), shed (`OVERLOAD`), or error (protocol/transport) — so
//! `offered == served + shed + errors` holds by construction and is
//! asserted by the CI smoke job against the server's own admission
//! ledger.

use std::io::BufReader;
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use quepa_core::{pool_width, Quepa};
use quepa_polystore::Deployment;
use quepa_serve::{
    augment_payload, read_response, send_request, AdmissionConfig, Request, Status, Verb,
};
use quepa_workload::{BuiltPolystore, WorkloadConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::throughput::{serving_config, DATABASE, LEVEL, QUERY};

/// Offered-rate sweep points, as fractions of measured capacity
/// (sub-saturation → 2× overload).
pub const SWEEP_FRACTIONS: [f64; 5] = [0.25, 0.5, 1.0, 1.5, 2.0];

/// The sweep point the PR gate re-measures (the CI smoke rate).
pub const SMOKE_FRACTION: f64 = 0.25;

/// Connections the schedule is dealt across in the recorded runs.
pub const CONNECTIONS: usize = 4;

/// The recorded scenario name of a sweep fraction.
pub fn scenario_name(fraction: f64) -> String {
    format!("serving/open-loop/{fraction:.2}x")
}

/// The serving-bench system: the throughput bench's polystore (200
/// albums × 2 replica sets, distributed deployment) behind the same
/// serving configuration, shared for the TCP server. Capacities are
/// therefore comparable with `BENCH_throughput.json`.
pub fn bench_quepa() -> Arc<Quepa> {
    let built = BuiltPolystore::build(WorkloadConfig {
        albums: 200,
        replica_sets: 2,
        deployment: Deployment::Distributed,
        seed: 42,
    });
    let quepa = built.into_quepa();
    quepa.set_optimizer(None);
    quepa.set_config(serving_config());
    quepa.drop_caches();
    Arc::new(quepa)
}

/// The admission thresholds of the recorded runs: executor and estimate
/// width from the shared [`pool_width`] clamp, degrade at 2× width,
/// shed at 8× width or a 500 ms estimated wait.
pub fn bench_admission() -> AdmissionConfig {
    let width = pool_width();
    AdmissionConfig {
        width,
        soft_depth: 2 * width,
        hard_depth: 8 * width,
        deadline: Duration::from_millis(500),
    }
}

/// Measures peak sustainable goodput by offering a deliberately
/// unsustainable rate: with the gate shedding the excess, the served
/// rate converges on capacity.
pub fn probe_capacity(addr: SocketAddr) -> f64 {
    let report = measure_open_loop(
        addr,
        OpenLoopSpec {
            rate: 4000.0,
            duration: Duration::from_secs(2),
            connections: CONNECTIONS,
            seed: 0xCAFE,
        },
    );
    report.goodput_qps
}

/// One open-loop run: rate, horizon, fan-in and determinism knobs.
#[derive(Debug, Clone, Copy)]
pub struct OpenLoopSpec {
    /// Offered arrival rate, requests/second across all connections.
    pub rate: f64,
    /// Schedule horizon.
    pub duration: Duration,
    /// TCP connections the schedule is dealt across (round-robin).
    pub connections: usize,
    /// Seed of the arrival schedule.
    pub seed: u64,
}

/// Terminal outcome of one scheduled request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleStatus {
    /// Answered `OK`.
    Full,
    /// Answered `DEGRADED` (level-0 partial).
    Degraded,
    /// Rejected with `OVERLOAD`.
    Shed,
    /// Protocol/transport failure or no response at all.
    Error,
}

/// One scheduled request's outcome, tagged with its scheduled arrival —
/// the unit the time-varying traffic families slice into phase windows.
#[derive(Debug, Clone, Copy)]
pub struct Sample {
    /// Scheduled arrival offset from the run start, seconds.
    pub arrival_s: f64,
    /// Scheduled-arrival→response latency, seconds; negative when no
    /// response was ever matched (errors have no latency).
    pub latency_s: f64,
    /// Terminal outcome.
    pub status: SampleStatus,
}

/// Ledger + latency digest of one arrival window of a run — the unit the
/// flash-crowd recovery gate compares across phases.
#[derive(Debug, Clone)]
pub struct PhaseStats {
    /// Requests scheduled inside the window.
    pub offered: usize,
    /// Full answers.
    pub served_full: usize,
    /// Degraded answers.
    pub degraded: usize,
    /// `OVERLOAD` rejections.
    pub shed: usize,
    /// Failures.
    pub errors: usize,
    /// Served latencies inside the window, sorted ascending, seconds.
    pub latencies_s: Vec<f64>,
}

impl PhaseStats {
    /// Served answers, full and degraded.
    pub fn served(&self) -> usize {
        self.served_full + self.degraded
    }

    /// Whether the window's ledger balances: every offered request has
    /// exactly one terminal outcome.
    pub fn balances(&self) -> bool {
        self.offered == self.served() + self.shed + self.errors
    }

    /// Nearest-rank percentile of the window's served latencies.
    pub fn percentile_s(&self, q: f64) -> f64 {
        percentile(&self.latencies_s, q)
    }
}

/// What one open-loop run measured.
#[derive(Debug, Clone)]
pub struct OpenLoopReport {
    /// Scheduled (and sent) requests.
    pub offered: usize,
    /// Answered with a full (`OK`) answer.
    pub served_full: usize,
    /// Answered with a degraded (`DEGRADED`) answer.
    pub degraded: usize,
    /// Rejected with `OVERLOAD`.
    pub shed: usize,
    /// Protocol or transport failures (must be 0 on a healthy run).
    pub errors: usize,
    /// Wall-clock seconds from first scheduled arrival to last response.
    pub wall_s: f64,
    /// Served answers (full + degraded) per wall second — goodput.
    pub goodput_qps: f64,
    /// Scheduled-arrival→response latencies of served answers, sorted
    /// ascending, seconds.
    pub latencies_s: Vec<f64>,
    /// Every scheduled request's outcome, sorted by scheduled arrival.
    pub samples: Vec<Sample>,
}

impl OpenLoopReport {
    /// Served answers, full and degraded.
    pub fn served(&self) -> usize {
        self.served_full + self.degraded
    }

    /// Shed fraction of offered load.
    pub fn shed_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.shed as f64 / self.offered as f64
        }
    }

    /// Nearest-rank percentile of the served latencies, seconds.
    pub fn percentile_s(&self, q: f64) -> f64 {
        percentile(&self.latencies_s, q)
    }

    /// Mean served latency, seconds.
    pub fn mean_s(&self) -> f64 {
        if self.latencies_s.is_empty() {
            0.0
        } else {
            self.latencies_s.iter().sum::<f64>() / self.latencies_s.len() as f64
        }
    }

    /// Ledger + latency digest of the requests scheduled inside
    /// `[from_s, to_s)` — how the traffic families split a run into
    /// pre-burst / burst / recovery windows.
    pub fn phase(&self, from_s: f64, to_s: f64) -> PhaseStats {
        let mut stats = PhaseStats {
            offered: 0,
            served_full: 0,
            degraded: 0,
            shed: 0,
            errors: 0,
            latencies_s: Vec::new(),
        };
        for sample in &self.samples {
            if sample.arrival_s < from_s || sample.arrival_s >= to_s {
                continue;
            }
            stats.offered += 1;
            match sample.status {
                SampleStatus::Full => {
                    stats.served_full += 1;
                    stats.latencies_s.push(sample.latency_s);
                }
                SampleStatus::Degraded => {
                    stats.degraded += 1;
                    stats.latencies_s.push(sample.latency_s);
                }
                SampleStatus::Shed => stats.shed += 1,
                SampleStatus::Error => stats.errors += 1,
            }
        }
        stats.latencies_s.sort_by(f64::total_cmp);
        stats
    }
}

/// Nearest-rank percentile over an ascending-sorted slice.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// The deterministic Poisson arrival schedule: offsets (seconds from the
/// run start) of every request inside the horizon, ascending. Same seed,
/// rate and duration ⇒ the same schedule, bit for bit.
pub fn arrival_schedule(rate: f64, duration: Duration, seed: u64) -> Vec<f64> {
    assert!(rate > 0.0, "open-loop rate must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let horizon = duration.as_secs_f64();
    let mut at = 0.0f64;
    let mut schedule = Vec::with_capacity((rate * horizon) as usize + 8);
    loop {
        // Exponential inter-arrival: -ln(1-u)/λ, u ∈ [0,1).
        let u: f64 = rng.gen_range(0.0..1.0);
        at += -f64::ln(1.0 - u) / rate;
        if at >= horizon {
            return schedule;
        }
        schedule.push(at);
    }
}

/// Runs one open-loop measurement against a live server at `addr`.
///
/// Each connection gets every `connections`-th arrival; a writer thread
/// injects requests at their scheduled instants while a reader thread
/// collects responses (responses return in completion order, matched by
/// request id). The workload is the throughput bench's query
/// (`AUGMENT transactions level 1`), so capacities are comparable.
pub fn measure_open_loop(addr: SocketAddr, spec: OpenLoopSpec) -> OpenLoopReport {
    let schedule = arrival_schedule(spec.rate, spec.duration, spec.seed);
    measure_schedule(addr, &schedule, spec.connections, spec.duration.as_secs_f64())
}

/// Runs an arbitrary precomputed arrival schedule (ascending offsets in
/// seconds) against a live server — the open-loop engine behind both the
/// constant-rate sweep ([`measure_open_loop`]) and the time-varying
/// traffic families ([`crate::traffic`]), which shape their own
/// schedules.
pub fn measure_schedule(
    addr: SocketAddr,
    schedule: &[f64],
    connections: usize,
    horizon_s: f64,
) -> OpenLoopReport {
    let offered = schedule.len();
    let connections = connections.max(1);
    // Deal arrivals round-robin: (offset, connection-local id).
    let mut per_conn: Vec<Vec<f64>> = vec![Vec::new(); connections];
    for (i, at) in schedule.iter().enumerate() {
        per_conn[i % connections].push(*at);
    }

    struct ConnOutcome {
        served_full: usize,
        degraded: usize,
        shed: usize,
        errors: usize,
        latencies_s: Vec<f64>,
        samples: Vec<Sample>,
        last_response_s: f64,
    }

    let barrier = Barrier::new(connections + 1);
    let mut outcomes: Vec<ConnOutcome> = Vec::with_capacity(connections);
    std::thread::scope(|s| {
        let handles: Vec<_> = per_conn
            .iter()
            .map(|arrivals| {
                let barrier = &barrier;
                s.spawn(move || {
                    let writer = TcpStream::connect(addr).expect("connect to server");
                    let reader_stream = writer.try_clone().expect("clone stream");
                    barrier.wait();
                    let start = Instant::now();
                    let expected = arrivals.len();
                    let reader = std::thread::spawn(move || {
                        let mut reader = BufReader::new(reader_stream);
                        // (status, receipt offset) per response, id-keyed.
                        let mut got: Vec<Option<(Status, f64)>> = vec![None; expected];
                        for _ in 0..expected {
                            match read_response(&mut reader) {
                                Ok(Some(response)) => {
                                    let at = start.elapsed().as_secs_f64();
                                    let slot = response.id as usize;
                                    if slot < expected && got[slot].is_none() {
                                        got[slot] = Some((response.status, at));
                                    }
                                }
                                // Early close or garbage: remaining ids
                                // stay None and count as errors.
                                Ok(None) | Err(_) => break,
                            }
                        }
                        got
                    });
                    let mut writer = writer;
                    let mut send_failures = 0usize;
                    for (id, at) in arrivals.iter().enumerate() {
                        let target = Duration::from_secs_f64(*at);
                        let elapsed = start.elapsed();
                        if target > elapsed {
                            std::thread::sleep(target - elapsed);
                        }
                        let request = Request {
                            id: id as u64,
                            verb: Verb::Augment,
                            payload: augment_payload(DATABASE, LEVEL, QUERY),
                        };
                        if send_request(&mut writer, &request).is_err() {
                            send_failures += 1;
                        }
                    }
                    let got = reader.join().expect("reader thread");
                    let _ = writer.shutdown(std::net::Shutdown::Both);
                    let mut outcome = ConnOutcome {
                        served_full: 0,
                        degraded: 0,
                        shed: 0,
                        errors: 0,
                        latencies_s: Vec::new(),
                        samples: Vec::with_capacity(got.len()),
                        last_response_s: 0.0,
                    };
                    let _ = send_failures; // unanswered ids count below
                    for (id, slot) in got.iter().enumerate() {
                        match slot {
                            Some((status, received_at)) => {
                                outcome.last_response_s = outcome.last_response_s.max(*received_at);
                                let latency = received_at - arrivals[id];
                                let sample_status = match status {
                                    Status::Ok => {
                                        outcome.served_full += 1;
                                        outcome.latencies_s.push(latency);
                                        SampleStatus::Full
                                    }
                                    Status::Degraded => {
                                        outcome.degraded += 1;
                                        outcome.latencies_s.push(latency);
                                        SampleStatus::Degraded
                                    }
                                    Status::Overload => {
                                        outcome.shed += 1;
                                        SampleStatus::Shed
                                    }
                                    Status::Error => {
                                        outcome.errors += 1;
                                        SampleStatus::Error
                                    }
                                };
                                outcome.samples.push(Sample {
                                    arrival_s: arrivals[id],
                                    latency_s: if matches!(
                                        sample_status,
                                        SampleStatus::Full | SampleStatus::Degraded
                                    ) {
                                        latency
                                    } else {
                                        -1.0
                                    },
                                    status: sample_status,
                                });
                            }
                            None => {
                                outcome.errors += 1;
                                outcome.samples.push(Sample {
                                    arrival_s: arrivals[id],
                                    latency_s: -1.0,
                                    status: SampleStatus::Error,
                                });
                            }
                        }
                    }
                    outcome
                })
            })
            .collect();
        barrier.wait();
        outcomes.extend(handles.into_iter().map(|h| h.join().expect("connection thread")));
    });

    let mut report = OpenLoopReport {
        offered,
        served_full: 0,
        degraded: 0,
        shed: 0,
        errors: 0,
        wall_s: 0.0,
        goodput_qps: 0.0,
        latencies_s: Vec::with_capacity(offered),
        samples: Vec::with_capacity(offered),
    };
    let mut wall = horizon_s;
    for outcome in outcomes {
        report.served_full += outcome.served_full;
        report.degraded += outcome.degraded;
        report.shed += outcome.shed;
        report.errors += outcome.errors;
        report.latencies_s.extend(outcome.latencies_s);
        report.samples.extend(outcome.samples);
        wall = wall.max(outcome.last_response_s);
    }
    report.latencies_s.sort_by(f64::total_cmp);
    report.samples.sort_by(|a, b| a.arrival_s.total_cmp(&b.arrival_s));
    report.wall_s = wall;
    report.goodput_qps = if wall > 0.0 { report.served() as f64 / wall } else { 0.0 };
    report
}

/// Renders the served-latency distribution as log2-bucketed text lines —
/// the artifact the CI smoke job uploads.
pub fn histogram_lines(report: &OpenLoopReport) -> Vec<String> {
    let mut lines = vec![format!(
        "offered={} served={} degraded={} shed={} errors={}",
        report.offered,
        report.served(),
        report.degraded,
        report.shed,
        report.errors
    )];
    if report.latencies_s.is_empty() {
        lines.push("no served latencies".into());
        return lines;
    }
    let mut buckets: Vec<(u32, usize)> = Vec::new();
    for latency in &report.latencies_s {
        let us = (latency * 1e6).max(1.0) as u64;
        let bucket = 64 - us.leading_zeros();
        match buckets.last_mut() {
            Some((b, n)) if *b == bucket => *n += 1,
            _ => buckets.push((bucket, 1)),
        }
    }
    for (bucket, count) in buckets {
        lines.push(format!("le_{}us {}", 1u64 << bucket, count));
    }
    lines.push(format!(
        "p50_s={:.6} p99_s={:.6} p999_s={:.6} mean_s={:.6}",
        report.percentile_s(0.50),
        report.percentile_s(0.99),
        report.percentile_s(0.999),
        report.mean_s()
    ));
    lines
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use quepa_polystore::Deployment;
    use quepa_serve::{AdmissionConfig, Server};
    use quepa_workload::{BuiltPolystore, WorkloadConfig};

    #[test]
    fn schedule_is_deterministic_and_rate_shaped() {
        let a = arrival_schedule(200.0, Duration::from_secs(2), 7);
        let b = arrival_schedule(200.0, Duration::from_secs(2), 7);
        assert_eq!(a, b, "same seed ⇒ same schedule");
        let c = arrival_schedule(200.0, Duration::from_secs(2), 8);
        assert_ne!(a, c, "different seed ⇒ different schedule");
        // ~400 expected; Poisson with σ=20 — accept a generous band.
        assert!((300..=500).contains(&a.len()), "got {} arrivals", a.len());
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "ascending offsets");
        assert!(a.iter().all(|t| (0.0..2.0).contains(t)));
    }

    #[test]
    fn open_loop_accounting_balances_against_a_live_server() {
        let built = BuiltPolystore::build(WorkloadConfig {
            albums: 60,
            replica_sets: 0,
            deployment: Deployment::InProcess,
            seed: 5,
        });
        let quepa = Arc::new(built.into_quepa());
        let server =
            Server::start(Arc::clone(&quepa), "127.0.0.1:0", AdmissionConfig::default()).unwrap();
        let report = measure_open_loop(
            server.local_addr(),
            OpenLoopSpec {
                rate: 100.0,
                duration: Duration::from_millis(600),
                connections: 2,
                seed: 11,
            },
        );
        assert!(report.offered > 0);
        assert_eq!(report.errors, 0, "no protocol errors at sub-saturation");
        assert_eq!(
            report.offered,
            report.served() + report.shed + report.errors,
            "client-side accounting must balance"
        );
        // The server's own ledger agrees.
        let admission = quepa.metrics_snapshot().admission;
        assert_eq!(admission.offered as usize, report.offered);
        assert_eq!(admission.served as usize, report.served());
        assert_eq!(admission.shed as usize, report.shed);
        assert_eq!(report.latencies_s.len(), report.served());
        assert!(report.goodput_qps > 0.0);
        assert!(!histogram_lines(&report).is_empty());
        // Per-request samples cover every offered request, and any
        // arrival window's ledger balances.
        assert_eq!(report.samples.len(), report.offered);
        assert!(report.samples.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s));
        let whole = report.phase(0.0, f64::INFINITY);
        assert!(whole.balances());
        assert_eq!(whole.offered, report.offered);
        let (first, second) = (report.phase(0.0, 0.3), report.phase(0.3, f64::INFINITY));
        assert!(first.balances() && second.balances());
        assert_eq!(first.offered + second.offered, report.offered);
    }

    #[test]
    fn percentile_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 0.5), 3.0);
        assert_eq!(percentile(&v, 0.999), 5.0);
        assert_eq!(percentile(&[], 0.9), 0.0);
    }
}
