//! Cross-store filter pushdown vs client-side fetch-all.
//!
//! One filtered augmented search (`key contains "9"`) over the
//! distributed 10-store lab, measured with the planner's pushdown forced
//! on and forced off. The answers are bit-identical (the differential
//! harness proves it exhaustively); what changes is the wire: pushdown
//! executes each (database, collection) group as ONE `fetch_where`
//! round trip carrying the predicate, and only matching objects travel
//! back — fetch-all pays the full batched fan-out and filters
//! client-side. Under the distributed deployment's per-round-trip and
//! per-byte costs the pushdown side must hold a ≥2× speedup
//! (`bench_gate` enforces it, recorded and live).
//!
//! The configuration pins `threads_size = 1` (round trips stack
//! serially, so the wire saving is exactly what's measured) and
//! `cache_size = 0` (every measured query pays its wire costs).

use quepa_core::{AugmenterKind, QuepaConfig};
use quepa_pdm::Pushdown;
use quepa_polystore::Deployment;

use crate::Lab;

/// The workload query: 50 original objects ⇒ 50 augmentation seeds.
pub const QUERY: &str = "SELECT * FROM inventory WHERE seq < 50";

/// The query's target database.
pub const DATABASE: &str = "transactions";

/// Augmentation level (level 1 exercises the full fetch fan-out).
pub const LEVEL: usize = 1;

/// The canonical benchmark predicate: key-only, supported natively by
/// all four store kinds, selective enough that most objects stay home.
pub const FILTER: &str = "key contains \"9\"";

/// The parsed benchmark predicate.
pub fn filter() -> Pushdown {
    Pushdown::parse(FILTER).expect("benchmark filter is valid")
}

/// The bench polystore: 10 stores, distributed deployment (~400 µs per
/// round trip) — the deployment where wire savings pay.
pub fn lab() -> Lab {
    Lab::new(200, 2, Deployment::Distributed)
}

/// The measured configuration: batched fan-out, inline fetch units, no
/// cache, planner pushdown toggled per mode.
pub fn config(pushdown: bool) -> QuepaConfig {
    QuepaConfig {
        augmenter: AugmenterKind::OuterBatch,
        batch_size: 8,
        threads_size: 1,
        cache_size: 0,
        pushdown,
        ..QuepaConfig::default()
    }
}

/// The recorded scenario name of one planner mode.
pub fn scenario_name(pushdown: bool) -> String {
    format!("pushdown/10stores/level{LEVEL}/{}", mode_name(pushdown))
}

/// `pushdown` / `fetchall`.
pub fn mode_name(pushdown: bool) -> &'static str {
    if pushdown {
        "pushdown"
    } else {
        "fetchall"
    }
}

/// One measured planner mode.
#[derive(Debug, Clone, Copy)]
pub struct PushdownPoint {
    /// Median end-to-end filtered-search seconds.
    pub mean_s: f64,
    /// Augmented objects surviving the predicate.
    pub augmented: usize,
    /// Missing keys (gone or unreachable — filter-independent).
    pub missing: usize,
}

/// Median filtered-search seconds over `runs` cold executions after
/// three throwaway warm-ups — the answer's own `duration`, the same
/// simulated-latency methodology every other baseline records (medians
/// resist scheduler spikes; see `bench_gate`).
pub fn measure(lab: &Lab, pushdown: bool, runs: usize) -> PushdownPoint {
    let f = filter();
    lab.quepa.set_optimizer(None);
    lab.quepa.set_config(config(pushdown));
    let probe = || {
        lab.quepa.drop_caches();
        lab.quepa
            .augmented_search_filtered(DATABASE, QUERY, LEVEL, &f)
            .expect("benchmark query must be valid")
    };
    for _ in 0..3 {
        probe();
    }
    let mut augmented = 0;
    let mut missing = 0;
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let answer = probe();
            augmented = answer.augmented.len();
            missing = answer.missing.len();
            answer.duration.as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    PushdownPoint { mean_s: samples[runs / 2], augmented, missing }
}

/// The two planner modes answer bit-identically — the emitter's own
/// sanity check before anything is recorded.
pub fn answers_agree(lab: &Lab) -> bool {
    let f = filter();
    lab.quepa.set_optimizer(None);
    let run = |p: bool| {
        lab.quepa.set_config(config(p));
        lab.quepa.drop_caches();
        lab.quepa
            .augmented_search_filtered(DATABASE, QUERY, LEVEL, &f)
            .expect("benchmark query must be valid")
            .normal_form()
    };
    run(true) == run(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modes_agree_and_pushdown_is_not_slower() {
        let lab = lab();
        assert!(answers_agree(&lab));
        let on = measure(&lab, true, 5);
        let off = measure(&lab, false, 5);
        assert!(on.augmented > 0, "the filter must keep some objects");
        assert_eq!(on.augmented, off.augmented);
        assert_eq!(on.missing, off.missing);
        // The full ≥2× claim is the bench gate's job; here pushdown must
        // simply not lose to the fan-out it replaces.
        assert!(
            on.mean_s < off.mean_s,
            "pushdown ({:.6}s) should beat fetch-all ({:.6}s)",
            on.mean_s,
            off.mean_s
        );
    }
}
