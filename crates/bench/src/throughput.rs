//! Closed-loop concurrent-serving throughput.
//!
//! One shared [`Lab`] instance serves N client threads, each issuing the
//! same multi-seed augmented search back to back; a barrier releases them
//! together and the wall clock over the whole burst yields QPS. The
//! serving configuration deliberately pins `threads_size = 1` — each
//! query executes its fetch units inline on its own client thread — so
//! the *only* concurrency axis is the client count: the measured scaling
//! is cross-query overlap of simulated round-trip latency (the
//! distributed deployment sleeps ~400 µs per round trip), not intra-query
//! fan-out. `cache_size = 0` keeps every measured query on the
//! round-trip path (an all-hits steady state would collapse the
//! comparison into pure compute); with the cache off, cross-query
//! single-flight is off too, so every client pays its own round trips
//! and the bench measures raw serving overlap.
//!
//! On a single-core host the expected shape is: serial latency
//! ≈ compute + Σ group sleeps, while N clients overlap their sleeps and
//! saturate the core, capping QPS at 1/compute — a ≥4× ratio at 16
//! clients. More cores only widen the gap.

use std::sync::Barrier;
use std::time::Instant;

use quepa_core::{AugmenterKind, QuepaConfig};
use quepa_polystore::Deployment;
use quepa_workload::zipf_query_stream;

use crate::Lab;

/// Client counts driven by the bench, serial first.
pub const CLIENT_LEVELS: [usize; 4] = [1, 4, 16, 64];

/// The workload query: 50 original objects ⇒ 50 augmentation seeds.
pub const QUERY: &str = "SELECT * FROM inventory WHERE seq < 50";

/// The query's target database.
pub const DATABASE: &str = "transactions";

/// Augmentation level (level 1 exercises the full fetch fan-out).
pub const LEVEL: usize = 1;

/// One measured concurrency level.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputPoint {
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Total queries answered across all clients.
    pub queries: usize,
    /// Queries per wall-clock second over the burst.
    pub qps: f64,
    /// Wall seconds per query (`1 / qps` — the gate's comparison unit).
    pub mean_s: f64,
    /// Median per-query latency (seconds).
    pub p50_s: f64,
    /// 99th-percentile per-query latency (seconds).
    pub p99_s: f64,
}

/// The serving configuration under test (see the module docs for why
/// `threads_size = 1` and `cache_size = 0`).
pub fn serving_config() -> QuepaConfig {
    QuepaConfig {
        augmenter: AugmenterKind::OuterBatch,
        batch_size: 8,
        threads_size: 1,
        cache_size: 0,
        ..QuepaConfig::default()
    }
}

/// The bench polystore: 10 stores, distributed deployment (~400 µs per
/// round trip) — the deployment where cross-query overlap pays.
pub fn lab() -> Lab {
    Lab::new(200, 2, Deployment::Distributed)
}

/// The recorded scenario name for a client count.
pub fn scenario_name(clients: usize) -> String {
    format!("distributed/10stores/level{LEVEL}/c{clients}")
}

/// Queries each client issues: sized so every level answers a comparable
/// total (≥192) without the serial level taking tens of seconds.
pub fn default_per_client(clients: usize) -> usize {
    (192 / clients).max(4)
}

/// Runs one closed-loop burst: `clients` threads × `per_client` queries
/// each, released together by a barrier.
pub fn measure(lab: &Lab, clients: usize, per_client: usize) -> ThroughputPoint {
    lab.quepa.set_optimizer(None);
    lab.quepa.set_config(serving_config());
    lab.quepa.drop_caches();
    for _ in 0..3 {
        let _ = lab.quepa.augmented_search(DATABASE, QUERY, LEVEL);
    }
    let _ = lab.quepa.take_logs();

    let barrier = Barrier::new(clients + 1);
    let mut latencies: Vec<f64> = Vec::with_capacity(clients * per_client);
    let mut wall = 0.0f64;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let barrier = &barrier;
                let quepa = &lab.quepa;
                s.spawn(move || {
                    barrier.wait();
                    let mut mine = Vec::with_capacity(per_client);
                    for _ in 0..per_client {
                        let start = Instant::now();
                        quepa
                            .augmented_search(DATABASE, QUERY, LEVEL)
                            .expect("throughput query must be valid");
                        mine.push(start.elapsed().as_secs_f64());
                    }
                    mine
                })
            })
            .collect();
        let start = Instant::now();
        barrier.wait();
        for h in handles {
            latencies.extend(h.join().expect("client thread"));
        }
        wall = start.elapsed().as_secs_f64();
    });
    let _ = lab.quepa.take_logs();

    latencies.sort_by(f64::total_cmp);
    let queries = latencies.len();
    ThroughputPoint {
        clients,
        queries,
        qps: queries as f64 / wall,
        mean_s: wall / queries as f64,
        p50_s: percentile(&latencies, 0.50),
        p99_s: percentile(&latencies, 0.99),
    }
}

// ---- Zipf-skewed serving -----------------------------------------------

/// Ranks of the Zipf stream: 16 disjoint windows of the inventory table.
pub const ZIPF_RANKS: usize = 16;

/// Objects per window query (12 ⇒ the coldest rank still addresses live
/// rows of the 200-album lab's inventory: 16 × 12 = 192 ≤ 200).
pub const ZIPF_WINDOW: usize = 12;

/// The classic web/cache skew exponent.
pub const ZIPF_S: f64 = 1.1;

/// The skewed serving configuration: same augmenter and inline fetch
/// units as [`serving_config`], but with the cache (and therefore
/// cross-query single-flight) **on** — a Zipf stream concentrates on the
/// hot windows, so the measured throughput exercises the concurrent
/// cache/flight path rather than raw round-trip overlap.
pub fn zipf_serving_config() -> QuepaConfig {
    QuepaConfig { cache_size: 4096, ..serving_config() }
}

/// The recorded scenario name of a skewed client count.
pub fn zipf_scenario_name(clients: usize) -> String {
    format!("distributed/10stores/level{LEVEL}/zipf/c{clients}")
}

/// Runs one skewed closed-loop burst: `clients` threads each replaying
/// its own seeded Zipf window-query stream of `per_client` queries.
pub fn measure_zipf(lab: &Lab, clients: usize, per_client: usize) -> ThroughputPoint {
    lab.quepa.set_optimizer(None);
    lab.quepa.set_config(zipf_serving_config());
    lab.quepa.drop_caches();
    let _ = lab.quepa.take_logs();

    let barrier = Barrier::new(clients + 1);
    let mut latencies: Vec<f64> = Vec::with_capacity(clients * per_client);
    let mut wall = 0.0f64;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|client| {
                let barrier = &barrier;
                let quepa = &lab.quepa;
                s.spawn(move || {
                    let stream = zipf_query_stream(
                        per_client,
                        ZIPF_RANKS,
                        ZIPF_S,
                        ZIPF_WINDOW,
                        zipf_client_seed(client),
                    );
                    barrier.wait();
                    let mut mine = Vec::with_capacity(per_client);
                    for q in &stream {
                        let start = Instant::now();
                        quepa
                            .augmented_search(&q.database, &q.query, LEVEL)
                            .expect("zipf query must be valid");
                        mine.push(start.elapsed().as_secs_f64());
                    }
                    mine
                })
            })
            .collect();
        let start = Instant::now();
        barrier.wait();
        for h in handles {
            latencies.extend(h.join().expect("client thread"));
        }
        wall = start.elapsed().as_secs_f64();
    });
    let _ = lab.quepa.take_logs();

    latencies.sort_by(f64::total_cmp);
    let queries = latencies.len();
    ThroughputPoint {
        clients,
        queries,
        qps: queries as f64 / wall,
        mean_s: wall / queries as f64,
        p50_s: percentile(&latencies, 0.50),
        p99_s: percentile(&latencies, 0.99),
    }
}

/// Per-client Zipf stream seed — distinct per client, stable per run.
fn zipf_client_seed(client: usize) -> u64 {
    0x5eed ^ (client as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_measures_and_scales_sanely() {
        let lab = lab();
        let serial = measure(&lab, 1, 6);
        assert_eq!(serial.queries, 6);
        assert!(serial.qps > 0.0 && serial.p50_s > 0.0 && serial.p99_s >= serial.p50_s);
        let quad = measure(&lab, 4, 4);
        assert_eq!(quad.queries, 16);
        // Overlapped round trips must not make 4 clients *slower* than
        // one; the full ≥4× claim at 16 clients is the bench gate's job.
        assert!(
            quad.qps > serial.qps,
            "4 clients ({:.0} qps) should beat serial ({:.0} qps)",
            quad.qps,
            serial.qps
        );
    }

    #[test]
    fn zipf_burst_serves_skewed_streams() {
        let lab = lab();
        let p = measure_zipf(&lab, 2, 4);
        assert_eq!(p.queries, 8);
        assert!(p.qps > 0.0 && p.p50_s > 0.0 && p.p99_s >= p.p50_s);
        // Distinct clients replay distinct streams.
        assert_ne!(zipf_client_seed(0), zipf_client_seed(1));
    }

    #[test]
    fn percentile_picks_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 0.50), 3.0);
        assert_eq!(percentile(&v, 0.99), 5.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }
}
