//! The durability sweep (`benches/recovery.rs`, gated by `bench_gate`).
//!
//! Two questions, one recorded file (`BENCH_recovery.json`):
//!
//! * **What does the WAL cost a mutation?** A fixed synthetic stream of
//!   [`IndexOp`]s is applied one batch at a time through four paths:
//!   `baseline` (the raw sharded update the mutation path wraps —
//!   pre-durability code), `wal-off` (a volatile
//!   [`Quepa::apply_mutations`] — the shared entry point with durability
//!   compiled in but not attached), `wal-buffered` (durable,
//!   fsync-at-checkpoint) and `wal-fsync` (durable, fsync-per-commit).
//!   The acceptance pin is that `wal-off` costs the same as `baseline`
//!   (±2% recorded, ≤1.05× live): durability must be free when unused.
//! * **What does recovery cost?** A durable directory holding a
//!   checkpoint cut at the stream's midpoint plus a WAL tail of the
//!   second half is recovered cold ([`quepa_wal::recover`]: load 16
//!   shard files + replay the tail). Recorded at 10⁴ and 10⁵ ops; the
//!   gate bounds the growth ratio (≤25× for 10× ops — recovery must
//!   stay roughly linear in the log, never quadratic).

use std::path::{Path, PathBuf};
use std::time::Instant;

use quepa_aindex::{AIndex, ShardedIndex};
use quepa_core::{IndexOp, Quepa, QuepaConfig, RecoveryOptions, SyncPolicy};
use quepa_pdm::{GlobalKey, Probability};
use quepa_polystore::Deployment;
use quepa_wal::RecoveryReport;
use quepa_workload::{BuiltPolystore, WorkloadConfig};

/// Ops per mutation measurement (the `1e4` point).
pub const MUTATION_OPS: usize = 10_000;

/// Batch size of one commit — matches the serving path's default batch.
pub const BATCH: usize = 16;

/// A scratch directory for one durable measurement; removed on drop.
pub struct BenchDir(pub PathBuf);

impl BenchDir {
    /// Creates a fresh empty directory under the system temp dir.
    pub fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("quepa-bench-recovery-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create bench dir");
        BenchDir(dir)
    }
}

impl Drop for BenchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn key(i: usize) -> GlobalKey {
    format!("db{}.c.k{i}", i % 8).parse().expect("valid key")
}

/// A deterministic synthetic mutation stream: a growing chain of
/// identity and matching p-relations over 8 stores with a removal every
/// 16th op — the same op mix the crash differential scripts, sized for
/// benchmarking. Pure arithmetic, no RNG: the stream is identical on
/// every machine that records a baseline.
pub fn ops(count: usize) -> Vec<IndexOp> {
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        out.push(if i % 16 == 15 {
            // Remove a key inserted ~half a window ago: always live,
            // always connected.
            IndexOp::RemoveObject { key: key(i - 8) }
        } else if i % 3 == 0 {
            IndexOp::InsertIdentity {
                a: key(i),
                b: key(i + 1),
                p: Probability::of(0.8 + (i % 20) as f64 / 100.0),
            }
        } else {
            IndexOp::InsertMatching {
                a: key(i),
                b: key(i / 2),
                p: Probability::of(0.5 + (i % 40) as f64 / 100.0),
            }
        });
    }
    out
}

/// One measured mutation path.
#[derive(Debug, Clone, Copy)]
pub struct MutationPoint {
    /// Ops applied.
    pub ops: usize,
    /// Wall seconds per op (the gate's comparison unit).
    pub mean_s: f64,
    /// Ops per wall-clock second.
    pub qps: f64,
}

fn point(count: usize, wall: f64) -> MutationPoint {
    MutationPoint { ops: count, mean_s: wall / count as f64, qps: count as f64 / wall }
}

/// The raw sharded update the durable mutation path wraps: one
/// `ShardedIndex::update` per batch, no Quepa, no WAL — the
/// pre-durability mutation cost.
pub fn mutation_baseline(stream: &[IndexOp]) -> MutationPoint {
    let sharded = ShardedIndex::new(AIndex::new());
    let t0 = Instant::now();
    for batch in stream.chunks(BATCH) {
        sharded.update(|ix| {
            for op in batch {
                op.apply(ix);
            }
        });
    }
    point(stream.len(), t0.elapsed().as_secs_f64())
}

fn bench_polystore() -> BuiltPolystore {
    // The smallest workload build: the mutation stream is synthetic, the
    // polystore only exists so Quepa has stores to attach to.
    BuiltPolystore::build(WorkloadConfig {
        albums: 10,
        replica_sets: 0,
        deployment: Deployment::InProcess,
        seed: 42,
    })
}

/// `Quepa::apply_mutations` without a durable attachment — the shared
/// mutation entry point, WAL off. Must cost the same as
/// [`mutation_baseline`].
pub fn mutation_wal_off(stream: &[IndexOp]) -> MutationPoint {
    let quepa = Quepa::new(bench_polystore().polystore, AIndex::new());
    let t0 = Instant::now();
    for batch in stream.chunks(BATCH) {
        quepa.apply_mutations(batch).expect("volatile apply");
    }
    point(stream.len(), t0.elapsed().as_secs_f64())
}

/// The full durable commit path: WAL append (under `sync`), store flush,
/// sharded apply, checkpoint cuts when a shard compacts.
pub fn mutation_durable(stream: &[IndexOp], sync: SyncPolicy, tag: &str) -> MutationPoint {
    let dir = BenchDir::new(tag);
    let quepa = Quepa::create_durable(
        bench_polystore().polystore,
        AIndex::new(),
        QuepaConfig::default(),
        &dir.0,
        sync,
    )
    .expect("create durable");
    let t0 = Instant::now();
    for batch in stream.chunks(BATCH) {
        quepa.apply_mutations(batch).expect("durable apply");
    }
    point(stream.len(), t0.elapsed().as_secs_f64())
}

/// Lays out a durable directory for the cold-recovery measurement: a
/// checkpoint cut of the stream's first half at the midpoint LSN and a
/// WAL holding the full stream (so recovery replays the second half).
pub fn build_durable_dir(dir: &Path, stream: &[IndexOp]) {
    let mid = stream.len() / 2;
    let (mut wal, _) =
        quepa_wal::Wal::open(&quepa_wal::wal_path(dir), SyncPolicy::Buffered).expect("open wal");
    for op in &stream[..mid] {
        wal.append(std::slice::from_ref(op)).expect("append");
    }
    let sharded = ShardedIndex::new(AIndex::new());
    sharded.update(|ix| {
        for op in &stream[..mid] {
            op.apply(ix);
        }
    });
    quepa_wal::write_cut(dir, mid as u64, |shard| Some(sharded.serialize_shard(shard)))
        .expect("write cut");
    for op in &stream[mid..] {
        wal.append(std::slice::from_ref(op)).expect("append");
    }
}

/// Cold recovery of a directory laid out by [`build_durable_dir`]: load
/// the cut's 16 shard files, replay the WAL tail. Returns wall seconds
/// and the report (for sanity assertions).
pub fn recover_cold(dir: &Path) -> (f64, RecoveryReport) {
    let t0 = Instant::now();
    let (index, _, report) =
        quepa_wal::recover(dir, SyncPolicy::Buffered, &RecoveryOptions::default())
            .expect("recover");
    let wall = t0.elapsed().as_secs_f64();
    assert!(index.node_count() > 0, "recovered index must not be empty");
    (wall, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutation_paths_agree_on_the_final_index() {
        let stream = ops(640);
        let sharded = ShardedIndex::new(AIndex::new());
        sharded.update(|ix| {
            for op in &stream {
                op.apply(ix);
            }
        });
        let quepa = Quepa::new(bench_polystore().polystore, AIndex::new());
        for batch in stream.chunks(BATCH) {
            quepa.apply_mutations(batch).unwrap();
        }
        let got = quepa.index_snapshot();
        let want = sharded.snapshot();
        assert_eq!(got.node_count(), want.node_count());
        assert_eq!(got.edge_count(), want.edge_count());
    }

    #[test]
    fn measurements_run_and_recovery_replays_the_tail() {
        let stream = ops(320);
        let base = mutation_baseline(&stream);
        let off = mutation_wal_off(&stream);
        let buf = mutation_durable(&stream, SyncPolicy::Buffered, "test-buffered");
        assert!(base.mean_s > 0.0 && off.mean_s > 0.0 && buf.mean_s > 0.0);
        assert_eq!(base.ops, 320);

        let dir = BenchDir::new("test-recover");
        build_durable_dir(&dir.0, &stream);
        let (wall, report) = recover_cold(&dir.0);
        assert!(wall > 0.0);
        assert_eq!(report.checkpoint_lsn, 160);
        assert_eq!(report.replayed, 160);
        assert!(!report.torn_tail);
    }
}
