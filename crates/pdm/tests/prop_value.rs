//! Property-based tests for the PDM value model and text format.

use proptest::prelude::*;
use quepa_pdm::{text, GlobalKey, Probability, Value};

/// Strategy generating arbitrary values of bounded depth.
fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        // Finite, non-NaN floats only: the model forbids NaN.
        (-1e15f64..1e15f64).prop_map(Value::Float),
        "[a-zA-Z0-9 _\\-éü😀\"\\\\\n\t]{0,20}".prop_map(Value::Str),
    ];
    leaf.prop_recursive(4, 64, 8, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..6).prop_map(Value::Array),
            prop::collection::btree_map("[a-z]{1,6}", inner, 0..6).prop_map(Value::Object),
        ]
    })
}

proptest! {
    /// print → parse is the identity on the value model.
    #[test]
    fn text_roundtrip(v in arb_value()) {
        let s = text::to_string(&v);
        let back = text::parse(&s).unwrap();
        prop_assert_eq!(back, v);
    }

    /// The pretty printer parses back to the same value too.
    #[test]
    fn pretty_roundtrip(v in arb_value()) {
        let s = text::to_string_pretty(&v);
        let back = text::parse(&s).unwrap();
        prop_assert_eq!(back, v);
    }

    /// total_cmp is a total order: antisymmetric and transitive on samples.
    #[test]
    fn total_cmp_is_consistent(a in arb_value(), b in arb_value(), c in arb_value()) {
        use std::cmp::Ordering;
        let ab = a.total_cmp(&b);
        let ba = b.total_cmp(&a);
        prop_assert_eq!(ab, ba.reverse());
        if ab == Ordering::Less && b.total_cmp(&c) == Ordering::Less {
            prop_assert_eq!(a.total_cmp(&c), Ordering::Less);
        }
        prop_assert_eq!(a.total_cmp(&a), Ordering::Equal);
    }

    /// approx_size never underflows and is positive.
    #[test]
    fn approx_size_positive(v in arb_value()) {
        prop_assert!(v.approx_size() > 0);
    }

    /// Global keys render and reparse losslessly for arbitrary segment text.
    #[test]
    fn global_key_roundtrip(db in "[a-z0-9_]{1,10}", c in "[a-z0-9_]{1,10}", k in "[a-z0-9_:.\\-]{1,16}") {
        prop_assume!(!k.is_empty());
        let gk = GlobalKey::parse_parts(&db, &c, &k).unwrap();
        let reparsed: GlobalKey = gk.to_string().parse().unwrap();
        prop_assert_eq!(reparsed, gk);
    }

    /// Probability `and` stays in (0,1] and is commutative & associative.
    #[test]
    fn probability_and_algebra(a in 0.0001f64..=1.0, b in 0.0001f64..=1.0, c in 0.0001f64..=1.0) {
        let (pa, pb, pc) = (Probability::of(a), Probability::of(b), Probability::of(c));
        let ab = pa.and(pb);
        prop_assert!(ab.get() > 0.0 && ab.get() <= 1.0);
        prop_assert_eq!(ab, pb.and(pa));
        let assoc_l = pa.and(pb).and(pc).get();
        let assoc_r = pa.and(pb.and(pc)).get();
        prop_assert!((assoc_l - assoc_r).abs() < 1e-12);
        // `and` never increases probability.
        prop_assert!(ab.get() <= pa.get() + 1e-15);
        prop_assert!(ab.get() <= pb.get() + 1e-15);
    }

    /// The average of probabilities is bounded by min and max.
    #[test]
    fn probability_average_bounds(ps in prop::collection::vec(0.001f64..=1.0, 1..10)) {
        let probs: Vec<_> = ps.iter().map(|&p| Probability::of(p)).collect();
        let avg = Probability::average_of(probs.iter().copied()).unwrap();
        let min = probs.iter().copied().min().unwrap();
        let max = probs.iter().copied().max().unwrap();
        prop_assert!(avg >= min && avg <= max);
    }
}
