//! P-relations: probabilistic relationships between data objects
//! (Definition 1 of the paper).

use std::fmt;

use crate::key::GlobalKey;
use crate::prob::Probability;

/// The two kinds of p-relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RelationKind {
    /// *Identity* (`~`): reflexive, symmetric and transitive — the two
    /// objects refer to the same real-world entity.
    Identity,
    /// *Matching* (`≡`): reflexive and symmetric, not necessarily
    /// transitive — the two objects share some common information.
    Matching,
}

impl RelationKind {
    /// The mathematical symbol the paper uses for this kind.
    pub fn symbol(self) -> &'static str {
        match self {
            RelationKind::Identity => "~",
            RelationKind::Matching => "≡",
        }
    }
}

impl fmt::Display for RelationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// A p-relation `o₁ R_p o₂` between two objects identified by their global
/// keys, holding with probability `p`.
///
/// Both identity and matching are symmetric, so a `PRelation` is an
/// *unordered* pair: the constructor normalises endpoint order, making
/// `PRelation::new(a, b, …) == PRelation::new(b, a, …)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PRelation {
    left: GlobalKey,
    right: GlobalKey,
    kind: RelationKind,
    probability: Probability,
}

impl PRelation {
    /// Creates a p-relation, normalising the endpoint order.
    pub fn new(a: GlobalKey, b: GlobalKey, kind: RelationKind, probability: Probability) -> Self {
        let (left, right) = if a <= b { (a, b) } else { (b, a) };
        PRelation { left, right, kind, probability }
    }

    /// Creates an identity p-relation (`a ~_p b`).
    pub fn identity(a: GlobalKey, b: GlobalKey, p: Probability) -> Self {
        PRelation::new(a, b, RelationKind::Identity, p)
    }

    /// Creates a matching p-relation (`a ≡_p b`).
    pub fn matching(a: GlobalKey, b: GlobalKey, p: Probability) -> Self {
        PRelation::new(a, b, RelationKind::Matching, p)
    }

    /// The (lexicographically smaller) first endpoint.
    pub fn left(&self) -> &GlobalKey {
        &self.left
    }

    /// The second endpoint.
    pub fn right(&self) -> &GlobalKey {
        &self.right
    }

    /// Which of identity/matching this is.
    pub fn kind(&self) -> RelationKind {
        self.kind
    }

    /// The relation's probability.
    pub fn probability(&self) -> Probability {
        self.probability
    }

    /// Given one endpoint, returns the other; `None` if `key` is not an
    /// endpoint of this relation.
    pub fn other(&self, key: &GlobalKey) -> Option<&GlobalKey> {
        if key == &self.left {
            Some(&self.right)
        } else if key == &self.right {
            Some(&self.left)
        } else {
            None
        }
    }

    /// True if the relation connects an object to itself. Reflexive edges
    /// are implicit in the model and never need to be stored.
    pub fn is_reflexive(&self) -> bool {
        self.left == self.right
    }
}

impl fmt::Display for PRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}_{} {}", self.left, self.kind.symbol(), self.probability, self.right)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(s: &str) -> GlobalKey {
        s.parse().unwrap()
    }

    #[test]
    fn symmetric_normalisation() {
        let p = Probability::of(0.9);
        let r1 = PRelation::identity(k("b.c.1"), k("a.c.1"), p);
        let r2 = PRelation::identity(k("a.c.1"), k("b.c.1"), p);
        assert_eq!(r1, r2);
        assert_eq!(r1.left(), &k("a.c.1"));
    }

    #[test]
    fn other_endpoint() {
        let r = PRelation::matching(k("a.c.1"), k("b.c.2"), Probability::of(0.7));
        assert_eq!(r.other(&k("a.c.1")), Some(&k("b.c.2")));
        assert_eq!(r.other(&k("b.c.2")), Some(&k("a.c.1")));
        assert_eq!(r.other(&k("z.z.z")), None);
    }

    #[test]
    fn reflexivity_detection() {
        let r = PRelation::identity(k("a.c.1"), k("a.c.1"), Probability::ONE);
        assert!(r.is_reflexive());
    }

    #[test]
    fn display_uses_paper_symbols() {
        let r = PRelation::identity(
            k("catalogue.albums.d1"),
            k("transactions.inventory.a32"),
            Probability::of(0.9),
        );
        let s = r.to_string();
        assert!(s.contains('~'), "{s}");
        assert!(s.contains("0.900"), "{s}");
        let m = PRelation::matching(k("a.c.1"), k("b.c.2"), Probability::of(0.6));
        assert!(m.to_string().contains('≡'));
    }

    #[test]
    fn kind_symbols() {
        assert_eq!(RelationKind::Identity.symbol(), "~");
        assert_eq!(RelationKind::Matching.symbol(), "≡");
    }
}
