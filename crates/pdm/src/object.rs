//! Data objects: the atoms of the polystore.

use std::fmt;
use std::sync::Arc;

use crate::key::GlobalKey;
use crate::value::Value;

/// A data object retrieved from some store of the polystore, paired with its
/// polystore-wide identity.
///
/// The payload keeps whatever shape the owning store produced (a tuple
/// rendered as an object value, a document, a scalar for a kv entry, a node
/// with its properties…) — PDM deliberately does not normalise it further.
///
/// The payload is immutable once fetched and is reference-counted, so
/// cloning a `DataObject` (into the cache, into an augmented answer, out
/// of the cache on a hit) never deep-copies the value tree.
#[derive(Debug, Clone, PartialEq)]
pub struct DataObject {
    key: GlobalKey,
    value: Arc<Value>,
}

impl DataObject {
    /// Pairs a global key with its payload.
    pub fn new(key: GlobalKey, value: Value) -> Self {
        DataObject { key, value: Arc::new(value) }
    }

    /// The object's global key.
    pub fn key(&self) -> &GlobalKey {
        &self.key
    }

    /// The object's payload.
    pub fn value(&self) -> &Value {
        &self.value
    }

    /// Consumes the object, returning its parts. Clones the payload only
    /// if it is still shared.
    pub fn into_parts(self) -> (GlobalKey, Value) {
        let value = Arc::try_unwrap(self.value).unwrap_or_else(|shared| (*shared).clone());
        (self.key, value)
    }

    /// Approximate in-memory footprint (key + payload), used for transfer
    /// cost and simulated memory accounting.
    pub fn approx_size(&self) -> usize {
        // `db.collection.key` rendered length, without rendering it.
        let key_len = self.key.database().as_str().len()
            + self.key.collection().as_str().len()
            + self.key.key().as_str().len()
            + 2;
        key_len + self.value.approx_size()
    }
}

impl fmt::Display for DataObject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.key, self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn obj() -> DataObject {
        DataObject::new(
            "catalogue.albums.d1".parse().unwrap(),
            Value::object([("title", Value::str("Wish")), ("year", Value::Int(1992))]),
        )
    }

    #[test]
    fn accessors_and_display() {
        let o = obj();
        assert_eq!(o.key().to_string(), "catalogue.albums.d1");
        assert_eq!(o.value().get("title").unwrap().as_str(), Some("Wish"));
        let s = o.to_string();
        assert!(s.starts_with("catalogue.albums.d1: "));
        assert!(s.contains("Wish"));
    }

    #[test]
    fn into_parts() {
        let (k, v) = obj().into_parts();
        assert_eq!(k.key().as_str(), "d1");
        assert_eq!(v.get("year"), Some(&Value::Int(1992)));
    }

    #[test]
    fn approx_size_counts_key_and_value() {
        let o = obj();
        assert!(o.approx_size() > o.value().approx_size());
    }
}
