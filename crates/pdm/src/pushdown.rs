//! Cross-store pushdown predicates.
//!
//! A [`Pushdown`] is a conjunction of simple field conditions that the
//! augmenter can hand to a connector together with a key set: "fetch these
//! keys, but only return the ones whose value satisfies the predicate".
//! Each native store evaluates it with its own machinery (SQL `WHERE`,
//! document filter, secondary index, traversal filter), but the *meaning*
//! is fixed here, by [`Pushdown::matches`] — the single evaluator the
//! client-side fallback uses and the store-side implementations must agree
//! with. The semantics deliberately mirror the document store's filter
//! matcher (the strictest dialect among the four engines):
//!
//! * equality is numeric across `Int`/`Float`, structural otherwise;
//! * `ne` requires the field to be *present* (missing fields match nothing);
//! * ordered comparisons are type-bracketed (numeric↔numeric or
//!   string↔string, via `total_cmp`) and never match across types;
//! * `contains` is a case-insensitive substring test on strings;
//! * `prefix` is a case-sensitive prefix test on strings.
//!
//! Predicates have a canonical text form (`<field> <op> <literal>` clauses
//! joined by `" AND "`) used by scenario files and the CLI; `parse` and
//! `Display` round-trip.

use std::fmt;

use crate::error::PdmError;
use crate::value::Value;

/// The field a clause constrains.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PushField {
    /// The object's local key (as a string).
    Key,
    /// The object's root value (meaningful for scalar-valued stores such
    /// as the key-value engine; for document-shaped objects prefer a path).
    Value,
    /// A dotted path into the object's value.
    Path(String),
}

/// A comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PushOp {
    /// Equal (numeric across int/float).
    Eq,
    /// Not equal; the field must be present.
    Ne,
    /// Greater than (type-bracketed).
    Gt,
    /// Greater or equal (type-bracketed).
    Gte,
    /// Less than (type-bracketed).
    Lt,
    /// Less or equal (type-bracketed).
    Lte,
    /// Case-insensitive substring (strings only).
    Contains,
    /// Case-sensitive prefix (strings only).
    Prefix,
}

impl PushOp {
    fn token(self) -> &'static str {
        match self {
            PushOp::Eq => "eq",
            PushOp::Ne => "ne",
            PushOp::Gt => "gt",
            PushOp::Gte => "gte",
            PushOp::Lt => "lt",
            PushOp::Lte => "lte",
            PushOp::Contains => "contains",
            PushOp::Prefix => "prefix",
        }
    }

    fn from_token(tok: &str) -> Option<PushOp> {
        Some(match tok {
            "eq" => PushOp::Eq,
            "ne" => PushOp::Ne,
            "gt" => PushOp::Gt,
            "gte" => PushOp::Gte,
            "lt" => PushOp::Lt,
            "lte" => PushOp::Lte,
            "contains" => PushOp::Contains,
            "prefix" => PushOp::Prefix,
            _ => return None,
        })
    }
}

/// One field condition.
#[derive(Debug, Clone, PartialEq)]
pub struct PushClause {
    /// The constrained field.
    pub field: PushField,
    /// The comparison.
    pub op: PushOp,
    /// The literal operand.
    pub literal: Value,
}

impl PushClause {
    fn eval(&self, key: &str, value: &Value) -> bool {
        let key_value;
        let field = match &self.field {
            PushField::Key => {
                key_value = Value::str(key);
                Some(&key_value)
            }
            PushField::Value => Some(value),
            PushField::Path(path) => value.get_path(path),
        };
        match self.op {
            PushOp::Eq => field.is_some_and(|f| value_eq(f, &self.literal)),
            PushOp::Ne => field.is_some_and(|f| !value_eq(f, &self.literal)),
            PushOp::Gt => cmp_ok(field, &self.literal, |o| o.is_gt()),
            PushOp::Gte => cmp_ok(field, &self.literal, |o| o.is_ge()),
            PushOp::Lt => cmp_ok(field, &self.literal, |o| o.is_lt()),
            PushOp::Lte => cmp_ok(field, &self.literal, |o| o.is_le()),
            PushOp::Contains => {
                let needle = self.literal.as_str().map(str::to_lowercase);
                field.and_then(Value::as_str).zip(needle).is_some_and(|(s, n)| {
                    s.to_lowercase().contains(&n)
                })
            }
            PushOp::Prefix => {
                field.and_then(Value::as_str).zip(self.literal.as_str()).is_some_and(
                    |(s, p)| s.starts_with(p),
                )
            }
        }
    }
}

/// Numeric-aware equality: ints equal floats with the same magnitude,
/// everything else compares structurally. (Identical to the document
/// store's matcher.)
pub fn value_eq(a: &Value, b: &Value) -> bool {
    if let (Some(x), Some(y)) = (a.as_f64(), b.as_f64()) {
        return x == y;
    }
    a == b
}

fn cmp_ok(field: Option<&Value>, v: &Value, pred: impl Fn(std::cmp::Ordering) -> bool) -> bool {
    match field {
        None => false,
        Some(f) => {
            let comparable = (f.as_f64().is_some() && v.as_f64().is_some())
                || (f.as_str().is_some() && v.as_str().is_some());
            comparable && pred(f.total_cmp(v))
        }
    }
}

/// A conjunction of [`PushClause`]s; the unit the planner pushes into a
/// store. An empty conjunction matches everything.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Pushdown {
    /// The clauses, all of which must hold.
    pub clauses: Vec<PushClause>,
}

impl Pushdown {
    /// A predicate with a single clause.
    pub fn clause(field: PushField, op: PushOp, literal: Value) -> Self {
        Pushdown { clauses: vec![PushClause { field, op, literal }] }
    }

    /// Convenience: a single clause over the local key.
    pub fn key(op: PushOp, literal: impl Into<Value>) -> Self {
        Self::clause(PushField::Key, op, literal.into())
    }

    /// Convenience: a single clause over a value path.
    pub fn path(path: impl Into<String>, op: PushOp, literal: impl Into<Value>) -> Self {
        Self::clause(PushField::Path(path.into()), op, literal.into())
    }

    /// Convenience: a single clause over the root value.
    pub fn value(op: PushOp, literal: impl Into<Value>) -> Self {
        Self::clause(PushField::Value, op, literal.into())
    }

    /// True when the predicate has no clauses (matches everything).
    pub fn is_trivial(&self) -> bool {
        self.clauses.is_empty()
    }

    /// True when every clause constrains only the local key — such a
    /// predicate is decidable without fetching the object's value.
    pub fn key_only(&self) -> bool {
        self.clauses.iter().all(|c| c.field == PushField::Key)
    }

    /// The canonical evaluator: does the object `(key, value)` satisfy the
    /// conjunction? This is the meaning every store-side implementation
    /// must reproduce.
    pub fn matches(&self, key: &str, value: &Value) -> bool {
        self.clauses.iter().all(|c| c.eval(key, value))
    }

    /// Parses the text form: clauses `<field> <op> <literal>` joined by
    /// `" AND "`, where `<field>` is the word `key` or a dotted path with
    /// a leading dot (`.seq`, `.meta.artist`) and `<literal>` is a PDM
    /// text value (`20`, `"item"`). The empty string is the trivial
    /// predicate.
    pub fn parse(input: &str) -> Result<Pushdown, PdmError> {
        let input = input.trim();
        if input.is_empty() {
            return Ok(Pushdown::default());
        }
        let bad = |msg: String| PdmError::Parse { offset: 0, message: msg };
        let mut clauses = Vec::new();
        for part in input.split(" AND ") {
            let part = part.trim();
            let (field_tok, rest) = part
                .split_once(char::is_whitespace)
                .ok_or_else(|| bad(format!("pushdown clause `{part}` lacks an operator")))?;
            let (op_tok, lit) = rest
                .trim()
                .split_once(char::is_whitespace)
                .ok_or_else(|| bad(format!("pushdown clause `{part}` lacks a literal")))?;
            let field = if field_tok == "key" {
                PushField::Key
            } else if field_tok == "value" {
                PushField::Value
            } else if let Some(path) = field_tok.strip_prefix('.') {
                if path.is_empty() {
                    return Err(bad(format!("empty path in pushdown clause `{part}`")));
                }
                PushField::Path(path.to_owned())
            } else {
                return Err(bad(format!(
                    "pushdown field must be `key` or `.path`, got `{field_tok}`"
                )));
            };
            let op = PushOp::from_token(op_tok)
                .ok_or_else(|| bad(format!("unknown pushdown operator `{op_tok}`")))?;
            let literal = crate::text::parse(lit.trim())
                .map_err(|e| bad(format!("bad pushdown literal `{lit}`: {e}")))?;
            clauses.push(PushClause { field, op, literal });
        }
        Ok(Pushdown { clauses })
    }
}

impl fmt::Display for Pushdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for c in &self.clauses {
            if !first {
                f.write_str(" AND ")?;
            }
            first = false;
            match &c.field {
                PushField::Key => f.write_str("key")?,
                PushField::Value => f.write_str("value")?,
                PushField::Path(p) => write!(f, ".{p}")?,
            }
            write!(f, " {} {}", c.op.token(), c.literal)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn album() -> Value {
        Value::object([
            ("title", Value::str("Wish")),
            ("seq", Value::Int(7)),
            ("meta", Value::object([("artist", Value::str("The Cure"))])),
        ])
    }

    #[test]
    fn trivial_matches_everything() {
        let p = Pushdown::default();
        assert!(p.is_trivial());
        assert!(p.matches("k1", &album()));
        assert!(p.matches("", &Value::Null));
    }

    #[test]
    fn key_clauses() {
        assert!(Pushdown::key(PushOp::Prefix, "a3").matches("a32", &Value::Null));
        assert!(!Pushdown::key(PushOp::Prefix, "A3").matches("a32", &Value::Null));
        assert!(Pushdown::key(PushOp::Contains, "A3").matches("xa32", &Value::Null));
        assert!(Pushdown::key(PushOp::Lt, "a40").matches("a32", &Value::Null));
        assert!(Pushdown::key(PushOp::Eq, "a32").matches("a32", &Value::Null));
        assert!(Pushdown::key(PushOp::Ne, "a32").matches("a33", &Value::Null));
    }

    #[test]
    fn path_clauses_follow_doc_semantics() {
        let a = album();
        assert!(Pushdown::path("seq", PushOp::Lt, 10).matches("k", &a));
        assert!(!Pushdown::path("seq", PushOp::Gt, 10).matches("k", &a));
        // Numeric cross-type equality.
        assert!(Pushdown::path("seq", PushOp::Eq, Value::Float(7.0)).matches("k", &a));
        // Type bracketing: number vs string never matches.
        assert!(!Pushdown::path("seq", PushOp::Lt, "10").matches("k", &a));
        // Missing fields match nothing, even for ne.
        assert!(!Pushdown::path("year", PushOp::Ne, 3).matches("k", &a));
        // Dotted paths and string ops.
        assert!(Pushdown::path("meta.artist", PushOp::Contains, "cure").matches("k", &a));
        assert!(Pushdown::path("meta.artist", PushOp::Prefix, "The").matches("k", &a));
        assert!(!Pushdown::path("meta.artist", PushOp::Prefix, "the").matches("k", &a));
    }

    #[test]
    fn conjunction_requires_all() {
        let mut p = Pushdown::key(PushOp::Prefix, "a");
        p.clauses.extend(Pushdown::path("seq", PushOp::Lt, 10).clauses);
        assert!(p.matches("a1", &album()));
        assert!(!p.matches("b1", &album()));
        assert!(!p.key_only());
        assert!(Pushdown::key(PushOp::Eq, "a").key_only());
    }

    #[test]
    fn root_value_clauses() {
        let v = Value::str("v00ff");
        assert!(Pushdown::value(PushOp::Eq, "v00ff").matches("k1", &v));
        assert!(Pushdown::value(PushOp::Contains, "00FF").matches("k1", &v));
        assert!(!Pushdown::value(PushOp::Eq, "other").matches("k1", &v));
        // Path clauses never match a scalar root.
        assert!(!Pushdown::path("x", PushOp::Eq, "v00ff").matches("k1", &v));
    }

    #[test]
    fn text_round_trip() {
        for p in [
            Pushdown::default(),
            Pushdown::key(PushOp::Prefix, "a3"),
            Pushdown::value(PushOp::Contains, "00"),
            Pushdown::path("seq", PushOp::Lt, 20),
            Pushdown::path("meta.artist", PushOp::Contains, "cure"),
            {
                let mut p = Pushdown::key(PushOp::Gte, "a10");
                p.clauses.extend(Pushdown::path("seq", PushOp::Ne, Value::Float(1.5)).clauses);
                p
            },
        ] {
            let text = p.to_string();
            let back = Pushdown::parse(&text).unwrap_or_else(|e| panic!("{text}: {e}"));
            assert_eq!(back, p, "{text}");
        }
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(Pushdown::parse("key").is_err());
        assert!(Pushdown::parse("key lt").is_err());
        assert!(Pushdown::parse("seq lt 20").is_err(), "paths need a leading dot");
        assert!(Pushdown::parse(". lt 20").is_err());
        assert!(Pushdown::parse("key frobs 20").is_err());
        assert!(Pushdown::parse("key lt }{").is_err());
    }
}
