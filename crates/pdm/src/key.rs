//! Global keys: the polystore-wide addressing scheme of PDM.
//!
//! Given a database `D`, a collection `C` in `D` and an object `o = (k, v)`
//! in `C`, the object is uniquely identified in the polystore by the
//! *global key* `D.C.k` (paper §II-A, Example 1:
//! `transactions.sales.s8`).

use std::borrow::Borrow;
use std::fmt;
use std::sync::Arc;

use crate::error::{PdmError, Result};

/// The separator between the segments of a printed global key.
pub const SEPARATOR: char = '.';

macro_rules! interned_name {
    ($(#[$doc:meta])* $name:ident, $allow_sep:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(Arc<str>);

        impl $name {
            /// Creates a new identifier, validating it is non-empty
            /// and (for database/collection names) free of the `.` separator.
            pub fn new(raw: impl AsRef<str>) -> Result<Self> {
                let raw = raw.as_ref();
                if raw.is_empty() {
                    return Err(PdmError::InvalidIdentifier(raw.to_owned()));
                }
                if !$allow_sep && raw.contains(SEPARATOR) {
                    return Err(PdmError::InvalidIdentifier(raw.to_owned()));
                }
                Ok(Self(Arc::from(raw)))
            }

            /// Borrows the identifier as a string slice.
            pub fn as_str(&self) -> &str {
                &self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(&self.0)
            }
        }

        impl Borrow<str> for $name {
            fn borrow(&self) -> &str {
                &self.0
            }
        }

        impl AsRef<str> for $name {
            fn as_ref(&self) -> &str {
                &self.0
            }
        }
    };
}

interned_name!(
    /// The name of a database inside the polystore (e.g. `transactions`).
    ///
    /// Cheap to clone: the backing string is reference-counted.
    DatabaseName,
    false
);

interned_name!(
    /// The name of a data collection inside a database (e.g. `sales`, or the
    /// table/collection/label the store natively exposes).
    CollectionName,
    false
);

interned_name!(
    /// A local key: identifies an object inside one collection. Local keys
    /// may themselves contain dots (Redis-style keys such as
    /// `k1:cure:wish` or compound keys), so only emptiness is rejected.
    LocalKey,
    true
);

/// A polystore-wide object identifier: `database.collection.key`.
///
/// `GlobalKey` is the currency of the A' index and of every augmenter; it is
/// cheap to clone (three `Arc<str>`s) and hashes quickly.
///
/// ```
/// use quepa_pdm::GlobalKey;
/// let k: GlobalKey = "transactions.sales.s8".parse().unwrap();
/// assert_eq!(k.database().as_str(), "transactions");
/// assert_eq!(k.collection().as_str(), "sales");
/// assert_eq!(k.key().as_str(), "s8");
/// assert_eq!(k.to_string(), "transactions.sales.s8");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GlobalKey {
    database: DatabaseName,
    collection: CollectionName,
    key: LocalKey,
}

impl GlobalKey {
    /// Assembles a global key from its three segments.
    pub fn new(database: DatabaseName, collection: CollectionName, key: LocalKey) -> Self {
        GlobalKey { database, collection, key }
    }

    /// Convenience constructor from raw strings.
    pub fn parse_parts(
        database: impl AsRef<str>,
        collection: impl AsRef<str>,
        key: impl AsRef<str>,
    ) -> Result<Self> {
        Ok(GlobalKey {
            database: DatabaseName::new(database)?,
            collection: CollectionName::new(collection)?,
            key: LocalKey::new(key)?,
        })
    }

    /// The database segment.
    pub fn database(&self) -> &DatabaseName {
        &self.database
    }

    /// The collection segment.
    pub fn collection(&self) -> &CollectionName {
        &self.collection
    }

    /// The local-key segment.
    pub fn key(&self) -> &LocalKey {
        &self.key
    }
}

impl fmt::Display for GlobalKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{SEPARATOR}{}{SEPARATOR}{}", self.database, self.collection, self.key)
    }
}

impl std::str::FromStr for GlobalKey {
    type Err = PdmError;

    /// Parses `db.collection.key`. Because local keys may contain dots, the
    /// split is on the *first two* separators only.
    fn from_str(s: &str) -> Result<Self> {
        let mut it = s.splitn(3, SEPARATOR);
        let (db, coll, key) = match (it.next(), it.next(), it.next()) {
            (Some(db), Some(coll), Some(key)) => (db, coll, key),
            _ => return Err(PdmError::InvalidGlobalKey(s.to_owned())),
        };
        GlobalKey::parse_parts(db, coll, key).map_err(|_| PdmError::InvalidGlobalKey(s.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        let k: GlobalKey = "catalogue.albums.d1".parse().unwrap();
        assert_eq!(k.to_string(), "catalogue.albums.d1");
    }

    #[test]
    fn dotted_local_keys_parse() {
        // Redis-style key from Example 2 of the paper.
        let k: GlobalKey = "discount.drop.k1.cure:wish".parse().unwrap();
        assert_eq!(k.database().as_str(), "discount");
        assert_eq!(k.collection().as_str(), "drop");
        assert_eq!(k.key().as_str(), "k1.cure:wish");
    }

    #[test]
    fn invalid_keys_rejected() {
        assert!("".parse::<GlobalKey>().is_err());
        assert!("only.two".parse::<GlobalKey>().is_err());
        assert!("a..k".parse::<GlobalKey>().is_err()); // empty collection
        assert!(".c.k".parse::<GlobalKey>().is_err()); // empty db
        assert!("a.c.".parse::<GlobalKey>().is_err()); // empty key
    }

    #[test]
    fn segment_validation() {
        assert!(DatabaseName::new("with.dot").is_err());
        assert!(CollectionName::new("").is_err());
        assert!(LocalKey::new("with.dot").is_ok());
    }

    #[test]
    fn ordering_is_lexicographic_by_segment() {
        let a: GlobalKey = "a.c.k".parse().unwrap();
        let b: GlobalKey = "b.a.a".parse().unwrap();
        assert!(a < b);
    }

    #[test]
    fn clone_is_cheap_and_equal() {
        let a: GlobalKey = "transactions.sales.s8".parse().unwrap();
        let b = a.clone();
        assert_eq!(a, b);
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h1 = DefaultHasher::new();
        let mut h2 = DefaultHasher::new();
        a.hash(&mut h1);
        b.hash(&mut h2);
        assert_eq!(h1.finish(), h2.finish());
    }
}
