//! Global keys: the polystore-wide addressing scheme of PDM.
//!
//! Given a database `D`, a collection `C` in `D` and an object `o = (k, v)`
//! in `C`, the object is uniquely identified in the polystore by the
//! *global key* `D.C.k` (paper §II-A, Example 1:
//! `transactions.sales.s8`).

use std::borrow::Borrow;
use std::fmt;
use std::sync::Arc;

use crate::error::{PdmError, Result};

/// The separator between the segments of a printed global key.
pub const SEPARATOR: char = '.';

macro_rules! interned_name {
    ($(#[$doc:meta])* $name:ident, $allow_sep:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(Arc<str>);

        impl $name {
            /// Creates a new identifier, validating it is non-empty
            /// and (for database/collection names) free of the `.` separator.
            pub fn new(raw: impl AsRef<str>) -> Result<Self> {
                let raw = raw.as_ref();
                if raw.is_empty() {
                    return Err(PdmError::InvalidIdentifier(raw.to_owned()));
                }
                if !$allow_sep && raw.contains(SEPARATOR) {
                    return Err(PdmError::InvalidIdentifier(raw.to_owned()));
                }
                Ok(Self(Arc::from(raw)))
            }

            /// Borrows the identifier as a string slice.
            pub fn as_str(&self) -> &str {
                &self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(&self.0)
            }
        }

        impl Borrow<str> for $name {
            fn borrow(&self) -> &str {
                &self.0
            }
        }

        impl AsRef<str> for $name {
            fn as_ref(&self) -> &str {
                &self.0
            }
        }
    };
}

interned_name!(
    /// The name of a database inside the polystore (e.g. `transactions`).
    ///
    /// Cheap to clone: the backing string is reference-counted.
    DatabaseName,
    false
);

interned_name!(
    /// The name of a data collection inside a database (e.g. `sales`, or the
    /// table/collection/label the store natively exposes).
    CollectionName,
    false
);

interned_name!(
    /// A local key: identifies an object inside one collection. Local keys
    /// may themselves contain dots (Redis-style keys such as
    /// `k1:cure:wish` or compound keys), so only emptiness is rejected.
    LocalKey,
    true
);

/// A polystore-wide object identifier: `database.collection.key`.
///
/// `GlobalKey` is the currency of the A' index and of every augmenter; it is
/// cheap to clone (three `Arc<str>`s) and hashes in constant time: a content
/// hash of the segments is computed once at construction, so the hash-map
/// operations on the hot path (index interning, cache shards, round-trip
/// grouping) never re-walk the strings.
///
/// ```
/// use quepa_pdm::GlobalKey;
/// let k: GlobalKey = "transactions.sales.s8".parse().unwrap();
/// assert_eq!(k.database().as_str(), "transactions");
/// assert_eq!(k.collection().as_str(), "sales");
/// assert_eq!(k.key().as_str(), "s8");
/// assert_eq!(k.to_string(), "transactions.sales.s8");
/// ```
#[derive(Debug, Clone)]
pub struct GlobalKey {
    database: DatabaseName,
    collection: CollectionName,
    key: LocalKey,
    /// FNV-1a over the three segments (with a terminator byte after each,
    /// so segment boundaries matter). Purely content-derived: equal keys
    /// get equal hashes no matter how they were constructed.
    hash: u64,
}

fn fnv1a_segments(parts: [&str; 3]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for part in parts {
        for &b in part.as_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(PRIME);
        }
        // Terminator (not a valid UTF-8 continuation of any segment), so
        // ("ab","c") and ("a","bc") land in different buckets.
        h = (h ^ 0xff).wrapping_mul(PRIME);
    }
    h
}

impl GlobalKey {
    /// Assembles a global key from its three segments.
    pub fn new(database: DatabaseName, collection: CollectionName, key: LocalKey) -> Self {
        let hash = fnv1a_segments([database.as_str(), collection.as_str(), key.as_str()]);
        GlobalKey { database, collection, key, hash }
    }

    /// The content hash computed at construction. Stable across clones and
    /// across independently constructed equal keys (but not across
    /// processes or versions — do not persist it).
    pub fn precomputed_hash(&self) -> u64 {
        self.hash
    }

    /// Convenience constructor from raw strings.
    pub fn parse_parts(
        database: impl AsRef<str>,
        collection: impl AsRef<str>,
        key: impl AsRef<str>,
    ) -> Result<Self> {
        Ok(GlobalKey::new(
            DatabaseName::new(database)?,
            CollectionName::new(collection)?,
            LocalKey::new(key)?,
        ))
    }

    /// The database segment.
    pub fn database(&self) -> &DatabaseName {
        &self.database
    }

    /// The collection segment.
    pub fn collection(&self) -> &CollectionName {
        &self.collection
    }

    /// The local-key segment.
    pub fn key(&self) -> &LocalKey {
        &self.key
    }
}

impl PartialEq for GlobalKey {
    fn eq(&self, other: &Self) -> bool {
        // The cached hash rejects almost all unequal keys in one compare.
        self.hash == other.hash
            && self.key == other.key
            && self.collection == other.collection
            && self.database == other.database
    }
}

impl Eq for GlobalKey {}

impl std::hash::Hash for GlobalKey {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

impl PartialOrd for GlobalKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for GlobalKey {
    /// Lexicographic by segment (database, collection, key) — the cached
    /// hash plays no role in ordering.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.database
            .cmp(&other.database)
            .then_with(|| self.collection.cmp(&other.collection))
            .then_with(|| self.key.cmp(&other.key))
    }
}

impl fmt::Display for GlobalKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{SEPARATOR}{}{SEPARATOR}{}", self.database, self.collection, self.key)
    }
}

impl std::str::FromStr for GlobalKey {
    type Err = PdmError;

    /// Parses `db.collection.key`. Because local keys may contain dots, the
    /// split is on the *first two* separators only.
    fn from_str(s: &str) -> Result<Self> {
        let mut it = s.splitn(3, SEPARATOR);
        let (db, coll, key) = match (it.next(), it.next(), it.next()) {
            (Some(db), Some(coll), Some(key)) => (db, coll, key),
            _ => return Err(PdmError::InvalidGlobalKey(s.to_owned())),
        };
        GlobalKey::parse_parts(db, coll, key).map_err(|_| PdmError::InvalidGlobalKey(s.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        let k: GlobalKey = "catalogue.albums.d1".parse().unwrap();
        assert_eq!(k.to_string(), "catalogue.albums.d1");
    }

    #[test]
    fn dotted_local_keys_parse() {
        // Redis-style key from Example 2 of the paper.
        let k: GlobalKey = "discount.drop.k1.cure:wish".parse().unwrap();
        assert_eq!(k.database().as_str(), "discount");
        assert_eq!(k.collection().as_str(), "drop");
        assert_eq!(k.key().as_str(), "k1.cure:wish");
    }

    #[test]
    fn invalid_keys_rejected() {
        assert!("".parse::<GlobalKey>().is_err());
        assert!("only.two".parse::<GlobalKey>().is_err());
        assert!("a..k".parse::<GlobalKey>().is_err()); // empty collection
        assert!(".c.k".parse::<GlobalKey>().is_err()); // empty db
        assert!("a.c.".parse::<GlobalKey>().is_err()); // empty key
    }

    #[test]
    fn segment_validation() {
        assert!(DatabaseName::new("with.dot").is_err());
        assert!(CollectionName::new("").is_err());
        assert!(LocalKey::new("with.dot").is_ok());
    }

    #[test]
    fn ordering_is_lexicographic_by_segment() {
        let a: GlobalKey = "a.c.k".parse().unwrap();
        let b: GlobalKey = "b.a.a".parse().unwrap();
        assert!(a < b);
    }

    #[test]
    fn equal_keys_hash_equal_across_construction_paths() {
        let a: GlobalKey = "transactions.sales.s8".parse().unwrap();
        let b = GlobalKey::new(
            DatabaseName::new("transactions").unwrap(),
            CollectionName::new("sales").unwrap(),
            LocalKey::new("s8").unwrap(),
        );
        assert_eq!(a, b);
        assert_eq!(a.precomputed_hash(), b.precomputed_hash());
        // Same concatenation, different segment boundaries: distinct keys,
        // distinct hashes.
        let c = GlobalKey::parse_parts("transactions", "sale", "ss8").unwrap();
        assert_ne!(a, c);
        assert_ne!(a.precomputed_hash(), c.precomputed_hash());
    }

    #[test]
    fn clone_is_cheap_and_equal() {
        let a: GlobalKey = "transactions.sales.s8".parse().unwrap();
        let b = a.clone();
        assert_eq!(a, b);
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h1 = DefaultHasher::new();
        let mut h2 = DefaultHasher::new();
        a.hash(&mut h1);
        b.hash(&mut h2);
        assert_eq!(h1.finish(), h2.finish());
    }
}
