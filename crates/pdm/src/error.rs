//! Error type shared by the PDM layer.

use std::fmt;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, PdmError>;

/// Errors raised while building or manipulating PDM entities.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PdmError {
    /// A probability outside the half-open interval `(0, 1]`.
    ///
    /// Definition 1 of the paper requires `0 < p <= 1` for every p-relation.
    InvalidProbability(String),
    /// A malformed global key string (expected `db.collection.key`).
    InvalidGlobalKey(String),
    /// An identifier (database/collection name or local key) that is empty
    /// or contains a reserved separator character.
    InvalidIdentifier(String),
    /// A parse error in the [`crate::text`] value format.
    Parse {
        /// Byte offset of the error in the input.
        offset: usize,
        /// Human-readable description of what went wrong.
        message: String,
    },
    /// A value of an unexpected shape was supplied (e.g. a scalar where an
    /// object was required).
    TypeMismatch {
        /// What the operation required.
        expected: &'static str,
        /// What was actually found.
        found: &'static str,
    },
}

impl fmt::Display for PdmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PdmError::InvalidProbability(msg) => write!(f, "invalid probability: {msg}"),
            PdmError::InvalidGlobalKey(raw) => {
                write!(f, "invalid global key (expected db.collection.key): {raw:?}")
            }
            PdmError::InvalidIdentifier(raw) => write!(f, "invalid identifier: {raw:?}"),
            PdmError::Parse { offset, message } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            PdmError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
        }
    }
}

impl std::error::Error for PdmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = PdmError::InvalidGlobalKey("nodots".into());
        assert!(e.to_string().contains("nodots"));
        let e = PdmError::Parse { offset: 7, message: "unexpected `}`".into() };
        assert!(e.to_string().contains("byte 7"));
        let e = PdmError::TypeMismatch { expected: "object", found: "string" };
        assert!(e.to_string().contains("expected object"));
    }
}
