//! Probabilities attached to p-relations.
//!
//! Definition 1 of the paper requires `0 < p <= 1`. [`Probability`] is a
//! validated newtype that also implements the two combination rules used by
//! the system:
//!
//! * [`Probability::and`] — the *product*, used when materializing an
//!   identity inferred by transitivity (Example 7: `0.8 × 0.85 = 0.68`) and
//!   when chaining augmentation steps at level *n*;
//! * [`Probability::average_of`] — the *average* along a path, used when a
//!   p-relation is promoted from a frequently traversed exploration path
//!   (§III-D(a)).

use std::cmp::Ordering;
use std::fmt;

use crate::error::{PdmError, Result};

/// A probability in the half-open interval `(0, 1]`.
///
/// `Probability` implements `Eq`/`Ord` (the inner value is never NaN), so it
/// can be used directly as a sort key when ranking augmented results.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Probability(f64);

impl Probability {
    /// The certain probability, `1.0`.
    pub const ONE: Probability = Probability(1.0);

    /// Validates and wraps a raw probability.
    pub fn new(p: f64) -> Result<Self> {
        if p.is_nan() || p <= 0.0 || p > 1.0 {
            Err(PdmError::InvalidProbability(format!("{p} is outside (0, 1]")))
        } else {
            Ok(Probability(p))
        }
    }

    /// Wraps a value known to be valid; panics otherwise. Intended for
    /// literals in tests and examples.
    pub fn of(p: f64) -> Self {
        Probability::new(p).expect("probability literal outside (0, 1]")
    }

    /// The raw value.
    pub fn get(self) -> f64 {
        self.0
    }

    /// Product combination: the probability that two independent relations
    /// hold simultaneously. Closed over `(0, 1]`.
    #[must_use]
    pub fn and(self, other: Probability) -> Probability {
        Probability(self.0 * other.0)
    }

    /// The average of a non-empty sequence of probabilities, used by
    /// p-relation promotion. Returns `None` for an empty sequence.
    pub fn average_of(ps: impl IntoIterator<Item = Probability>) -> Option<Probability> {
        let mut sum = 0.0;
        let mut n = 0usize;
        for p in ps {
            sum += p.0;
            n += 1;
        }
        if n == 0 {
            None
        } else {
            // The average of values in (0,1] is in (0,1].
            Some(Probability(sum / n as f64))
        }
    }
}

impl Eq for Probability {}

impl std::hash::Hash for Probability {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Never NaN, so bit-level hashing is consistent with Eq.
        self.0.to_bits().hash(state);
    }
}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for Probability {
    fn cmp(&self, other: &Self) -> Ordering {
        // The inner value is never NaN, so total_cmp agrees with PartialOrd.
        self.0.total_cmp(&other.0)
    }
}

impl PartialOrd for Probability {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for Probability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}", self.0)
    }
}

impl TryFrom<f64> for Probability {
    type Error = PdmError;

    fn try_from(p: f64) -> Result<Self> {
        Probability::new(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(Probability::new(0.0).is_err());
        assert!(Probability::new(-0.1).is_err());
        assert!(Probability::new(1.0001).is_err());
        assert!(Probability::new(f64::NAN).is_err());
        assert!(Probability::new(f64::INFINITY).is_err());
        assert!(Probability::new(1.0).is_ok());
        assert!(Probability::new(1e-12).is_ok());
    }

    #[test]
    fn example7_product() {
        // Paper Example 7: 0.8 × 0.85 = 0.68.
        let p = Probability::of(0.8).and(Probability::of(0.85));
        assert!((p.get() - 0.68).abs() < 1e-12);
    }

    #[test]
    fn one_is_identity_for_and() {
        let p = Probability::of(0.35);
        assert_eq!(p.and(Probability::ONE), p);
    }

    #[test]
    fn average() {
        let avg = Probability::average_of([Probability::of(0.6), Probability::of(0.8)]).unwrap();
        assert!((avg.get() - 0.7).abs() < 1e-12);
        assert!(Probability::average_of(std::iter::empty()).is_none());
        // Singleton average is the value itself.
        let one = Probability::average_of([Probability::of(0.42)]).unwrap();
        assert!((one.get() - 0.42).abs() < 1e-12);
    }

    #[test]
    fn ordering_ranks_descending_naturally() {
        let mut v = [Probability::of(0.5), Probability::of(0.9), Probability::of(0.68)];
        v.sort();
        v.reverse();
        assert_eq!(v[0], Probability::of(0.9));
        assert_eq!(v[2], Probability::of(0.5));
    }

    #[test]
    fn display_is_three_decimals() {
        assert_eq!(Probability::of(0.68).to_string(), "0.680");
    }
}
