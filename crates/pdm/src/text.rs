//! Text format for [`Value`]: a strict JSON subset with a hand-written
//! recursive-descent parser and a compact printer.
//!
//! The format is used for fixtures, examples, debugging output and the
//! document store's external representation. It accepts standard JSON with
//! the following deviations:
//!
//! * integers without fraction/exponent parse as [`Value::Int`] (and print
//!   back without a decimal point); everything else numeric is a
//!   [`Value::Float`];
//! * object fields are re-ordered into sorted order (the [`Value`] model is
//!   canonical by construction);
//! * duplicate fields keep the *last* occurrence, like most JSON parsers.

use std::collections::BTreeMap;

use crate::error::{PdmError, Result};
use crate::value::Value;

/// Parses a value from its text representation.
pub fn parse(input: &str) -> Result<Value> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(v)
}

/// Renders a value in compact form (no insignificant whitespace).
pub fn to_string(value: &Value) -> String {
    let mut out = String::with_capacity(64);
    write_value(value, &mut out);
    out
}

/// Renders a value with two-space indentation, for human consumption.
pub fn to_string_pretty(value: &Value) -> String {
    let mut out = String::with_capacity(128);
    write_pretty(value, 0, &mut out);
    out
}

fn write_value(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => write_float(*f, out),
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(v, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(value: &Value, indent: usize, out: &mut String) {
    match value {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(indent + 1, out);
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push(']');
        }
        Value::Object(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(indent + 1, out);
                write_string(k, out);
                out.push_str(": ");
                write_pretty(v, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push('}');
        }
        other => write_value(other, out),
    }
}

fn push_indent(level: usize, out: &mut String) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn write_float(f: f64, out: &mut String) {
    if f.is_infinite() {
        // Not representable in JSON; print null like serde_json does.
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e15 {
        // Keep a fraction marker so the value round-trips as a float.
        out.push_str(&format!("{f:.1}"));
    } else {
        out.push_str(&f.to_string());
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> PdmError {
        PdmError::Parse { offset: self.pos, message: message.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(self.err(format!("unexpected byte `{}`", other as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected keyword `{kw}`")))
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(fields)),
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'u') => {
                        let cp = self.parse_hex4()?;
                        let c = if (0xD800..0xDC00).contains(&cp) {
                            // High surrogate: a low surrogate must follow.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("expected low surrogate"));
                            }
                            let low = self.parse_hex4()?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let c = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                            char::from_u32(c).ok_or_else(|| self.err("invalid code point"))?
                        } else {
                            char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))?
                        };
                        out.push(c);
                    }
                    _ => return Err(self.err("invalid escape sequence")),
                },
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(b) => {
                    // Reassemble multi-byte UTF-8 sequences: the input is a
                    // &str so the bytes are guaranteed valid.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    self.pos = start + width;
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let mut cp = 0u32;
        for _ in 0..4 {
            let b = self.bump().ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char).to_digit(16).ok_or_else(|| self.err("invalid hex digit"))?;
            cp = cp * 16 + d;
        }
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            let f: f64 = s.parse().map_err(|_| self.err("invalid float literal"))?;
            Ok(Value::Float(f))
        } else {
            match s.parse::<i64>() {
                Ok(i) => Ok(Value::Int(i)),
                // Integer overflow: fall back to float like JSON parsers do.
                Err(_) => {
                    let f: f64 = s.parse().map_err(|_| self.err("invalid int literal"))?;
                    Ok(Value::Float(f))
                }
            }
        }
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(s: &str) -> String {
        to_string(&parse(s).unwrap())
    }

    #[test]
    fn scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap(), Value::Int(42));
        assert_eq!(parse("-7").unwrap(), Value::Int(-7));
        assert_eq!(parse("2.5").unwrap(), Value::Float(2.5));
        assert_eq!(parse("1e3").unwrap(), Value::Float(1000.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::str("hi"));
    }

    #[test]
    fn containers() {
        assert_eq!(parse("[]").unwrap(), Value::Array(vec![]));
        assert_eq!(parse("{}").unwrap(), Value::Object(Default::default()));
        let v = parse(r#"{"b":1,"a":[true,null]}"#).unwrap();
        // Fields come back sorted (canonical order).
        assert_eq!(to_string(&v), r#"{"a":[true,null],"b":1}"#);
    }

    #[test]
    fn escapes_roundtrip() {
        let v = parse(r#""line\nquote\"tab\tAé""#).unwrap();
        assert_eq!(v, Value::str("line\nquote\"tab\tAé"));
        let printed = to_string(&v);
        assert_eq!(parse(&printed).unwrap(), v);
    }

    #[test]
    fn surrogate_pairs() {
        let v = parse(r#""😀""#).unwrap();
        assert_eq!(v, Value::str("😀"));
    }

    #[test]
    fn unicode_passthrough() {
        assert_eq!(roundtrip("\"caffè\""), "\"caffè\"");
    }

    #[test]
    fn float_int_distinction_survives() {
        assert_eq!(roundtrip("3"), "3");
        assert_eq!(roundtrip("3.0"), "3.0");
    }

    #[test]
    fn big_int_falls_back_to_float() {
        let v = parse("99999999999999999999999").unwrap();
        assert!(matches!(v, Value::Float(_)));
    }

    #[test]
    fn errors_carry_offsets() {
        let e = parse("[1,").unwrap_err();
        match e {
            PdmError::Parse { offset, .. } => assert_eq!(offset, 3),
            other => panic!("unexpected error {other:?}"),
        }
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("[1 2]").is_err());
        assert!(parse("tru").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn duplicate_fields_keep_last() {
        let v = parse(r#"{"a":1,"a":2}"#).unwrap();
        assert_eq!(v.get("a"), Some(&Value::Int(2)));
    }

    #[test]
    fn pretty_printer_is_reparsable() {
        let v = parse(r#"{"title":"Wish","tracks":[{"n":1},{"n":2}],"year":1992}"#).unwrap();
        let pretty = to_string_pretty(&v);
        assert!(pretty.contains('\n'));
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn nested_depth() {
        let mut s = String::new();
        for _ in 0..100 {
            s.push('[');
        }
        s.push('1');
        for _ in 0..100 {
            s.push(']');
        }
        assert!(parse(&s).is_ok());
    }
}
