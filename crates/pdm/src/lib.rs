//! # quepa-pdm — the Polystore Data Model (PDM)
//!
//! This crate implements the *general data model for polystores* of
//! Maccioni & Torlone, "Augmented Access for Querying and Exploring a
//! Polystore" (ICDE 2018), Section II-A.
//!
//! In PDM a **polystore** is a set of databases stored in a variety of data
//! management systems. A **database** consists of a set of **data
//! collections**; each collection is a set of **data objects**. An object is
//! a key/value pair `(k, v)` where `k` identifies the object uniquely within
//! its collection. The triple *(database, collection, key)* forms the
//! object's [`GlobalKey`], which identifies it uniquely in the whole
//! polystore.
//!
//! Objects of different databases are correlated by **p-relations**
//! ([`PRelation`]): probabilistic *identity* (`~`, an equivalence relation —
//! the two objects denote the same real-world entity) or *matching* (`≡`, a
//! reflexive symmetric relation — the two objects share some information).
//!
//! The crate also provides [`Value`], a self-contained JSON-like value model
//! (with its own text parser and printer in [`text`]) used as the common
//! in-memory representation into which every store's connector parses its
//! native objects — tuples, documents, kv entries and graph nodes alike.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod key;
pub mod object;
pub mod prelation;
pub mod prob;
pub mod pushdown;
pub mod text;
pub mod value;

pub use error::{PdmError, Result};
pub use key::{CollectionName, DatabaseName, GlobalKey, LocalKey};
pub use object::DataObject;
pub use prelation::{PRelation, RelationKind};
pub use prob::Probability;
pub use pushdown::{PushClause, PushField, PushOp, Pushdown};
pub use value::Value;
