//! A self-contained JSON-like value model.
//!
//! Every connector parses the native objects of its store (tuples, JSON
//! documents, key/value entries, graph nodes) into a [`Value`]; the
//! augmentation machinery then works on a single in-memory representation
//! without imposing a shared *storage* model on the polystore (the stores
//! keep their own formats, per the paper's design goal (ii) in §I).

use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::fmt;

use crate::error::PdmError;

/// A dynamically-typed value: the common in-memory currency of the polystore.
///
/// Objects use a `BTreeMap` so that field order — and therefore the text
/// rendering, hashing and equality — is deterministic.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// The null value.
    #[default]
    Null,
    /// A boolean.
    Bool(bool),
    /// A 64-bit signed integer.
    Int(i64),
    /// A 64-bit float. `NaN` is not constructible through the public API.
    Float(f64),
    /// A UTF-8 string.
    Str(String),
    /// An ordered sequence of values.
    Array(Vec<Value>),
    /// A field-name → value mapping with deterministic (sorted) field order.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Creates a string value.
    pub fn str(s: impl Into<String>) -> Self {
        Value::Str(s.into())
    }

    /// Creates an object value from an iterator of `(field, value)` pairs.
    pub fn object<I, K>(fields: I) -> Self
    where
        I: IntoIterator<Item = (K, Value)>,
        K: Into<String>,
    {
        Value::Object(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Creates an array value.
    pub fn array(items: impl IntoIterator<Item = Value>) -> Self {
        Value::Array(items.into_iter().collect())
    }

    /// Creates a float value, rejecting NaN (which would break `Eq`/ordering).
    pub fn float(f: f64) -> Result<Self, PdmError> {
        if f.is_nan() {
            Err(PdmError::InvalidProbability("NaN is not a valid Value::Float".into()))
        } else {
            Ok(Value::Float(f))
        }
    }

    /// The name of this value's type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Returns `true` for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Borrows the string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the integer content, if this is an int.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the numeric content as `f64` for ints and floats.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Returns the boolean content, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Borrows the fields, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Borrows the items, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// Looks up a field of an object value; `None` for non-objects or
    /// missing fields.
    pub fn get(&self, field: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(field))
    }

    /// Looks up a dotted path (`"a.b.c"`) through nested objects.
    pub fn get_path(&self, path: &str) -> Option<&Value> {
        let mut cur = self;
        for seg in path.split('.') {
            cur = cur.get(seg)?;
        }
        Some(cur)
    }

    /// Inserts a field, turning `self` into an object if it was null.
    ///
    /// Returns the previous value of the field, if any.
    pub fn insert(&mut self, field: impl Into<String>, value: Value) -> Option<Value> {
        if self.is_null() {
            *self = Value::Object(BTreeMap::new());
        }
        match self {
            Value::Object(m) => m.insert(field.into(), value),
            _ => None,
        }
    }

    /// An estimate of the in-memory footprint of the value, in bytes.
    ///
    /// Used by the simulated-memory accounting of the middleware baselines
    /// and by the cost model of the network simulation.
    pub fn approx_size(&self) -> usize {
        match self {
            Value::Null => 8,
            Value::Bool(_) => 8,
            Value::Int(_) => 8,
            Value::Float(_) => 8,
            Value::Str(s) => 24 + s.len(),
            Value::Array(items) => 24 + items.iter().map(Value::approx_size).sum::<usize>(),
            Value::Object(fields) => {
                24 + fields.iter().map(|(k, v)| 24 + k.len() + v.approx_size()).sum::<usize>()
            }
        }
    }

    /// A total order over values, used for deterministic sorting of query
    /// results. Orders first by type rank, then by content; floats compare
    /// with `total_cmp`.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) => 2,
                Value::Float(_) => 3,
                Value::Str(_) => 4,
                Value::Array(_) => 5,
                Value::Object(_) => 6,
            }
        }
        // Numeric values compare across Int/Float so that sorting mixed
        // columns behaves like SQL ordering.
        if let (Some(a), Some(b)) = (self.as_f64(), other.as_f64()) {
            return a.total_cmp(&b);
        }
        match (self, other) {
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Array(a), Value::Array(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    let ord = x.total_cmp(y);
                    if ord != Ordering::Equal {
                        return ord;
                    }
                }
                a.len().cmp(&b.len())
            }
            (Value::Object(a), Value::Object(b)) => {
                for ((ka, va), (kb, vb)) in a.iter().zip(b.iter()) {
                    let ord = ka.cmp(kb).then_with(|| va.total_cmp(vb));
                    if ord != Ordering::Equal {
                        return ord;
                    }
                }
                a.len().cmp(&b.len())
            }
            _ => rank(self).cmp(&rank(other)),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::text::to_string(self))
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let v = Value::object([
            ("name", Value::str("Wish")),
            ("year", Value::Int(1992)),
            ("meta", Value::object([("artist", Value::str("The Cure"))])),
        ]);
        assert_eq!(v.get("name").and_then(Value::as_str), Some("Wish"));
        assert_eq!(v.get("year").and_then(Value::as_int), Some(1992));
        assert_eq!(v.get_path("meta.artist").and_then(Value::as_str), Some("The Cure"));
        assert_eq!(v.get_path("meta.missing"), None);
        assert_eq!(v.type_name(), "object");
    }

    #[test]
    fn insert_promotes_null_to_object() {
        let mut v = Value::Null;
        assert!(v.insert("a", Value::Int(1)).is_none());
        assert_eq!(v.get("a"), Some(&Value::Int(1)));
        let old = v.insert("a", Value::Int(2));
        assert_eq!(old, Some(Value::Int(1)));
    }

    #[test]
    fn float_rejects_nan() {
        assert!(Value::float(f64::NAN).is_err());
        assert!(Value::float(1.5).is_ok());
    }

    #[test]
    fn approx_size_grows_with_content() {
        let small = Value::str("a");
        let big = Value::str("a".repeat(100));
        assert!(big.approx_size() > small.approx_size());
        let arr = Value::array([Value::Int(1), Value::Int(2)]);
        assert!(arr.approx_size() > Value::Int(1).approx_size());
    }

    #[test]
    fn total_cmp_numeric_cross_type() {
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.0)), Ordering::Equal);
        assert_eq!(Value::Int(1).total_cmp(&Value::Float(1.5)), Ordering::Less);
        assert_eq!(Value::Float(3.0).total_cmp(&Value::Int(2)), Ordering::Greater);
    }

    #[test]
    fn total_cmp_orders_types_and_content() {
        let mut vs = vec![
            Value::str("b"),
            Value::Null,
            Value::Int(5),
            Value::str("a"),
            Value::Bool(true),
            Value::Bool(false),
        ];
        vs.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(
            vs,
            vec![
                Value::Null,
                Value::Bool(false),
                Value::Bool(true),
                Value::Int(5),
                Value::str("a"),
                Value::str("b"),
            ]
        );
    }

    #[test]
    fn total_cmp_arrays_lexicographic() {
        let a = Value::array([Value::Int(1), Value::Int(2)]);
        let b = Value::array([Value::Int(1), Value::Int(3)]);
        let c = Value::array([Value::Int(1)]);
        assert_eq!(a.total_cmp(&b), Ordering::Less);
        assert_eq!(c.total_cmp(&a), Ordering::Less);
        assert_eq!(a.total_cmp(&a.clone()), Ordering::Equal);
    }
}
