//! # quepa-linkage — the Collector
//!
//! The Collector (paper §III-D) "discovers, gathers and stores p-relations
//! in the A' index". The paper uses two off-the-shelf tools as black boxes:
//! **BLAST** for unsupervised blocking and **Duke** for pairwise matching
//! (with a genetic algorithm tuning its configuration). Neither is
//! available here, so this crate re-implements the same two-phase record
//! linkage pipeline:
//!
//! * [`comparators`] — the string/numeric similarity measures Duke ships
//!   (Levenshtein, Jaro-Winkler, token Jaccard, numeric ratio, exact);
//! * [`blocking`] — token blocking over object values with meta-blocking
//!   style pruning of low-information (oversized) blocks, requiring no
//!   pre-existing knowledge of the sources, like BLAST;
//! * [`matching`] — weighted pairwise scoring of candidate pairs, and the
//!   classification of scores into p-relations using the paper's
//!   thresholds (identity ≥ 0.9, matching in \[0.6, 0.9));
//! * [`ga`] — a small genetic algorithm tuning comparator weights against
//!   labelled pairs (Duke's tuning loop);
//! * [`collector`] — the end-to-end pipeline: polystore → blocking →
//!   matching → dedup rule ("two data objects belonging to the same
//!   dataset cannot participate in an identity p-relation with the same
//!   object of a different database") → A' index.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blocking;
pub mod collector;
pub mod comparators;
pub mod ga;
pub mod matching;

pub use blocking::{BlockingConfig, CandidatePairs};
pub use collector::{Collector, CollectorConfig, CollectorReport};
pub use comparators::{jaccard, jaro_winkler, levenshtein_similarity, numeric_similarity};
pub use ga::{GaConfig, LabelledPair};
pub use matching::{MatchClass, MatcherConfig, PairwiseMatcher};
