//! Unsupervised token blocking with meta-blocking pruning (the BLAST role).
//!
//! Objects are assigned to blocks keyed by the tokens of their string
//! values. Candidate pairs are objects sharing at least
//! [`BlockingConfig::min_common_blocks`] blocks, restricted to pairs from
//! *different databases* (the Collector links across stores; local
//! deduplication "remains a local responsibility", §III-D). Oversized
//! blocks — stop-word-like tokens that would generate quadratic
//! candidates with no discriminative power — are pruned, the core
//! meta-blocking idea.

use std::collections::HashMap;

use quepa_pdm::{DataObject, Value};

use crate::comparators::tokens;

/// Blocking parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockingConfig {
    /// Blocks larger than this are discarded as non-discriminative.
    pub max_block_size: usize,
    /// Candidate pairs must co-occur in at least this many blocks.
    pub min_common_blocks: usize,
}

impl Default for BlockingConfig {
    fn default() -> Self {
        BlockingConfig { max_block_size: 64, min_common_blocks: 1 }
    }
}

/// The result of blocking: candidate pair indices into the input slice.
#[derive(Debug, Clone, Default)]
pub struct CandidatePairs {
    /// `(i, j)` with `i < j`, deduplicated and sorted.
    pub pairs: Vec<(usize, usize)>,
    /// Number of blocks kept after pruning.
    pub blocks_kept: usize,
    /// Number of blocks pruned for exceeding the size cap.
    pub blocks_pruned: usize,
}

/// Extracts every string token of an object's value (recursively) plus the
/// tokens of scalar renderings of numbers — the blocking key material.
fn object_tokens(value: &Value, out: &mut Vec<String>) {
    match value {
        Value::Str(s) => out.extend(tokens(s)),
        Value::Int(i) => out.push(i.to_string()),
        Value::Float(f) => out.push(format!("{f}")),
        Value::Array(items) => {
            for v in items {
                object_tokens(v, out);
            }
        }
        Value::Object(fields) => {
            for v in fields.values() {
                object_tokens(v, out);
            }
        }
        Value::Bool(_) | Value::Null => {}
    }
}

/// Runs token blocking over a set of objects.
pub fn block(objects: &[DataObject], config: BlockingConfig) -> CandidatePairs {
    // token → object indices (deduplicated per object).
    let mut blocks: HashMap<String, Vec<usize>> = HashMap::new();
    for (i, obj) in objects.iter().enumerate() {
        let mut toks = Vec::new();
        object_tokens(obj.value(), &mut toks);
        toks.sort();
        toks.dedup();
        for t in toks {
            blocks.entry(t).or_default().push(i);
        }
    }

    let mut result = CandidatePairs::default();
    let mut co_occurrence: HashMap<(usize, usize), usize> = HashMap::new();
    for (_, members) in blocks {
        if members.len() > config.max_block_size || members.len() < 2 {
            if members.len() > config.max_block_size {
                result.blocks_pruned += 1;
            }
            continue;
        }
        result.blocks_kept += 1;
        for (a, &i) in members.iter().enumerate() {
            for &j in &members[a + 1..] {
                // Only cross-database pairs are linkage candidates.
                if objects[i].key().database() == objects[j].key().database() {
                    continue;
                }
                let pair = if i < j { (i, j) } else { (j, i) };
                *co_occurrence.entry(pair).or_insert(0) += 1;
            }
        }
    }
    result.pairs = co_occurrence
        .into_iter()
        .filter(|&(_, n)| n >= config.min_common_blocks)
        .map(|(p, _)| p)
        .collect();
    result.pairs.sort_unstable();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use quepa_pdm::GlobalKey;

    fn obj(key: &str, text: &str) -> DataObject {
        DataObject::new(
            key.parse::<GlobalKey>().unwrap(),
            Value::object([("name", Value::str(text))]),
        )
    }

    #[test]
    fn shared_tokens_produce_candidates() {
        let objects = [
            obj("a.t.1", "The Cure Wish"),
            obj("b.t.1", "Wish (album) by The Cure"),
            obj("b.t.2", "Completely unrelated"),
        ];
        let r = block(&objects, BlockingConfig::default());
        assert_eq!(r.pairs, vec![(0, 1)]);
    }

    #[test]
    fn same_database_pairs_excluded() {
        let objects = [obj("a.t.1", "wish"), obj("a.t.2", "wish")];
        let r = block(&objects, BlockingConfig::default());
        assert!(r.pairs.is_empty(), "dedup is a local responsibility");
    }

    #[test]
    fn oversized_blocks_pruned() {
        // 20 objects all sharing the token "the": block pruned, no pairs.
        let objects: Vec<DataObject> =
            (0..20).map(|i| obj(&format!("db{}.t.{i}", i % 2), "the")).collect();
        let cfg = BlockingConfig { max_block_size: 10, min_common_blocks: 1 };
        let r = block(&objects, cfg);
        assert!(r.pairs.is_empty());
        assert_eq!(r.blocks_pruned, 1);
    }

    #[test]
    fn min_common_blocks_filters() {
        let objects = [
            obj("a.t.1", "cure wish"),
            obj("b.t.1", "cure wish"),    // 2 shared tokens
            obj("b.t.2", "cure lullaby"), // 1 shared token with 0
        ];
        let strict = BlockingConfig { max_block_size: 64, min_common_blocks: 2 };
        let r = block(&objects, strict);
        assert_eq!(r.pairs, vec![(0, 1)]);
    }

    #[test]
    fn numeric_values_block_too() {
        let a =
            DataObject::new("a.t.1".parse().unwrap(), Value::object([("year", Value::Int(1992))]));
        let b = DataObject::new(
            "b.t.1".parse().unwrap(),
            Value::object([("released", Value::Int(1992))]),
        );
        let r = block(&[a, b], BlockingConfig::default());
        assert_eq!(r.pairs, vec![(0, 1)]);
    }

    #[test]
    fn nested_values_are_tokenized() {
        let a = DataObject::new(
            "a.t.1".parse().unwrap(),
            Value::object([("meta", Value::object([("artist", Value::str("Radiohead"))]))]),
        );
        let b = DataObject::new("b.t.1".parse().unwrap(), Value::array([Value::str("radiohead")]));
        let r = block(&[a, b], BlockingConfig::default());
        assert_eq!(r.pairs, vec![(0, 1)]);
    }

    #[test]
    fn empty_input() {
        let r = block(&[], BlockingConfig::default());
        assert!(r.pairs.is_empty());
        assert_eq!(r.blocks_kept, 0);
    }
}
