//! A small genetic algorithm tuning the matcher's comparator weights
//! against labelled pairs — Duke's "genetic algorithm that we have used for
//! tuning the configuration" (paper §III-D).

use quepa_pdm::DataObject;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::matching::{MatcherConfig, PairwiseMatcher};

/// A labelled training pair for tuning.
#[derive(Debug, Clone)]
pub struct LabelledPair {
    /// First object.
    pub a: DataObject,
    /// Second object.
    pub b: DataObject,
    /// True when the two objects denote the same entity.
    pub is_match: bool,
}

/// GA hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaConfig {
    /// Individuals per generation.
    pub population: usize,
    /// Number of generations.
    pub generations: usize,
    /// Per-gene mutation probability.
    pub mutation_rate: f64,
    /// RNG seed (the tuner is fully deterministic given the seed).
    pub seed: u64,
}

impl Default for GaConfig {
    fn default() -> Self {
        GaConfig { population: 24, generations: 30, mutation_rate: 0.2, seed: 42 }
    }
}

/// F1 of a matcher configuration against the labelled pairs, treating
/// "score ≥ identity threshold" as a positive prediction.
pub fn f1_score(config: &MatcherConfig, pairs: &[LabelledPair]) -> f64 {
    let m = PairwiseMatcher::new(*config);
    let (mut tp, mut fp, mut fn_) = (0usize, 0usize, 0usize);
    for p in pairs {
        let predicted = m.score(&p.a, &p.b) >= config.identity_threshold;
        match (predicted, p.is_match) {
            (true, true) => tp += 1,
            (true, false) => fp += 1,
            (false, true) => fn_ += 1,
            (false, false) => {}
        }
    }
    if tp == 0 {
        return 0.0;
    }
    let precision = tp as f64 / (tp + fp) as f64;
    let recall = tp as f64 / (tp + fn_) as f64;
    2.0 * precision * recall / (precision + recall)
}

/// Tunes the four comparator weights to maximize F1 on `pairs`, starting
/// from `base` (whose thresholds are kept). Returns the best configuration
/// found and its F1.
pub fn tune(base: &MatcherConfig, pairs: &[LabelledPair], ga: GaConfig) -> (MatcherConfig, f64) {
    let mut rng = StdRng::seed_from_u64(ga.seed);
    let mut population: Vec<[f64; 4]> = Vec::with_capacity(ga.population);
    population.push(base.weights());
    while population.len() < ga.population {
        population.push(std::array::from_fn(|_| rng.gen_range(0.0..2.0)));
    }

    let fitness = |w: &[f64; 4], pairs: &[LabelledPair]| f1_score(&base.with_weights(*w), pairs);

    let mut scored: Vec<([f64; 4], f64)> =
        population.into_iter().map(|w| (w, fitness(&w, pairs))).collect();
    for _ in 0..ga.generations {
        scored.sort_by(|a, b| b.1.total_cmp(&a.1));
        let elite = ga.population / 4;
        let mut next: Vec<[f64; 4]> = scored.iter().take(elite.max(1)).map(|(w, _)| *w).collect();
        while next.len() < ga.population {
            // Tournament selection of two parents from the top half.
            let half = (scored.len() / 2).max(1);
            let p1 = scored[rng.gen_range(0..half)].0;
            let p2 = scored[rng.gen_range(0..half)].0;
            // Uniform crossover + Gaussian-ish mutation.
            let mut child: [f64; 4] =
                std::array::from_fn(|i| if rng.gen_bool(0.5) { p1[i] } else { p2[i] });
            for g in &mut child {
                if rng.gen_bool(ga.mutation_rate) {
                    *g = (*g + rng.gen_range(-0.5..0.5)).clamp(0.0, 2.0);
                }
            }
            next.push(child);
        }
        scored = next.into_iter().map(|w| (w, fitness(&w, pairs))).collect();
    }
    scored.sort_by(|a, b| b.1.total_cmp(&a.1));
    let (best_w, best_f1) = scored[0];
    (base.with_weights(best_w), best_f1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use quepa_pdm::text;

    fn obj(key: &str, json: &str) -> DataObject {
        DataObject::new(key.parse().unwrap(), text::parse(json).unwrap())
    }

    /// Pairs where the *numeric* comparator is the discriminating signal:
    /// texts are near-identical across both classes, numbers differ.
    fn numeric_sensitive_pairs() -> Vec<LabelledPair> {
        let mut pairs = Vec::new();
        for i in 0..10 {
            pairs.push(LabelledPair {
                a: obj(&format!("a.t.p{i}"), &format!(r#"{{"t":"item record","n":{i}}}"#)),
                b: obj(&format!("b.t.p{i}"), &format!(r#"{{"t":"item record","n":{i}}}"#)),
                is_match: true,
            });
            pairs.push(LabelledPair {
                a: obj(&format!("a.t.n{i}"), &format!(r#"{{"t":"item record","n":{i}}}"#)),
                b: obj(
                    &format!("b.t.n{i}"),
                    &format!(r#"{{"t":"item record","n":{}}}"#, (i + 1) * 1000),
                ),
                is_match: false,
            });
        }
        pairs
    }

    #[test]
    fn f1_of_perfect_and_useless() {
        let pairs = numeric_sensitive_pairs();
        // Numeric-only config separates the classes perfectly.
        let numeric_only = MatcherConfig {
            w_levenshtein: 0.0,
            w_jaro_winkler: 0.0,
            w_jaccard: 0.0,
            w_numeric: 1.0,
            ..Default::default()
        };
        assert_eq!(f1_score(&numeric_only, &pairs), 1.0);
        // Text-only config calls everything a match (all texts equal) —
        // precision 0.5, recall 1.0, F1 = 2/3.
        let text_only = MatcherConfig { w_numeric: 0.0, ..Default::default() };
        let f1 = f1_score(&text_only, &pairs);
        assert!((f1 - 2.0 / 3.0).abs() < 1e-9, "{f1}");
    }

    #[test]
    fn tuner_improves_f1() {
        let pairs = numeric_sensitive_pairs();
        // Start from a text-dominated config the tuner must escape.
        let base = MatcherConfig {
            w_levenshtein: 2.0,
            w_jaro_winkler: 2.0,
            w_jaccard: 2.0,
            w_numeric: 0.0,
            ..Default::default()
        };
        let before = f1_score(&base, &pairs);
        let (tuned, after) = tune(&base, &pairs, GaConfig::default());
        assert!(after > before, "tuning must improve F1: {before} → {after}");
        assert!(after > 0.9, "tuned F1 {after}");
        // The tuned genome leans on the numeric comparator.
        assert!(tuned.w_numeric > 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let pairs = numeric_sensitive_pairs();
        let base = MatcherConfig::default();
        let ga = GaConfig { seed: 7, ..Default::default() };
        let (c1, f1a) = tune(&base, &pairs, ga);
        let (c2, f1b) = tune(&base, &pairs, ga);
        assert_eq!(c1, c2);
        assert_eq!(f1a, f1b);
    }

    #[test]
    fn thresholds_preserved_by_tuning() {
        let pairs = numeric_sensitive_pairs();
        let base = MatcherConfig {
            identity_threshold: 0.93,
            matching_threshold: 0.55,
            ..Default::default()
        };
        let (tuned, _) = tune(&base, &pairs, GaConfig { generations: 2, ..Default::default() });
        assert_eq!(tuned.identity_threshold, 0.93);
        assert_eq!(tuned.matching_threshold, 0.55);
    }

    #[test]
    fn empty_pairs_zero_f1() {
        assert_eq!(f1_score(&MatcherConfig::default(), &[]), 0.0);
    }
}
