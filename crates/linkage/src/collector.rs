//! The end-to-end Collector pipeline: polystore → blocking → pairwise
//! matching → dedup rule → A' index.

use std::collections::HashMap;

use quepa_aindex::AIndex;
use quepa_pdm::{DataObject, GlobalKey, Probability};
use quepa_polystore::{Polystore, Result};

use crate::blocking::{block, BlockingConfig};
use crate::matching::{MatchClass, MatcherConfig, PairwiseMatcher};

/// Collector configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct CollectorConfig {
    /// Blocking parameters.
    pub blocking: BlockingConfig,
    /// Matcher weights and thresholds.
    pub matcher: MatcherConfig,
}

/// What a collector run did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CollectorReport {
    /// Objects scanned out of the polystore.
    pub objects_scanned: usize,
    /// Candidate pairs produced by blocking.
    pub candidate_pairs: usize,
    /// Identity p-relations inserted.
    pub identities: usize,
    /// Matching p-relations inserted.
    pub matchings: usize,
    /// Identity candidates suppressed by the dedup rule ("two data objects
    /// belonging to the same dataset cannot participate in an identity
    /// p-relation with the same object", §III-D).
    pub suppressed: usize,
}

/// The Collector.
#[derive(Debug, Clone, Copy, Default)]
pub struct Collector {
    config: CollectorConfig,
}

impl Collector {
    /// Creates a collector.
    pub fn new(config: CollectorConfig) -> Self {
        Collector { config }
    }

    /// Scans the whole polystore and builds a fresh A' index.
    pub fn build_index(&self, polystore: &Polystore) -> Result<(AIndex, CollectorReport)> {
        let mut objects: Vec<DataObject> = Vec::new();
        for db in polystore.database_names() {
            let connector = polystore.connector(db)?;
            for coll in connector.collections() {
                objects.extend(connector.scan_collection(&coll)?);
            }
        }
        Ok(self.link(&objects))
    }

    /// Runs the linkage pipeline over pre-fetched objects.
    pub fn link(&self, objects: &[DataObject]) -> (AIndex, CollectorReport) {
        let mut report = CollectorReport { objects_scanned: objects.len(), ..Default::default() };
        let candidates = block(objects, self.config.blocking);
        report.candidate_pairs = candidates.pairs.len();

        let matcher = PairwiseMatcher::new(self.config.matcher);
        let mut identity_pairs: Vec<(usize, usize, Probability)> = Vec::new();
        let mut matching_pairs: Vec<(usize, usize, Probability)> = Vec::new();
        for &(i, j) in &candidates.pairs {
            match matcher.classify(&objects[i], &objects[j]) {
                MatchClass::Identity(p) => identity_pairs.push((i, j, p)),
                MatchClass::Matching(p) => matching_pairs.push((i, j, p)),
                MatchClass::None => {}
            }
        }

        // Dedup rule: for each (target object, other database) keep only
        // the highest-probability identity. "Deduplication remains a local
        // responsibility": two objects of one database both claiming
        // identity with the same foreign object means at least one claim is
        // wrong.
        identity_pairs.sort_by_key(|&(_, _, p)| std::cmp::Reverse(p));
        let mut claimed: HashMap<(GlobalKey, String), usize> = HashMap::new();
        let mut kept_identities: Vec<(usize, usize, Probability)> = Vec::new();
        for (i, j, p) in identity_pairs {
            let key_i = objects[i].key().clone();
            let key_j = objects[j].key().clone();
            let slot_a = (key_i.clone(), key_j.database().to_string());
            let slot_b = (key_j.clone(), key_i.database().to_string());
            if claimed.contains_key(&slot_a) || claimed.contains_key(&slot_b) {
                report.suppressed += 1;
                continue;
            }
            claimed.insert(slot_a, j);
            claimed.insert(slot_b, i);
            kept_identities.push((i, j, p));
        }

        let mut index = AIndex::new();
        for (i, j, p) in kept_identities {
            index.insert_identity(objects[i].key(), objects[j].key(), p);
            report.identities += 1;
        }
        for (i, j, p) in matching_pairs {
            index.insert_matching(objects[i].key(), objects[j].key(), p);
            report.matchings += 1;
        }
        (index, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quepa_pdm::{text, RelationKind};

    fn obj(key: &str, json: &str) -> DataObject {
        DataObject::new(key.parse().unwrap(), text::parse(json).unwrap())
    }

    fn polyphony_objects() -> Vec<DataObject> {
        vec![
            // The album in three stores (the running example).
            obj("catalogue.albums.d1", r#"{"title":"Wish","artist":"The Cure","year":1992}"#),
            obj("transactions.inventory.a32", r#"{"artist":"The Cure","name":"Wish","year":1992}"#),
            obj("similar.album.g7", r#"{"title":"Wish","artist":"The Cure","year":1992}"#),
            // A related but distinct object.
            obj(
                "catalogue.albums.d2",
                r#"{"title":"Disintegration","artist":"The Cure","year":1989}"#,
            ),
            // Noise.
            obj("transactions.sales.s8", r#"{"first":"John","last":"Doe","total":20.0}"#),
        ]
    }

    #[test]
    fn builds_expected_relations() {
        let collector = Collector::default();
        let (index, report) = collector.link(&polyphony_objects());
        assert_eq!(report.objects_scanned, 5);
        assert!(report.candidate_pairs >= 3);
        // The three copies of Wish are pairwise identical → identities.
        let d1: GlobalKey = "catalogue.albums.d1".parse().unwrap();
        let a32: GlobalKey = "transactions.inventory.a32".parse().unwrap();
        let g7: GlobalKey = "similar.album.g7".parse().unwrap();
        assert!(index.edge(&d1, &a32, RelationKind::Identity).is_some());
        assert!(index.edge(&d1, &g7, RelationKind::Identity).is_some());
        // Disintegration shares artist tokens with Wish copies in other
        // dbs — those must not be identities.
        let d2: GlobalKey = "catalogue.albums.d2".parse().unwrap();
        assert!(index.edge(&d2, &a32, RelationKind::Identity).is_none());
        assert!(index.check_consistency().is_none());
    }

    #[test]
    fn dedup_rule_keeps_best_identity() {
        // Two near-identical objects in database `a` both matching one
        // object in database `b`: only one identity may survive.
        let objects = vec![
            obj("a.t.1", r#"{"title":"Wish","artist":"The Cure"}"#),
            obj("a.t.2", r#"{"title":"Wish","artist":"The Cure"}"#),
            obj("b.t.1", r#"{"title":"Wish","artist":"The Cure"}"#),
        ];
        let (index, report) = Collector::default().link(&objects);
        assert_eq!(report.identities, 1);
        assert_eq!(report.suppressed, 1);
        let b1: GlobalKey = "b.t.1".parse().unwrap();
        let identity_count =
            index.neighbors(&b1).iter().filter(|(_, k, _)| *k == RelationKind::Identity).count();
        assert_eq!(identity_count, 1);
    }

    #[test]
    fn empty_input() {
        let (index, report) = Collector::default().link(&[]);
        assert_eq!(index.node_count(), 0);
        assert_eq!(report, CollectorReport::default());
    }

    #[test]
    fn full_polystore_scan() {
        use quepa_docstore::DocumentDb;
        use quepa_polystore::{DocumentConnector, LatencyModel, RelationalConnector};
        use quepa_relstore::engine::Database;
        use std::sync::Arc;

        let mut rel = Database::new("transactions");
        rel.create_table("inventory", "id", &["id", "artist", "name"]).unwrap();
        rel.execute("INSERT INTO inventory VALUES ('a32', 'The Cure', 'Wish')").unwrap();
        let mut doc = DocumentDb::new("catalogue");
        doc.insert(
            "albums",
            text::parse(r#"{"_id":"d1","title":"Wish","artist":"The Cure"}"#).unwrap(),
        )
        .unwrap();
        let mut p = Polystore::new();
        p.register(Arc::new(RelationalConnector::new(rel, LatencyModel::FREE)));
        p.register(Arc::new(DocumentConnector::new(doc, LatencyModel::FREE)));

        let (index, report) = Collector::default().build_index(&p).unwrap();
        assert_eq!(report.objects_scanned, 2);
        assert!(index.node_count() >= 2);
        let d1: GlobalKey = "catalogue.albums.d1".parse().unwrap();
        assert!(!index.neighbors(&d1).is_empty());
    }
}
