//! Similarity measures over strings and numbers, all returning values in
//! `[0, 1]` with 1 meaning identical.

/// Levenshtein edit distance, O(|a|·|b|) time, O(min) space.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let (short, long) = if a.len() <= b.len() { (&a, &b) } else { (&b, &a) };
    if short.is_empty() {
        return long.len();
    }
    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut cur = vec![0usize; short.len() + 1];
    for (j, cb) in long.iter().enumerate() {
        cur[0] = j + 1;
        for (i, ca) in short.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[i + 1] = (prev[i + 1] + 1).min(cur[i] + 1).min(prev[i] + cost);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[short.len()]
}

/// Normalized Levenshtein similarity: `1 - distance / max_len`.
pub fn levenshtein_similarity(a: &str, b: &str) -> f64 {
    let max = a.chars().count().max(b.chars().count());
    if max == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max as f64
}

/// Jaro similarity.
pub fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_used = vec![false; b.len()];
    let mut matches = 0usize;
    let mut a_matched = Vec::with_capacity(a.len());
    for (i, ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_used[j] && b[j] == *ca {
                b_used[j] = true;
                matches += 1;
                a_matched.push((i, j));
                break;
            }
        }
    }
    if matches == 0 {
        return 0.0;
    }
    // Transpositions: matched pairs out of relative order.
    let mut transpositions = 0usize;
    let matched_b: Vec<usize> = a_matched.iter().map(|&(_, j)| j).collect();
    for w in matched_b.windows(2) {
        if w[0] > w[1] {
            transpositions += 1;
        }
    }
    // The classic formula counts half-transpositions differently; the
    // windows() count equals the number of adjacent inversions, which for
    // Jaro's purposes is the standard t.
    let m = matches as f64;
    let t = transpositions as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - t) / m) / 3.0
}

/// Jaro-Winkler similarity: Jaro boosted by up to 4 chars of common prefix.
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let j = jaro(a, b);
    let prefix = a.chars().zip(b.chars()).take(4).take_while(|(x, y)| x == y).count() as f64;
    j + prefix * 0.1 * (1.0 - j)
}

/// Token-set Jaccard similarity (tokens = lowercased alphanumeric runs).
pub fn jaccard(a: &str, b: &str) -> f64 {
    let ta = tokens(a);
    let tb = tokens(b);
    if ta.is_empty() && tb.is_empty() {
        return 1.0;
    }
    let inter = ta.intersection(&tb).count();
    let union = ta.union(&tb).count();
    inter as f64 / union as f64
}

/// Similarity of two numbers: the ratio of the smaller magnitude to the
/// larger (1 when equal, → 0 as they diverge; sign mismatches score 0).
pub fn numeric_similarity(a: f64, b: f64) -> f64 {
    if a == b {
        return 1.0;
    }
    if a == 0.0 || b == 0.0 || a.signum() != b.signum() {
        return 0.0;
    }
    let (lo, hi) = if a.abs() <= b.abs() { (a.abs(), b.abs()) } else { (b.abs(), a.abs()) };
    lo / hi
}

/// Lowercased alphanumeric tokens of a string.
pub fn tokens(s: &str) -> std::collections::BTreeSet<String> {
    s.to_lowercase()
        .split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(str::to_owned)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("wish", "wish"), 0);
        assert_eq!(levenshtein("café", "cafe"), 1, "unicode chars count as one");
    }

    #[test]
    fn levenshtein_similarity_range() {
        assert_eq!(levenshtein_similarity("", ""), 1.0);
        assert_eq!(levenshtein_similarity("abc", "abc"), 1.0);
        assert_eq!(levenshtein_similarity("abc", "xyz"), 0.0);
        let s = levenshtein_similarity("The Cure", "The Curee");
        assert!(s > 0.8 && s < 1.0);
    }

    #[test]
    fn jaro_winkler_basics() {
        assert_eq!(jaro_winkler("wish", "wish"), 1.0);
        assert_eq!(jaro_winkler("", ""), 1.0);
        assert_eq!(jaro_winkler("abc", ""), 0.0);
        // Winkler prefix boost: shared prefix scores higher.
        let with_prefix = jaro_winkler("martha", "marhta");
        let without = jaro("martha", "marhta");
        assert!(with_prefix >= without);
        assert!(with_prefix > 0.9);
    }

    #[test]
    fn jaro_winkler_symmetry() {
        for (a, b) in [("dixon", "dicksonx"), ("wish", "wash"), ("cure", "curse")] {
            assert!((jaro_winkler(a, b) - jaro_winkler(b, a)).abs() < 1e-12);
        }
    }

    #[test]
    fn jaccard_tokens() {
        assert_eq!(jaccard("the cure wish", "wish the cure"), 1.0);
        assert_eq!(jaccard("", ""), 1.0);
        assert_eq!(jaccard("abc", ""), 0.0);
        assert!((jaccard("the cure", "the smiths") - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(jaccard("Wish!", "wish"), 1.0, "punctuation and case ignored");
    }

    #[test]
    fn numeric() {
        assert_eq!(numeric_similarity(5.0, 5.0), 1.0);
        assert_eq!(numeric_similarity(5.0, 10.0), 0.5);
        assert_eq!(numeric_similarity(10.0, 5.0), 0.5);
        assert_eq!(numeric_similarity(-3.0, 3.0), 0.0);
        assert_eq!(numeric_similarity(0.0, 3.0), 0.0);
        assert_eq!(numeric_similarity(0.0, 0.0), 1.0);
    }

    #[test]
    fn all_in_unit_range() {
        let samples = ["", "a", "wish", "the cure", "Disintegration 1989", "k1:cure:wish", "éàü"];
        for a in samples {
            for b in samples {
                for f in [levenshtein_similarity, jaro_winkler, jaccard] {
                    let s = f(a, b);
                    assert!((0.0..=1.0).contains(&s), "{a:?} {b:?} -> {s}");
                }
            }
        }
    }
}
