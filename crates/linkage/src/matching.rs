//! Pairwise matching (the Duke role): weighted comparator aggregation over
//! candidate pairs and classification into p-relations.

use quepa_pdm::{DataObject, Probability, Value};

use crate::comparators::{jaccard, jaro_winkler, levenshtein_similarity, numeric_similarity};

/// Comparator weights; the aggregate score is the weighted mean.
/// [`crate::ga`] tunes these.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatcherConfig {
    /// Weight of normalized Levenshtein similarity.
    pub w_levenshtein: f64,
    /// Weight of Jaro-Winkler similarity.
    pub w_jaro_winkler: f64,
    /// Weight of token Jaccard similarity.
    pub w_jaccard: f64,
    /// Weight of numeric similarity over numeric leaves.
    pub w_numeric: f64,
    /// Scores at or above this are identity p-relations (paper: 0.9).
    pub identity_threshold: f64,
    /// Scores at or above this (and below identity) are matching
    /// p-relations (paper: 0.6).
    pub matching_threshold: f64,
}

impl Default for MatcherConfig {
    fn default() -> Self {
        MatcherConfig {
            w_levenshtein: 1.0,
            w_jaro_winkler: 1.0,
            w_jaccard: 1.0,
            w_numeric: 0.5,
            identity_threshold: 0.9,
            matching_threshold: 0.6,
        }
    }
}

impl MatcherConfig {
    /// The comparator weights as a vector (the GA's genome).
    pub fn weights(&self) -> [f64; 4] {
        [self.w_levenshtein, self.w_jaro_winkler, self.w_jaccard, self.w_numeric]
    }

    /// Rebuilds a config from a genome, keeping the thresholds.
    pub fn with_weights(&self, w: [f64; 4]) -> Self {
        MatcherConfig {
            w_levenshtein: w[0],
            w_jaro_winkler: w[1],
            w_jaccard: w[2],
            w_numeric: w[3],
            ..*self
        }
    }
}

/// The classification of a pair score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MatchClass {
    /// Same real-world entity (score ≥ identity threshold).
    Identity(Probability),
    /// Shares information (matching ≤ score < identity).
    Matching(Probability),
    /// Below both thresholds: no p-relation.
    None,
}

/// The pairwise matcher.
#[derive(Debug, Clone, Copy, Default)]
pub struct PairwiseMatcher {
    config: MatcherConfig,
}

impl PairwiseMatcher {
    /// Creates a matcher.
    pub fn new(config: MatcherConfig) -> Self {
        PairwiseMatcher { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &MatcherConfig {
        &self.config
    }

    /// Scores a pair of objects in `[0, 1]`.
    ///
    /// String leaves of both objects are concatenated (per object) into a
    /// profile string compared with the three string comparators; numeric
    /// leaves are greedily aligned and compared with the numeric
    /// comparator. The aggregate is the weighted mean of the applicable
    /// comparators.
    pub fn score(&self, a: &DataObject, b: &DataObject) -> f64 {
        let pa = profile(a.value());
        let pb = profile(b.value());
        let mut total_weight = 0.0;
        let mut total = 0.0;
        let c = &self.config;
        if !pa.text.is_empty() || !pb.text.is_empty() {
            for (w, s) in [
                (c.w_levenshtein, levenshtein_similarity(&pa.text, &pb.text)),
                (c.w_jaro_winkler, jaro_winkler(&pa.text, &pb.text)),
                (c.w_jaccard, jaccard(&pa.text, &pb.text)),
            ] {
                if w > 0.0 {
                    total += w * s;
                    total_weight += w;
                }
            }
        }
        if c.w_numeric > 0.0 && !pa.numbers.is_empty() && !pb.numbers.is_empty() {
            total += c.w_numeric * align_numbers(&pa.numbers, &pb.numbers);
            total_weight += c.w_numeric;
        }
        if total_weight == 0.0 {
            0.0
        } else {
            total / total_weight
        }
    }

    /// Scores and classifies a pair. The score itself becomes the
    /// p-relation's probability (clamped into `(0, 1]`).
    pub fn classify(&self, a: &DataObject, b: &DataObject) -> MatchClass {
        let s = self.score(a, b);
        let p = Probability::new(s.clamp(f64::MIN_POSITIVE, 1.0)).expect("clamped");
        if s >= self.config.identity_threshold {
            MatchClass::Identity(p)
        } else if s >= self.config.matching_threshold {
            MatchClass::Matching(p)
        } else {
            MatchClass::None
        }
    }
}

#[derive(Debug, Default)]
struct Profile {
    text: String,
    numbers: Vec<f64>,
}

/// Flattens an object into its comparable material: sorted string leaves
/// joined with spaces, and the numeric leaves.
fn profile(value: &Value) -> Profile {
    fn walk(value: &Value, strings: &mut Vec<String>, numbers: &mut Vec<f64>) {
        match value {
            Value::Str(s) => strings.push(s.to_lowercase()),
            Value::Int(i) => numbers.push(*i as f64),
            Value::Float(f) => numbers.push(*f),
            Value::Array(items) => {
                for v in items {
                    walk(v, strings, numbers);
                }
            }
            Value::Object(fields) => {
                // Skip identifier/bookkeeping fields: keys are store-local
                // artifacts, not content, and would deflate the similarity
                // of objects that denote the same entity in different
                // stores (each store mints its own keys).
                for (k, v) in fields {
                    if k != "_id" && k != "_label" && k != "id" {
                        walk(v, strings, numbers);
                    }
                }
            }
            Value::Bool(_) | Value::Null => {}
        }
    }
    let mut strings = Vec::new();
    let mut numbers = Vec::new();
    walk(value, &mut strings, &mut numbers);
    strings.sort();
    numbers.sort_by(f64::total_cmp);
    Profile { text: strings.join(" "), numbers }
}

/// Greedy one-to-one alignment of two sorted numeric vectors; returns the
/// mean similarity of the aligned prefix.
fn align_numbers(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    if n == 0 {
        return 0.0;
    }
    let total: f64 = a.iter().zip(b.iter()).map(|(&x, &y)| numeric_similarity(x, y)).sum();
    total / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use quepa_pdm::text;

    fn obj(key: &str, json: &str) -> DataObject {
        DataObject::new(key.parse().unwrap(), text::parse(json).unwrap())
    }

    #[test]
    fn identical_content_scores_one() {
        let m = PairwiseMatcher::default();
        let a = obj("a.t.1", r#"{"title":"Wish","year":1992}"#);
        let b = obj("b.t.1", r#"{"name":"Wish","released":1992}"#);
        // Same leaves under different field names — PDM matching is
        // schema-agnostic.
        assert!((m.score(&a, &b) - 1.0).abs() < 1e-9);
        assert!(matches!(m.classify(&a, &b), MatchClass::Identity(_)));
    }

    #[test]
    fn near_duplicates_are_identity() {
        let m = PairwiseMatcher::default();
        // Punctuation-level noise keeps token overlap: still an identity.
        let a = obj("a.t.1", r#"{"title":"Wish","artist":"The Cure"}"#);
        let b = obj("b.t.1", r#"{"title":"Wish!","artist":"The Cure"}"#);
        match m.classify(&a, &b) {
            MatchClass::Identity(p) => assert!(p.get() > 0.9),
            other => panic!("expected identity, got {other:?}"),
        }
    }

    #[test]
    fn token_level_typos_degrade_to_matching() {
        let m = PairwiseMatcher::default();
        // A diacritic changes a whole token, so Jaccard drops: the pair is
        // still clearly related but no longer an identity.
        let a = obj("a.t.1", r#"{"title":"Wish","artist":"The Cure"}"#);
        let b = obj("b.t.1", r#"{"title":"Wish","artist":"The Curé"}"#);
        assert!(matches!(m.classify(&a, &b), MatchClass::Matching(_)));
    }

    #[test]
    fn related_content_is_matching() {
        let m = PairwiseMatcher::default();
        let a = obj("a.t.1", r#"{"title":"Wish","artist":"The Cure"}"#);
        let b = obj("b.t.1", r#"{"song":"Apart","artist":"The Cure","album":"Wish"}"#);
        let s = m.score(&a, &b);
        assert!(s < 0.9, "not the same entity: {s}");
        assert!(s >= 0.4, "clearly related: {s}");
    }

    #[test]
    fn unrelated_content_is_none() {
        let m = PairwiseMatcher::default();
        let a = obj("a.t.1", r#"{"title":"Wish"}"#);
        let b = obj("b.t.1", r#"{"sku":"XJ-42","warehouse":7}"#);
        assert!(matches!(m.classify(&a, &b), MatchClass::None));
    }

    #[test]
    fn numeric_only_objects() {
        let m = PairwiseMatcher::default();
        let a = obj("a.t.1", r#"{"x":100}"#);
        let b = obj("b.t.1", r#"{"x":100}"#);
        let c = obj("b.t.2", r#"{"x":1}"#);
        assert!(m.score(&a, &b) > m.score(&a, &c));
    }

    #[test]
    fn score_is_symmetric() {
        let m = PairwiseMatcher::default();
        let a = obj("a.t.1", r#"{"title":"Disintegration","year":1989}"#);
        let b = obj("b.t.1", r#"{"name":"Disintegration (album)","rel":1989}"#);
        assert!((m.score(&a, &b) - m.score(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn internal_fields_ignored() {
        let m = PairwiseMatcher::default();
        let a = obj("a.t.1", r#"{"_id":"x9","_label":"Song","title":"Wish"}"#);
        let b = obj("b.t.1", r#"{"_id":"totally-different","title":"Wish"}"#);
        assert!((m.score(&a, &b) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_weights_disable_comparators() {
        let config = MatcherConfig {
            w_levenshtein: 0.0,
            w_jaro_winkler: 0.0,
            w_jaccard: 0.0,
            w_numeric: 1.0,
            ..Default::default()
        };
        let m = PairwiseMatcher::new(config);
        let a = obj("a.t.1", r#"{"t":"completely different text","n":10}"#);
        let b = obj("b.t.1", r#"{"t":"nothing in common here","n":10}"#);
        assert_eq!(m.score(&a, &b), 1.0, "only the numeric comparator counts");
    }

    #[test]
    fn empty_objects_score_zero() {
        let m = PairwiseMatcher::default();
        let a = obj("a.t.1", "{}");
        let b = obj("b.t.1", "{}");
        assert_eq!(m.score(&a, &b), 0.0);
        assert!(matches!(m.classify(&a, &b), MatchClass::None));
    }

    #[test]
    fn genome_roundtrip() {
        let c = MatcherConfig::default();
        let w = c.weights();
        let c2 = c.with_weights(w);
        assert_eq!(c, c2);
    }
}
