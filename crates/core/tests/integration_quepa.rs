//! End-to-end tests over a miniature Polyphony polystore: the running
//! example of the paper (§I, Examples 1–8).

use std::sync::Arc;

use quepa_aindex::AIndex;
use quepa_core::{AugmenterKind, Quepa, QuepaConfig, QuepaError};
use quepa_docstore::DocumentDb;
use quepa_graphstore::GraphDb;
use quepa_kvstore::KvStore;
use quepa_pdm::{text, GlobalKey, Probability, Value};
use quepa_polystore::{
    DocumentConnector, GraphConnector, KvConnector, LatencyModel, Polystore, RelationalConnector,
};
use quepa_relstore::engine::Database;

fn k(s: &str) -> GlobalKey {
    s.parse().unwrap()
}

/// Builds the polystore of Fig. 1 at miniature scale, with the A' index of
/// Fig. 3.
fn polyphony() -> Quepa {
    let mut p = Polystore::new();

    let mut rel = Database::new("transactions");
    rel.create_table("inventory", "id", &["id", "artist", "name"]).unwrap();
    rel.create_table("sales", "id", &["id", "first", "last", "total"]).unwrap();
    rel.create_table("sales_details", "id", &["id", "sale", "item"]).unwrap();
    rel.execute("INSERT INTO inventory VALUES ('a32', 'Cure', 'Wish'), ('a33', 'Cure', 'Faith')")
        .unwrap();
    rel.execute("INSERT INTO sales VALUES ('s8', 'John', 'Doe', 20.0)").unwrap();
    rel.execute("INSERT INTO sales_details VALUES ('i1', 's8', 'a32'), ('i4', 's8', 'a33')")
        .unwrap();
    p.register(Arc::new(RelationalConnector::new(rel, LatencyModel::FREE)));

    let mut doc = DocumentDb::new("catalogue");
    doc.insert(
        "albums",
        text::parse(r#"{"_id":"d1","title":"Wish","artist":"The Cure","year":1992}"#).unwrap(),
    )
    .unwrap();
    doc.insert(
        "customers",
        text::parse(r#"{"_id":"c1","name":"John Doe","city":"Rome"}"#).unwrap(),
    )
    .unwrap();
    p.register(Arc::new(DocumentConnector::new(doc, LatencyModel::FREE)));

    let mut kv = KvStore::new("discount");
    kv.set("k1:cure:wish", "40%");
    p.register(Arc::new(KvConnector::new(kv, "drop", LatencyModel::FREE)));

    let mut g = GraphDb::new("similar");
    g.add_node("g7", "Album", [("title", Value::str("Wish"))]).unwrap();
    g.add_node("g8", "Album", [("title", Value::str("Disintegration"))]).unwrap();
    g.add_edge("g7", "g8", "SIMILAR").unwrap();
    p.register(Arc::new(GraphConnector::new(g, LatencyModel::FREE)));

    let mut ix = AIndex::new();
    // Example 2's relations.
    ix.insert_identity(
        &k("catalogue.albums.d1"),
        &k("transactions.inventory.a32"),
        Probability::of(0.9),
    );
    ix.insert_identity(
        &k("catalogue.albums.d1"),
        &k("discount.drop.k1:cure:wish"),
        Probability::of(0.8),
    );
    ix.insert_identity(&k("catalogue.albums.d1"), &k("similar.album.g7"), Probability::of(0.95));
    ix.insert_matching(
        &k("transactions.inventory.a32"),
        &k("transactions.sales_details.i1"),
        Probability::of(0.7),
    );
    ix.insert_matching(
        &k("transactions.sales.s8"),
        &k("catalogue.customers.c1"),
        Probability::of(0.75),
    );
    ix.insert_matching(
        &k("transactions.sales.s8"),
        &k("transactions.sales_details.i1"),
        Probability::ONE,
    );
    ix.insert_matching(
        &k("transactions.sales.s8"),
        &k("transactions.sales_details.i4"),
        Probability::ONE,
    );
    assert!(ix.check_consistency().is_none());

    Quepa::new(p, ix)
}

#[test]
fn lucy_augmented_search() {
    // §I: Lucy, who only knows SQL, asks for everything about "Wish".
    let quepa = polyphony();
    let answer = quepa
        .augmented_search("transactions", "SELECT * FROM inventory WHERE name like '%wish%'", 0)
        .unwrap();
    assert_eq!(answer.original.len(), 1);
    assert_eq!(answer.original[0].key(), &k("transactions.inventory.a32"));
    // The augmentation reveals the discount and the catalogue entry, plus
    // everything the consistency condition propagated.
    let keys: Vec<String> = answer.augmented.iter().map(|a| a.object.key().to_string()).collect();
    assert!(keys.contains(&"catalogue.albums.d1".to_string()), "{keys:?}");
    assert!(keys.contains(&"discount.drop.k1:cure:wish".to_string()), "{keys:?}");
    // The discount value really came from the kv store.
    let discount = answer
        .augmented
        .iter()
        .find(|a| a.object.key() == &k("discount.drop.k1:cure:wish"))
        .unwrap();
    assert_eq!(discount.object.value().as_str(), Some("40%"));
    // Ranked by probability.
    assert!(answer.augmented.windows(2).all(|w| w[0].probability >= w[1].probability));
}

#[test]
fn all_augmenters_agree() {
    let quepa = polyphony();
    let mut baseline: Option<Vec<(String, String)>> = None;
    for kind in AugmenterKind::ALL {
        for threads in [1, 4] {
            for batch in [1, 3, 100] {
                quepa.set_config(QuepaConfig {
                    augmenter: kind,
                    batch_size: batch,
                    threads_size: threads,
                    cache_size: 0, // cache off so every strategy hits the stores
                    ..QuepaConfig::default()
                });
                let answer =
                    quepa.augmented_search("transactions", "SELECT * FROM inventory", 1).unwrap();
                let got: Vec<(String, String)> = answer
                    .augmented
                    .iter()
                    .map(|a| (a.object.key().to_string(), a.probability.to_string()))
                    .collect();
                match &baseline {
                    None => baseline = Some(got),
                    Some(b) => {
                        assert_eq!(&got, b, "augmenter {kind} t={threads} b={batch} diverged")
                    }
                }
            }
        }
    }
}

#[test]
fn levels_expand_the_answer() {
    let quepa = polyphony();
    let q = "SELECT * FROM sales WHERE total > 15";
    let l0 = quepa.augmented_search("transactions", q, 0).unwrap();
    let l1 = quepa.augmented_search("transactions", q, 1).unwrap();
    let l2 = quepa.augmented_search("transactions", q, 2).unwrap();
    assert!(l0.augmented.len() <= l1.augmented.len());
    assert!(l1.augmented.len() <= l2.augmented.len());
    // Level 0 from s8 reaches the customer and the sale details.
    let keys0: Vec<String> = l0.augmented.iter().map(|a| a.object.key().to_string()).collect();
    assert!(keys0.contains(&"catalogue.customers.c1".to_string()));
    // Level 1 additionally reaches the inventory item via sales_details.
    let keys1: Vec<String> = l1.augmented.iter().map(|a| a.object.key().to_string()).collect();
    assert!(keys1.contains(&"transactions.inventory.a32".to_string()));
}

#[test]
fn aggregates_are_refused() {
    let quepa = polyphony();
    let err =
        quepa.augmented_search("transactions", "SELECT COUNT(*) FROM inventory", 0).unwrap_err();
    assert!(matches!(err, QuepaError::NotAugmentable { .. }));
    let err = quepa.augmented_search("catalogue", "db.albums.count()", 0).unwrap_err();
    assert!(matches!(err, QuepaError::NotAugmentable { .. }));
}

#[test]
fn projection_is_rewritten_so_keys_survive() {
    let quepa = polyphony();
    // `SELECT name` lacks the pk; the validator rewrites to `SELECT *`.
    let answer = quepa
        .augmented_search("transactions", "SELECT name FROM inventory WHERE name = 'Wish'", 0)
        .unwrap();
    assert_eq!(answer.original.len(), 1);
    assert!(!answer.augmented.is_empty());
}

#[test]
fn every_store_can_be_the_target() {
    let quepa = polyphony();
    // Document store query in its native language.
    let a = quepa
        .augmented_search("catalogue", r#"db.albums.find({"title":{"$like":"%wish%"}})"#, 0)
        .unwrap();
    assert!(a.augmented.iter().any(|x| x.object.key() == &k("transactions.inventory.a32")));
    // Key-value GET.
    let a = quepa.augmented_search("discount", "GET k1:cure:wish", 0).unwrap();
    assert!(a.augmented.iter().any(|x| x.object.key() == &k("catalogue.albums.d1")));
    // Graph pattern.
    let a =
        quepa.augmented_search("similar", "MATCH (n:Album {title: 'Wish'}) RETURN n", 0).unwrap();
    assert!(a.augmented.iter().any(|x| x.object.key() == &k("catalogue.albums.d1")));
}

#[test]
fn exploration_follows_example5() {
    let quepa = polyphony();
    // Example 5: start from the sale, walk to the detail, then onwards.
    let mut session =
        quepa.explore("transactions", "SELECT * FROM sales WHERE total > 15").unwrap();
    assert_eq!(session.results().len(), 1);
    let frontier = session.select(0).unwrap();
    let frontier_keys: Vec<String> = frontier.iter().map(|a| a.object.key().to_string()).collect();
    assert!(frontier_keys.contains(&"transactions.sales_details.i1".to_string()));
    assert!(frontier_keys.contains(&"catalogue.customers.c1".to_string()));
    // Click the sale detail i1.
    let i1_pos = frontier_keys.iter().position(|f| f == "transactions.sales_details.i1").unwrap();
    let frontier = session.step(i1_pos).unwrap();
    let keys: Vec<String> = frontier.iter().map(|a| a.object.key().to_string()).collect();
    assert!(keys.contains(&"transactions.inventory.a32".to_string()), "{keys:?}");
    // Already-visited objects are hidden from the frontier.
    assert!(!keys.contains(&"transactions.sales.s8".to_string()));
    assert_eq!(session.path().len(), 2);
    assert_eq!(session.steps(), 2);
}

#[test]
fn exploration_selection_bounds() {
    let quepa = polyphony();
    let mut session = quepa.explore("transactions", "SELECT * FROM sales").unwrap();
    let err = session.select(99).unwrap_err();
    assert!(matches!(err, QuepaError::BadSelection { index: 99, available: 1 }));
    let err = session.step(0).unwrap_err();
    assert!(matches!(err, QuepaError::BadSelection { .. }), "empty frontier before select");
}

#[test]
fn repeated_exploration_promotes_a_shortcut() {
    let quepa = polyphony();
    let from = k("transactions.sales.s8");
    let to = k("transactions.inventory.a32");
    assert!(quepa.index().edge(&from, &to, quepa_pdm::RelationKind::Matching).is_none());
    // Walk s8 → i1 → a32 repeatedly until promotion fires.
    let mut promoted = false;
    for _ in 0..32 {
        let mut session =
            quepa.explore("transactions", "SELECT * FROM sales WHERE total > 15").unwrap();
        let frontier = session.select(0).unwrap();
        let i1 = frontier
            .iter()
            .position(|a| a.object.key() == &k("transactions.sales_details.i1"))
            .unwrap();
        let frontier = session.step(i1).unwrap();
        let a32 = frontier
            .iter()
            .position(|a| a.object.key() == &k("transactions.inventory.a32"))
            .unwrap();
        session.step(a32).unwrap();
        promoted |= session.finish();
        if promoted {
            break;
        }
    }
    assert!(promoted, "the frequently walked path must promote");
    let edge = quepa
        .index()
        .edge(&from, &to, quepa_pdm::RelationKind::Matching)
        .expect("shortcut edge exists");
    assert!(matches!(edge.origin, quepa_aindex::EdgeOrigin::Promoted));
    // The shortcut now surfaces a32 at level 0 from s8.
    let answer =
        quepa.augmented_search("transactions", "SELECT * FROM sales WHERE total > 15", 0).unwrap();
    assert!(answer.augmented.iter().any(|a| a.object.key() == &to));
}

#[test]
fn lazy_deletion_on_vanished_objects() {
    let quepa = polyphony();
    // Someone deletes the discount behind QUEPA's back.
    quepa.polystore().execute_update("discount", "DEL k1:cure:wish").unwrap();
    let answer = quepa
        .augmented_search("transactions", "SELECT * FROM inventory WHERE name = 'Wish'", 0)
        .unwrap();
    assert_eq!(answer.lazily_deleted, 1);
    assert!(!answer.augmented.iter().any(|a| a.object.key() == &k("discount.drop.k1:cure:wish")));
    // The index forgot the object: the next run reports nothing missing.
    assert!(!quepa.index().contains(&k("discount.drop.k1:cure:wish")));
    let again = quepa
        .augmented_search("transactions", "SELECT * FROM inventory WHERE name = 'Wish'", 0)
        .unwrap();
    assert_eq!(again.lazily_deleted, 0);
}

#[test]
fn cache_serves_repeated_runs() {
    let quepa = polyphony();
    quepa.set_config(QuepaConfig { cache_size: 1024, ..QuepaConfig::default() });
    let cold = quepa.augmented_search("transactions", "SELECT * FROM inventory", 1).unwrap();
    assert_eq!(cold.cache_hits, 0);
    let warm = quepa.augmented_search("transactions", "SELECT * FROM inventory", 1).unwrap();
    assert_eq!(warm.cache_hits, warm.augmented.len(), "fully cache-served");
    quepa.drop_caches();
    let cold_again = quepa.augmented_search("transactions", "SELECT * FROM inventory", 1).unwrap();
    assert_eq!(cold_again.cache_hits, 0);
}

#[test]
fn run_logs_accumulate() {
    let quepa = polyphony();
    quepa.augmented_search("transactions", "SELECT * FROM inventory", 0).unwrap();
    quepa.augmented_search("transactions", "SELECT * FROM sales", 1).unwrap();
    let logs = quepa.take_logs();
    assert_eq!(logs.len(), 2);
    assert_eq!(logs[0].features.result_size, 2);
    assert_eq!(logs[1].features.level, 1);
    assert!(quepa.take_logs().is_empty(), "take drains");
}

#[test]
fn optimizer_hook_is_used() {
    struct Fixed;
    impl quepa_core::Optimizer for Fixed {
        fn choose(&self, _f: &quepa_core::QueryFeatures, current: &QuepaConfig) -> QuepaConfig {
            QuepaConfig { augmenter: AugmenterKind::Sequential, ..*current }
        }
        fn name(&self) -> &'static str {
            "FIXED"
        }
    }
    let quepa = polyphony();
    quepa.set_optimizer(Some(Box::new(Fixed)));
    let answer = quepa.augmented_search("transactions", "SELECT * FROM inventory", 0).unwrap();
    assert_eq!(answer.config_used.augmenter, AugmenterKind::Sequential);
}

#[test]
fn cache_size_moves_by_tenth_of_delta() {
    struct WantsBigCache;
    impl quepa_core::Optimizer for WantsBigCache {
        fn choose(&self, _f: &quepa_core::QueryFeatures, current: &QuepaConfig) -> QuepaConfig {
            QuepaConfig { cache_size: 10_000, ..*current }
        }
        fn name(&self) -> &'static str {
            "BIG"
        }
    }
    let quepa = polyphony();
    quepa.set_config(QuepaConfig { cache_size: 1000, ..QuepaConfig::default() });
    quepa.set_optimizer(Some(Box::new(WantsBigCache)));
    let answer = quepa.augmented_search("transactions", "SELECT * FROM inventory", 0).unwrap();
    // (10000 − 1000) / 10 = 900 → 1900, not 10000.
    assert_eq!(answer.config_used.cache_size, 1900);
    assert_eq!(quepa.config().cache_size, 1900);
}
