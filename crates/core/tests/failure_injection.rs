//! Failure injection: a connector that fails on demand, driven through
//! every augmenter — errors must surface cleanly (no deadlocks, no
//! partial-answer lies), and per-object failures must not poison the
//! others.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use quepa_aindex::AIndex;
use quepa_core::{AugmenterKind, DegradeMode, Quepa, QuepaConfig, QuepaError, ResilienceConfig};
use quepa_kvstore::KvStore;
use quepa_pdm::{CollectionName, DataObject, DatabaseName, GlobalKey, LocalKey, Probability};
use quepa_polystore::{Connector, KvConnector, LatencyModel, PolyError, Polystore, StoreKind};

/// Wraps a connector; every `fail_every`-th key-based lookup errors.
struct FlakyConnector {
    inner: KvConnector,
    calls: AtomicUsize,
    fail_every: usize,
}

impl FlakyConnector {
    fn trip(&self) -> Result<(), PolyError> {
        let n = self.calls.fetch_add(1, Ordering::SeqCst) + 1;
        if self.fail_every > 0 && n.is_multiple_of(self.fail_every) {
            Err(PolyError::Store {
                database: self.inner.database().to_string(),
                message: "injected fault".into(),
            })
        } else {
            Ok(())
        }
    }
}

impl Connector for FlakyConnector {
    fn database(&self) -> &DatabaseName {
        self.inner.database()
    }
    fn kind(&self) -> StoreKind {
        self.inner.kind()
    }
    fn collections(&self) -> Vec<CollectionName> {
        self.inner.collections()
    }
    fn execute(&self, query: &str) -> Result<Vec<DataObject>, PolyError> {
        self.inner.execute(query)
    }
    fn execute_update(&self, statement: &str) -> Result<usize, PolyError> {
        self.inner.execute_update(statement)
    }
    fn get(
        &self,
        collection: &CollectionName,
        key: &LocalKey,
    ) -> Result<Option<DataObject>, PolyError> {
        self.trip()?;
        self.inner.get(collection, key)
    }
    fn multi_get(
        &self,
        collection: &CollectionName,
        keys: &[LocalKey],
    ) -> Result<Vec<DataObject>, PolyError> {
        self.trip()?;
        self.inner.multi_get(collection, keys)
    }
    fn scan_collection(&self, collection: &CollectionName) -> Result<Vec<DataObject>, PolyError> {
        self.inner.scan_collection(collection)
    }
    fn object_count(&self) -> usize {
        self.inner.object_count()
    }
    fn stats(&self) -> quepa_polystore::stats::StatsSnapshot {
        self.inner.stats()
    }
    fn reset_stats(&self) {
        self.inner.reset_stats()
    }
}

/// Two stores: db0 (healthy, the query target) and db1 (flaky, holds the
/// related objects).
fn build(fail_every: usize) -> Quepa {
    let mut kv0 = KvStore::new("db0");
    let mut kv1 = KvStore::new("db1");
    for k in 0..20 {
        kv0.set(format!("k{k}"), "v");
        kv1.set(format!("k{k}"), "w");
    }
    let mut polystore = Polystore::new();
    polystore.register(Arc::new(KvConnector::new(kv0, "c", LatencyModel::FREE)));
    polystore.register(Arc::new(FlakyConnector {
        inner: KvConnector::new(kv1, "c", LatencyModel::FREE),
        calls: AtomicUsize::new(0),
        fail_every,
    }));
    let mut index = AIndex::new();
    let key = |db: usize, k: usize| -> GlobalKey { format!("db{db}.c.k{k}").parse().unwrap() };
    for k in 0..20 {
        index.insert_matching(&key(0, k), &key(1, k), Probability::of(0.8));
    }
    Quepa::new(polystore, index)
}

#[test]
fn healthy_run_is_complete() {
    let quepa = build(0);
    let answer = quepa.augmented_search("db0", "SCAN k COUNT 20", 0).unwrap();
    assert_eq!(answer.augmented.len(), 20);
}

#[test]
fn every_augmenter_surfaces_injected_faults() {
    for aug in AugmenterKind::ALL {
        let quepa = build(5);
        quepa.set_config(QuepaConfig {
            augmenter: aug,
            batch_size: 3,
            threads_size: 4,
            cache_size: 0,
            ..QuepaConfig::default()
        });
        let result = quepa.augmented_search("db0", "SCAN k COUNT 20", 0);
        // 20 lookups with every 5th failing: the run must error, not hang
        // and not silently drop objects.
        match result {
            Err(QuepaError::Polystore(PolyError::Store { message, .. })) => {
                assert!(message.contains("injected fault"), "{aug}: {message}");
            }
            other => panic!("{aug}: expected injected fault, got {other:?}"),
        }
    }
}

#[test]
fn rare_faults_fail_runs_independently() {
    let quepa = build(1000); // effectively never during this test
    for _ in 0..3 {
        let answer = quepa.augmented_search("db0", "SCAN k COUNT 10", 0).unwrap();
        assert_eq!(answer.augmented.len(), 10);
    }
}

#[test]
fn faults_do_not_corrupt_later_runs() {
    let quepa = build(7);
    quepa.set_config(QuepaConfig {
        augmenter: AugmenterKind::Outer,
        threads_size: 4,
        cache_size: 0,
        ..QuepaConfig::default()
    });
    let mut saw_error = false;
    let mut saw_success = false;
    for _ in 0..12 {
        match quepa.augmented_search("db0", "SCAN k COUNT 3", 0) {
            Ok(answer) => {
                saw_success = true;
                assert_eq!(answer.augmented.len(), 3, "successful runs stay complete");
            }
            Err(QuepaError::Polystore(_)) => saw_error = true,
            Err(other) => panic!("unexpected error class: {other:?}"),
        }
    }
    assert!(saw_error, "every 7th lookup fails, some run must hit it");
    assert!(saw_success, "runs between faults recover fully");
}

/// Wraps a connector; any lookup touching `poisoned` fails — a whole
/// `multi_get` batch errors when the poisoned key is *anywhere* in it,
/// modelling one corrupt object sinking a batched round trip.
struct PoisonedBatchConnector {
    inner: KvConnector,
    poisoned: String,
}

impl PoisonedBatchConnector {
    fn fail(&self) -> PolyError {
        PolyError::store(self.inner.database().as_str(), "poisoned object")
    }
}

impl Connector for PoisonedBatchConnector {
    fn database(&self) -> &DatabaseName {
        self.inner.database()
    }
    fn kind(&self) -> StoreKind {
        self.inner.kind()
    }
    fn collections(&self) -> Vec<CollectionName> {
        self.inner.collections()
    }
    fn execute(&self, query: &str) -> Result<Vec<DataObject>, PolyError> {
        self.inner.execute(query)
    }
    fn execute_update(&self, statement: &str) -> Result<usize, PolyError> {
        self.inner.execute_update(statement)
    }
    fn get(
        &self,
        collection: &CollectionName,
        key: &LocalKey,
    ) -> Result<Option<DataObject>, PolyError> {
        if key.as_str() == self.poisoned {
            return Err(self.fail());
        }
        self.inner.get(collection, key)
    }
    fn multi_get(
        &self,
        collection: &CollectionName,
        keys: &[LocalKey],
    ) -> Result<Vec<DataObject>, PolyError> {
        if keys.iter().any(|k| k.as_str() == self.poisoned) {
            return Err(self.fail());
        }
        self.inner.multi_get(collection, keys)
    }
    fn scan_collection(&self, collection: &CollectionName) -> Result<Vec<DataObject>, PolyError> {
        self.inner.scan_collection(collection)
    }
    fn object_count(&self) -> usize {
        self.inner.object_count()
    }
    fn stats(&self) -> quepa_polystore::stats::StatsSnapshot {
        self.inner.stats()
    }
    fn reset_stats(&self) {
        self.inner.reset_stats()
    }
}

/// Like [`build`], but db1 carries one poisoned key instead of periodic
/// faults.
fn build_poisoned(poisoned: &str) -> Quepa {
    let mut kv0 = KvStore::new("db0");
    let mut kv1 = KvStore::new("db1");
    for k in 0..20 {
        kv0.set(format!("k{k}"), "v");
        kv1.set(format!("k{k}"), "w");
    }
    let mut polystore = Polystore::new();
    polystore.register(Arc::new(KvConnector::new(kv0, "c", LatencyModel::FREE)));
    polystore.register(Arc::new(PoisonedBatchConnector {
        inner: KvConnector::new(kv1, "c", LatencyModel::FREE),
        poisoned: poisoned.to_owned(),
    }));
    let mut index = AIndex::new();
    let key = |db: usize, k: usize| -> GlobalKey { format!("db{db}.c.k{k}").parse().unwrap() };
    for k in 0..20 {
        index.insert_matching(&key(0, k), &key(1, k), Probability::of(0.8));
    }
    Quepa::new(polystore, index)
}

/// Satellite pin: a single poisoned object must not poison the rest of
/// its `multi_get` batch. Under partial degradation the batched
/// augmenters fall back to per-key round trips, so exactly the poisoned
/// key degrades to `Unreachable` and its 19 batch-mates all arrive.
#[test]
fn poisoned_object_does_not_poison_its_batch() {
    for aug in AugmenterKind::ALL {
        let quepa = build_poisoned("k7");
        quepa.set_config(QuepaConfig {
            augmenter: aug,
            batch_size: 6, // k7 rides in a batch with healthy neighbours
            threads_size: 4,
            cache_size: 0,
            resilience: ResilienceConfig {
                degrade: DegradeMode::Partial,
                ..ResilienceConfig::default()
            },
            observability: false,
            pushdown: true,
        });
        let answer = quepa.augmented_search("db0", "SCAN k COUNT 20", 0).unwrap();
        assert_eq!(answer.augmented.len(), 19, "{aug}: every healthy batch-mate must arrive");
        assert!(
            answer.augmented.iter().all(|a| a.object.key().key().as_str() != "k7"),
            "{aug}: the poisoned key cannot appear in the answer"
        );
        assert_eq!(answer.missing.len(), 1, "{aug}: {:?}", answer.missing);
        let miss = &answer.missing[0];
        assert_eq!(miss.key.to_string(), "db1.c.k7", "{aug}");
        assert!(!miss.is_not_found(), "{aug}: a failed fetch is Unreachable, not NotFound");
        // An unreachable object is not a deleted one: the index keeps it.
        assert_eq!(answer.lazily_deleted, 0, "{aug}");
        assert!(quepa.index().contains(&"db1.c.k7".parse().unwrap()), "{aug}");
    }
}

/// Under fail-fast (the default), the poisoned batch still sinks the run
/// — partial answers are strictly opt-in.
#[test]
fn poisoned_batch_fails_fast_by_default() {
    for aug in AugmenterKind::ALL {
        let quepa = build_poisoned("k7");
        quepa.set_config(QuepaConfig {
            augmenter: aug,
            batch_size: 6,
            threads_size: 4,
            cache_size: 0,
            ..QuepaConfig::default()
        });
        let result = quepa.augmented_search("db0", "SCAN k COUNT 20", 0);
        assert!(
            matches!(result, Err(QuepaError::Polystore(_))),
            "{aug}: fail-fast must propagate the poisoned batch, got {result:?}"
        );
    }
}

#[test]
fn faults_never_trigger_lazy_deletion() {
    // An errored lookup is not a missing object: the index must keep it.
    let quepa = build(2);
    let _ = quepa.augmented_search("db0", "SCAN k COUNT 20", 0);
    for k in 0..20 {
        let key: GlobalKey = format!("db1.c.k{k}").parse().unwrap();
        assert!(quepa.index().contains(&key), "k{k} evicted by a transient fault");
    }
}
