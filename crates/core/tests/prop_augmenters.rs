//! Property tests: all six augmenters agree — as *sets*, via the answer
//! normal form — with the naive reference model from `quepa-check`, on
//! randomly wired polystores under arbitrary knob settings.
//!
//! The oracle is the reference model itself (`ModelIndex`), fed the same
//! p-relation insertion sequence as the real A' index. Comparing normal
//! forms (sorted by probability, ties by key) instead of raw answer
//! vectors means an augmenter is free to enumerate in any order, but not
//! to change the answer set, a probability bit, or a distance.

use std::sync::Arc;

use proptest::prelude::*;
use quepa_aindex::AIndex;
use quepa_check::ModelIndex;
use quepa_core::{AnswerNormalForm, AugmenterKind, Quepa, QuepaConfig};
use quepa_kvstore::KvStore;
use quepa_pdm::{GlobalKey, Probability};
use quepa_polystore::{KvConnector, LatencyModel, Polystore};

/// Builds a polystore of `stores` kv stores, each holding `keys_per_store`
/// entries, plus the real A' index *and* the reference model, both wired
/// from the same edge list in the same order.
fn build(
    stores: usize,
    keys_per_store: usize,
    edges: &[(u8, u8, u8, u8, f64, bool)],
) -> (Quepa, ModelIndex) {
    let mut polystore = Polystore::new();
    for s in 0..stores {
        let mut kv = KvStore::new(format!("db{s}"));
        for k in 0..keys_per_store {
            kv.set(format!("k{k}"), format!("v{s}-{k}"));
        }
        polystore.register(Arc::new(KvConnector::new(kv, "c", LatencyModel::FREE)));
    }
    let key = |s: u8, k: u8| -> GlobalKey {
        format!("db{}.c.k{}", s as usize % stores, k as usize % keys_per_store).parse().unwrap()
    };
    let mut index = AIndex::new();
    let mut model = ModelIndex::new();
    for &(s1, k1, s2, k2, p, identity) in edges {
        let (a, b) = (key(s1, k1), key(s2, k2));
        let p = Probability::of(p);
        if identity {
            index.insert_identity(&a, &b, p);
            model.insert_identity(&a, &b, p);
        } else {
            index.insert_matching(&a, &b, p);
            model.insert_matching(&a, &b, p);
        }
    }
    (Quepa::new(polystore, index), model)
}

/// The model's predicted normal form for a query whose seeds are
/// `original`. Every generated key exists in some store, so the predicted
/// `missing` set is always empty here.
fn predict(model: &ModelIndex, original: &[GlobalKey], level: usize) -> AnswerNormalForm {
    let augmented =
        model.augment(original, level).into_iter().map(|m| (m.key, m.probability, m.distance));
    AnswerNormalForm::from_parts(augmented, Vec::new())
}

fn arb_edges() -> impl Strategy<Value = Vec<(u8, u8, u8, u8, f64, bool)>> {
    prop::collection::vec((0u8..3, 0u8..8, 0u8..3, 0u8..8, 0.1f64..=1.0, any::<bool>()), 1..30)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The augmenter family is semantics-preserving: every strategy and
    /// knob combination produces exactly the answer set the reference
    /// model predicts — same keys, same probability bits, same distances.
    #[test]
    fn all_augmenters_match_the_reference_model(
        edges in arb_edges(),
        level in 0usize..3,
        batch in 1usize..10,
        threads in 1usize..6,
        size in 1usize..8,
    ) {
        let (quepa, model) = build(3, 8, &edges);
        let query = format!("SCAN k COUNT {size}");
        let mut expected: Option<AnswerNormalForm> = None;
        for aug in AugmenterKind::ALL {
            quepa.set_config(QuepaConfig {
                augmenter: aug,
                batch_size: batch,
                threads_size: threads,
                cache_size: 0,
                ..QuepaConfig::default()
            });
            let answer = quepa.augmented_search("db0", &query, level).unwrap();
            let expected = expected.get_or_insert_with(|| {
                let seeds: Vec<GlobalKey> =
                    answer.original.iter().map(|o| o.key().clone()).collect();
                predict(&model, &seeds, level)
            });
            prop_assert_eq!(&answer.normal_form(), expected, "{} diverged from the model", aug);
        }
    }

    /// The cache never changes the answer, only the cost.
    #[test]
    fn cache_is_transparent(edges in arb_edges(), level in 0usize..3) {
        let (quepa, _) = build(3, 8, &edges);
        let query = "SCAN k COUNT 5";
        quepa.set_config(QuepaConfig { cache_size: 0, ..QuepaConfig::default() });
        let uncached = quepa.augmented_search("db0", query, level).unwrap();
        quepa.set_config(QuepaConfig { cache_size: 10_000, ..QuepaConfig::default() });
        let _prime = quepa.augmented_search("db0", query, level).unwrap();
        let cached = quepa.augmented_search("db0", query, level).unwrap();
        prop_assert!(cached.cache_hits > 0 || cached.augmented.is_empty());
        prop_assert_eq!(uncached.normal_form(), cached.normal_form());
    }

    /// Augmented answers never contain duplicates or seed objects, and are
    /// probability-sorted — whatever the graph shape.
    #[test]
    fn answer_invariants(edges in arb_edges(), level in 0usize..4, size in 1usize..8) {
        let (quepa, _) = build(3, 8, &edges);
        let query = format!("SCAN k COUNT {size}");
        let answer = quepa.augmented_search("db0", &query, level).unwrap();
        let seeds: Vec<_> = answer.original.iter().map(|o| o.key().clone()).collect();
        let mut seen = std::collections::HashSet::new();
        for a in &answer.augmented {
            prop_assert!(!seeds.contains(a.object.key()));
            prop_assert!(seen.insert(a.object.key().clone()), "duplicate in answer");
        }
        prop_assert!(answer
            .augmented
            .windows(2)
            .all(|w| w[0].probability >= w[1].probability));
    }
}
