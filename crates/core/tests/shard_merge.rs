//! Concurrency determinism: the shard-local sinks the concurrent
//! augmenters merge after join must yield an outcome identical to the
//! sequential augmenter's — same objects (key, probability, distance, in
//! the same order) and same missing-key list — across thread counts,
//! batch sizes, cache states, and repeated runs (different thread
//! interleavings).

use std::sync::Arc;

use quepa_aindex::AIndex;
use quepa_core::augmenter::{self, AugmentationOutcome};
use quepa_core::cache::ObjectCache;
use quepa_core::{AugmenterKind, QuepaConfig};
use quepa_kvstore::KvStore;
use quepa_pdm::{GlobalKey, Probability};
use quepa_polystore::{KvConnector, LatencyModel, Polystore};

const STORES: usize = 4;
const KEYS_PER_STORE: usize = 16;

fn key(s: usize, k: usize) -> GlobalKey {
    format!("db{s}.c.k{k}").parse().unwrap()
}

/// A polystore plus an A' index that also references keys the stores do
/// not hold (k16..k19), so every strategy exercises the missing path.
fn build() -> (Polystore, AIndex) {
    let mut polystore = Polystore::new();
    for s in 0..STORES {
        let mut kv = KvStore::new(format!("db{s}"));
        for k in 0..KEYS_PER_STORE {
            kv.set(format!("k{k}"), format!("v{s}-{k}"));
        }
        polystore.register(Arc::new(KvConnector::new(kv, "c", LatencyModel::FREE)));
    }
    let mut index = AIndex::new();
    // A dense deterministic graph: ring within each store, chords across
    // stores, and a few edges into keys the stores never held.
    for s in 0..STORES {
        for k in 0..KEYS_PER_STORE {
            let p = Probability::of(0.2 + 0.8 * ((s * 31 + k * 7) % 13) as f64 / 13.0);
            index.insert_matching(&key(s, k), &key(s, (k + 1) % KEYS_PER_STORE), p);
            let q = Probability::of(0.15 + 0.8 * ((s * 17 + k * 11) % 11) as f64 / 11.0);
            index.insert_matching(&key(s, k), &key((s + 1) % STORES, (k * 3) % KEYS_PER_STORE), q);
        }
    }
    for k in 16..20 {
        // Indexed but absent from the store: lazy-deletion candidates.
        index.insert_matching(&key(0, 0), &key(k % STORES, k), Probability::of(0.5));
        index.insert_matching(
            &key(1, k % KEYS_PER_STORE),
            &key(k % STORES, k + 10),
            Probability::of(0.4),
        );
    }
    (polystore, index)
}

fn run_with(
    polystore: &Polystore,
    plan: &augmenter::AugmentPlan,
    kind: AugmenterKind,
    batch: usize,
    threads: usize,
    warm: bool,
) -> AugmentationOutcome {
    let cache = Arc::new(ObjectCache::new(1024));
    let config = QuepaConfig {
        augmenter: kind,
        batch_size: batch,
        threads_size: threads,
        cache_size: 1024,
        ..QuepaConfig::default()
    };
    if warm {
        augmenter::run_planned(polystore, &cache, plan, &config).unwrap();
    }
    augmenter::run_planned(polystore, &cache, plan, &config).unwrap()
}

fn projected(outcome: &AugmentationOutcome) -> Vec<(String, Probability, usize)> {
    outcome
        .objects
        .iter()
        .map(|a| (a.object.key().to_string(), a.probability, a.distance))
        .collect()
}

#[test]
fn shard_merged_outcome_equals_sequential() {
    let (polystore, index) = build();
    let seeds: Vec<GlobalKey> = (0..KEYS_PER_STORE).map(|k| key(0, k)).collect();

    for level in 0..3 {
        let plan = augmenter::plan(&index, &seeds, level);
        assert!(!plan.augmented.is_empty(), "graph must produce work at level {level}");
        let baseline = run_with(&polystore, &plan, AugmenterKind::Sequential, 4, 1, false);
        assert!(
            !baseline.missing.is_empty(),
            "the phantom keys must surface as missing at level {level}"
        );

        for kind in [
            AugmenterKind::Batch,
            AugmenterKind::Inner,
            AugmenterKind::Outer,
            AugmenterKind::OuterBatch,
            AugmenterKind::OuterInner,
        ] {
            for threads in [2, 3, 8] {
                for batch in [1, 4, 64] {
                    for warm in [false, true] {
                        let got = run_with(&polystore, &plan, kind, batch, threads, warm);
                        assert_eq!(
                            projected(&got),
                            projected(&baseline),
                            "{kind} t={threads} b={batch} warm={warm} level={level}: objects diverged"
                        );
                        assert_eq!(
                            got.missing, baseline.missing,
                            "{kind} t={threads} b={batch} warm={warm} level={level}: missing diverged"
                        );
                    }
                }
            }
        }
    }
}

/// Repeated concurrent runs — different thread interleavings — always
/// merge to the same outcome.
#[test]
fn shard_merge_is_interleaving_independent() {
    let (polystore, index) = build();
    let seeds: Vec<GlobalKey> = (0..KEYS_PER_STORE).map(|k| key(0, k)).collect();
    let plan = augmenter::plan(&index, &seeds, 2);
    let baseline = run_with(&polystore, &plan, AugmenterKind::Sequential, 4, 1, false);

    for kind in [AugmenterKind::Outer, AugmenterKind::OuterBatch, AugmenterKind::OuterInner] {
        for _ in 0..10 {
            let got = run_with(&polystore, &plan, kind, 3, 8, false);
            assert_eq!(projected(&got), projected(&baseline), "{kind}: objects diverged");
            assert_eq!(got.missing, baseline.missing, "{kind}: missing diverged");
        }
    }
}
