//! Chaos suite: every augmenter kind × both simulated deployments under
//! seeded fault plans.
//!
//! The fault layer derives every decision from `(seed, call identity)`,
//! never from wall time or thread arrival order, so a chaos run must be
//! *reproducible*: two fresh systems driven with the same seed produce
//! bit-identical answers, missing lists and connector statistics — even
//! with the concurrent augmenters racing worker threads. With one store
//! down and partial degradation on, the answer must shrink to exactly
//! the reachable keys, the down store's keys landing in `missing` as
//! `Unreachable { database, attempts }`.

use std::sync::Arc;
use std::time::Duration;

use quepa_aindex::AIndex;
use quepa_core::{
    AugmenterKind, DegradeMode, MissingReason, Quepa, QuepaConfig, QuepaError, ResilienceConfig,
};
use quepa_kvstore::KvStore;
use quepa_pdm::{DatabaseName, GlobalKey, Probability};
use quepa_polystore::retry::{BreakerConfig, BreakerState, RetryPolicy};
use quepa_polystore::{
    Deployment, FaultPlan, FaultyConnector, KvConnector, PolyError, Polystore, StatsSnapshot,
};

const STORES: usize = 4;
const KEYS_PER_STORE: usize = 12;

fn key(s: usize, k: usize) -> GlobalKey {
    format!("db{s}.c.k{k}").parse().unwrap()
}

fn db(s: usize) -> DatabaseName {
    DatabaseName::new(format!("db{s}")).unwrap()
}

/// Fast retries so chaos sweeps stay quick: 4 attempts, microsecond
/// backoff, deterministic jitter.
fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 4,
        base_backoff: Duration::from_micros(10),
        max_backoff: Duration::from_micros(80),
        jitter_pct: 50,
        deadline: None,
    }
}

/// Partial degradation, fast retries, breaker off (breaker admission
/// depends on thread interleaving, so the bit-identical tests keep it
/// out of the schedule; its semantics get their own sequential test).
fn partial_resilience() -> ResilienceConfig {
    ResilienceConfig {
        retry: fast_retry(),
        breaker: BreakerConfig { trip_after: 0, cooldown_calls: 8 },
        degrade: DegradeMode::Partial,
    }
}

/// Builds the Polyphony-shaped playground: `STORES` key-value stores, a
/// dense deterministic relation graph, every store except the query
/// target `db0` wrapped in the seeded fault plan.
fn build(plan: &FaultPlan, deployment: Deployment, config: QuepaConfig) -> Quepa {
    let latency = deployment.latency();
    let mut polystore = Polystore::new();
    for s in 0..STORES {
        let mut kv = KvStore::new(format!("db{s}"));
        for k in 0..KEYS_PER_STORE {
            kv.set(format!("k{k}"), format!("v{s}-{k}"));
        }
        polystore.register(Arc::new(KvConnector::new(kv, "c", latency)));
    }
    let plan = Arc::new(plan.clone());
    let polystore = polystore.wrap_connectors(|inner| {
        if inner.database().as_str() == "db0" {
            inner // the query target stays healthy: chaos hits the links
        } else {
            Arc::new(FaultyConnector::new(inner, Arc::clone(&plan), latency))
        }
    });
    let mut index = AIndex::new();
    for s in 0..STORES {
        for k in 0..KEYS_PER_STORE {
            let p = Probability::of(0.2 + 0.8 * ((s * 31 + k * 7) % 13) as f64 / 13.0);
            index.insert_matching(&key(s, k), &key(s, (k + 1) % KEYS_PER_STORE), p);
            let q = Probability::of(0.15 + 0.8 * ((s * 17 + k * 11) % 11) as f64 / 11.0);
            index.insert_matching(&key(s, k), &key((s + 1) % STORES, (k * 3) % KEYS_PER_STORE), q);
        }
    }
    // Keys the stores never held: the not-found (lazy deletion) path must
    // keep working under chaos.
    index.insert_matching(&key(0, 0), &key(1, KEYS_PER_STORE), Probability::of(0.5));
    index.insert_matching(&key(0, 1), &key(2, KEYS_PER_STORE + 1), Probability::of(0.4));
    Quepa::with_config(polystore, index, config)
}

fn config_for(kind: AugmenterKind, resilience: ResilienceConfig) -> QuepaConfig {
    QuepaConfig {
        augmenter: kind,
        batch_size: 5, // awkward boundary: groups split mid-store
        threads_size: 4,
        cache_size: 0, // cold: every key exercises the faulted links
        resilience,
        observability: false,
        pushdown: true,
    }
}

/// The comparable projection of an answer: objects and missing entries,
/// both already deterministically ordered by the engine.
fn fingerprint(answer: &quepa_core::AugmentedAnswer) -> (Vec<(String, String)>, Vec<String>) {
    let objects = answer
        .augmented
        .iter()
        .map(|a| (a.object.key().to_string(), format!("{}@{}", a.probability, a.distance)))
        .collect();
    let missing = answer.missing.iter().map(|m| format!("{:?}", m)).collect();
    (objects, missing)
}

#[test]
fn one_store_down_degrades_to_exact_partial_answer() {
    let plan = FaultPlan::new(42).with_outage("db1");
    for deployment in [Deployment::InProcess, Deployment::Centralized] {
        for kind in AugmenterKind::ALL {
            let quepa = build(&plan, deployment, config_for(kind, partial_resilience()));
            let answer = quepa.augmented_search("db0", "SCAN k COUNT 12", 1).unwrap();

            // Reachable side: no db1 object can appear in the answer.
            assert!(
                answer.augmented.iter().all(|a| a.object.key().database().as_str() != "db1"),
                "{kind}/{}: unreachable store leaked objects",
                deployment.name()
            );
            assert!(!answer.augmented.is_empty(), "healthy stores must still augment");

            // Missing side: exactly the referenced db1 keys, every one
            // Unreachable after the full retry budget; plus the two
            // phantom keys as NotFound.
            let unreachable: Vec<&quepa_core::MissingKey> =
                answer.missing.iter().filter(|m| !m.is_not_found()).collect();
            assert!(!unreachable.is_empty(), "{kind}: db1 keys must surface as missing");
            for m in &unreachable {
                assert_eq!(m.key.database().as_str(), "db1", "{kind}: wrong store in {m:?}");
                assert_eq!(
                    m.reason,
                    MissingReason::Unreachable { database: db(1), attempts: 4 },
                    "{kind}: every outage key burns the full retry budget"
                );
            }
            let not_found = answer.missing.iter().filter(|m| m.is_not_found()).count();
            assert_eq!(not_found, 1, "{kind}: the reachable phantom key stays NotFound");
            // db1's phantom key is indistinguishable from its real keys
            // while the store is down: it must be among the unreachable.
            assert!(
                unreachable.iter().any(|m| m.key.key().as_str() == "k12"),
                "{kind}: db1 phantom key must degrade to Unreachable, not vanish"
            );

            // Lazy deletion must NOT fire for unreachable keys.
            assert_eq!(answer.lazily_deleted, 1, "{kind}: only the NotFound key is deleted");
            for m in &unreachable {
                assert!(
                    quepa.index().contains(&m.key),
                    "{kind}: unreachable key {} evicted from the index",
                    m.key
                );
            }
        }
    }
}

#[test]
fn same_seed_runs_are_bit_identical() {
    // Transient faults + timeouts + spikes, all on: the worst-case
    // schedule. Two fresh systems per (kind, deployment) — identical
    // seeds must replay identically, across thread interleavings.
    let plan = FaultPlan::new(7)
        .with_transient_faults(0.35, 2)
        .with_timeouts(0.10)
        .with_latency_spikes(0.15, Duration::from_micros(40))
        .with_outage("db3");
    for deployment in [Deployment::InProcess, Deployment::Centralized] {
        for kind in AugmenterKind::ALL {
            let run = || {
                let quepa = build(&plan, deployment, config_for(kind, partial_resilience()));
                let answer = quepa.augmented_search("db0", "SCAN k COUNT 12", 1).unwrap();
                let stats: Vec<(DatabaseName, StatsSnapshot)> =
                    quepa.polystore().stats_by_database();
                (fingerprint(&answer), stats)
            };
            let (first_answer, first_stats) = run();
            let (second_answer, second_stats) = run();
            assert_eq!(
                first_answer,
                second_answer,
                "{kind}/{}: same seed, different answer",
                deployment.name()
            );
            assert_eq!(
                first_stats,
                second_stats,
                "{kind}/{}: same seed, different connector statistics",
                deployment.name()
            );
        }
    }
}

#[test]
fn transient_faults_are_ridden_out_by_retries() {
    // Streaks of at most 2 with 4 attempts: every transient fault is
    // recoverable, so the answer must be complete and the retry counters
    // must show the work.
    let plan = FaultPlan::new(11).with_transient_faults(0.5, 2);
    for kind in AugmenterKind::ALL {
        let quepa = build(&plan, Deployment::InProcess, config_for(kind, partial_resilience()));
        let answer = quepa.augmented_search("db0", "SCAN k COUNT 12", 1).unwrap();
        assert!(
            answer.missing.iter().all(|m| m.is_not_found()),
            "{kind}: recoverable faults must not cost keys: {:?}",
            answer.missing
        );
        let stats = quepa.polystore().stats();
        assert!(stats.retries > 0, "{kind}: a 50% fault rate must force retries");
    }
}

#[test]
fn every_kind_and_deployment_survives_full_chaos() {
    // No assertion on the exact answer — only the invariants: terminates
    // (no deadlock), never panics, and every key the plan referenced is
    // accounted for exactly once (object or missing).
    let plan = FaultPlan::new(1234)
        .with_transient_faults(0.4, 3)
        .with_timeouts(0.2)
        .with_latency_spikes(0.2, Duration::from_micros(30))
        .with_outage("db2");
    for deployment in [Deployment::InProcess, Deployment::Centralized] {
        for kind in AugmenterKind::ALL {
            let quepa = build(&plan, deployment, config_for(kind, partial_resilience()));
            let answer = quepa.augmented_search("db0", "SCAN k COUNT 12", 2).unwrap();
            let mut seen: Vec<String> = answer
                .augmented
                .iter()
                .map(|a| a.object.key().to_string())
                .chain(answer.missing.iter().map(|m| m.key.to_string()))
                .collect();
            let total = seen.len();
            seen.sort();
            seen.dedup();
            assert_eq!(seen.len(), total, "{kind}/{}: a key was double-counted", deployment.name());
            assert!(
                answer.augmented.iter().all(|a| a.object.key().database().as_str() != "db2"),
                "{kind}/{}: down store leaked objects",
                deployment.name()
            );
        }
    }
}

#[test]
fn fail_fast_propagates_outage_as_unreachable() {
    let plan = FaultPlan::new(3).with_outage("db1");
    let resilience = ResilienceConfig { degrade: DegradeMode::FailFast, ..partial_resilience() };
    for kind in AugmenterKind::ALL {
        let quepa = build(&plan, Deployment::InProcess, config_for(kind, resilience));
        match quepa.augmented_search("db0", "SCAN k COUNT 12", 1) {
            Err(QuepaError::Polystore(PolyError::Unreachable { database, attempts, .. })) => {
                assert_eq!(database, "db1", "{kind}");
                assert!(attempts >= 1, "{kind}: the error carries the attempts made");
            }
            other => panic!("{kind}: expected Unreachable, got {other:?}"),
        }
    }
}

#[test]
fn breaker_opens_under_outage_and_shortcuts_later_calls() {
    // Sequential augmenter + single thread: breaker transitions are
    // call-ordered and thus deterministic here.
    let plan = FaultPlan::new(9).with_outage("db1");
    let resilience = ResilienceConfig {
        retry: fast_retry(),
        breaker: BreakerConfig { trip_after: 2, cooldown_calls: 1000 },
        degrade: DegradeMode::Partial,
    };
    let mut config = config_for(AugmenterKind::Sequential, resilience);
    config.threads_size = 1;
    let quepa = build(&plan, Deployment::InProcess, config);
    let answer = quepa.augmented_search("db0", "SCAN k COUNT 12", 1).unwrap();

    assert_eq!(quepa.breaker_state(&db(1)), BreakerState::Open, "outage must trip the breaker");
    assert_eq!(quepa.breaker_state(&db(2)), BreakerState::Closed, "healthy stores stay closed");
    let stats = quepa.polystore().stats();
    assert!(stats.breaker_trips >= 1, "the trip must reach the statistics");
    // Once open, calls are rejected without a round trip: attempts == 0.
    assert!(
        answer
            .missing
            .iter()
            .any(|m| m.reason == MissingReason::Unreachable { database: db(1), attempts: 0 }),
        "breaker-rejected keys must report zero attempts: {:?}",
        answer.missing
    );

    // The next run reuses the system-wide breaker: still open, so db1
    // round trips are shortcut entirely.
    let before = quepa.polystore().stats().round_trips;
    let second = quepa.augmented_search("db0", "SCAN k COUNT 12", 1).unwrap();
    assert!(second.missing.iter().any(|m| !m.is_not_found()));
    let after = quepa.polystore().stats().round_trips;
    // db0's query + its own lookups still run; db1 contributes none.
    assert!(after > before, "healthy stores keep working");
    assert!(
        second
            .missing
            .iter()
            .filter(|m| m.key.database().as_str() == "db1")
            .all(|m| m.reason == MissingReason::Unreachable { database: db(1), attempts: 0 }),
        "open breaker must reject without attempting: {:?}",
        second.missing
    );
}

#[test]
fn faultless_plan_matches_unwrapped_baseline() {
    // A seeded plan with no fault classes enabled is a no-op wrapper: the
    // answer must equal the plain system's, bit for bit.
    let plan = FaultPlan::new(99);
    for kind in AugmenterKind::ALL {
        let chaotic = build(&plan, Deployment::InProcess, config_for(kind, partial_resilience()));
        let baseline =
            build(&plan, Deployment::InProcess, config_for(kind, ResilienceConfig::default()));
        let a = chaotic.augmented_search("db0", "SCAN k COUNT 12", 1).unwrap();
        let b = baseline.augmented_search("db0", "SCAN k COUNT 12", 1).unwrap();
        assert_eq!(fingerprint(&a), fingerprint(&b), "{kind}: faultless chaos diverged");
    }
}
