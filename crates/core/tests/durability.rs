//! Durable-mode integration tests: the create → mutate → crash →
//! recover loop at the `Quepa` level, differentially compared against a
//! volatile twin that never crashed. The crate-level recovery property
//! test (`quepa-wal`) pins the index math; these tests pin the *system*
//! wiring — config plumbing, store flush ordering, stale-closure
//! semantics, status accounting.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use quepa_aindex::AIndex;
use quepa_core::{IndexOp, Quepa, QuepaConfig, RecoveryOptions, SyncPolicy};
use quepa_kvstore::KvStore;
use quepa_pdm::{GlobalKey, Probability};
use quepa_polystore::{KvConnector, LatencyModel, Polystore};

fn k(s: &str) -> GlobalKey {
    s.parse().unwrap()
}

/// A per-test scratch directory, removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static SERIAL: AtomicU64 = AtomicU64::new(0);
        let n = SERIAL.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir()
            .join(format!("quepa-core-durability-{tag}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Two stores of a handful of objects each — enough for cross-store
/// p-relations without the weight of the full workload builder.
fn small_polystore() -> Polystore {
    let mut p = Polystore::new();
    for name in ["left", "right"] {
        let mut kv = KvStore::new(name);
        for j in 0..6 {
            kv.set(format!("k{j}"), format!("{name}-value-{j}"));
        }
        p.register(Arc::new(KvConnector::new(kv, "c", LatencyModel::FREE)));
    }
    p
}

/// A seeded batch of logical mutations spanning both stores, including
/// a removal so compaction and neighbour-dirtying both fire.
fn mutation_script() -> Vec<Vec<IndexOp>> {
    let key = |store: &str, j: usize| k(&format!("{store}.c.k{j}"));
    vec![
        vec![
            IndexOp::InsertIdentity {
                a: key("left", 0),
                b: key("right", 0),
                p: Probability::of(0.9),
            },
            IndexOp::InsertIdentity {
                a: key("right", 0),
                b: key("left", 1),
                p: Probability::of(0.8),
            },
        ],
        vec![
            IndexOp::InsertMatching {
                a: key("left", 1),
                b: key("right", 2),
                p: Probability::of(0.7),
            },
            IndexOp::InsertMatching {
                a: key("left", 0),
                b: key("right", 3),
                p: Probability::of(0.6),
            },
        ],
        vec![IndexOp::RemoveObject { key: key("right", 0) }],
        vec![
            IndexOp::InsertPromoted {
                a: key("left", 2),
                b: key("right", 4),
                p: Probability::of(0.55),
            },
            IndexOp::InsertIdentity {
                a: key("left", 2),
                b: key("left", 3),
                p: Probability::of(0.95),
            },
        ],
    ]
}

/// All keys the script mentions — the probe set for differentials.
fn probe_keys() -> Vec<GlobalKey> {
    let mut keys = Vec::new();
    for store in ["left", "right"] {
        for j in 0..6 {
            keys.push(k(&format!("{store}.c.k{j}")));
        }
    }
    keys
}

/// Asserts two indexes answer bit-identically over the probe surface.
fn assert_index_equal(got: &AIndex, want: &AIndex, what: &str) {
    assert_eq!(got.node_count(), want.node_count(), "{what}: node_count");
    let keys = probe_keys();
    for key in &keys {
        assert_eq!(got.contains(key), want.contains(key), "{what}: contains {key}");
        assert_eq!(got.neighbors(key), want.neighbors(key), "{what}: neighbors of {key}");
    }
    for level in 0..4 {
        assert_eq!(
            got.augment(&keys, level),
            want.augment(&keys, level),
            "{what}: augment level {level}"
        );
    }
}

#[test]
fn recovery_is_bit_identical_to_a_never_crashed_twin() {
    let tmp = TempDir::new("roundtrip");
    let config = QuepaConfig::default();

    let durable =
        Quepa::create_durable(small_polystore(), AIndex::new(), config, &tmp.0, SyncPolicy::Always)
            .unwrap();
    let twin = Quepa::with_config(small_polystore(), AIndex::new(), config);
    for batch in mutation_script() {
        durable.apply_mutations(&batch).unwrap();
        twin.apply_mutations(&batch).unwrap();
    }
    let status = durable.durability_status().unwrap();
    assert_eq!(status.records_appended, 7);
    assert!(status.last_lsn >= 1);
    drop(durable);

    let (recovered, report) = Quepa::recover_durable(
        small_polystore(),
        config,
        &tmp.0,
        SyncPolicy::Always,
        &RecoveryOptions::default(),
    )
    .unwrap();
    assert!(!report.torn_tail);
    assert_index_equal(&recovered.index_snapshot(), &twin.index_snapshot(), "first recovery");

    // A second generation of recovery (no writes in between) is stable.
    drop(recovered);
    let (again, _) = Quepa::recover_durable(
        small_polystore(),
        QuepaConfig::default(),
        &tmp.0,
        SyncPolicy::Always,
        &RecoveryOptions::default(),
    )
    .unwrap();
    assert_index_equal(&again.index_snapshot(), &twin.index_snapshot(), "second recovery");
}

#[test]
fn recovery_continues_accepting_mutations() {
    let tmp = TempDir::new("continue");
    let script = mutation_script();
    let (head, tail) = script.split_at(2);

    let durable = Quepa::create_durable(
        small_polystore(),
        AIndex::new(),
        QuepaConfig::default(),
        &tmp.0,
        SyncPolicy::Buffered,
    )
    .unwrap();
    let twin = Quepa::with_config(small_polystore(), AIndex::new(), QuepaConfig::default());
    for batch in head {
        durable.apply_mutations(batch).unwrap();
        twin.apply_mutations(batch).unwrap();
    }
    drop(durable);

    let (recovered, _) = Quepa::recover_durable(
        small_polystore(),
        QuepaConfig::default(),
        &tmp.0,
        SyncPolicy::Buffered,
        &RecoveryOptions::default(),
    )
    .unwrap();
    for batch in tail {
        recovered.apply_mutations(batch).unwrap();
        twin.apply_mutations(batch).unwrap();
    }
    assert_index_equal(&recovered.index_snapshot(), &twin.index_snapshot(), "post-recovery writes");

    drop(recovered);
    let (second, _) = Quepa::recover_durable(
        small_polystore(),
        QuepaConfig::default(),
        &tmp.0,
        SyncPolicy::Buffered,
        &RecoveryOptions::default(),
    )
    .unwrap();
    assert_index_equal(
        &second.index_snapshot(),
        &twin.index_snapshot(),
        "second-generation recovery",
    );
}

#[test]
fn closure_mutations_survive_via_the_next_checkpoint() {
    let tmp = TempDir::new("stale");
    let durable = Quepa::create_durable(
        small_polystore(),
        AIndex::new(),
        QuepaConfig::default(),
        &tmp.0,
        SyncPolicy::Always,
    )
    .unwrap();
    let twin = Quepa::with_config(small_polystore(), AIndex::new(), QuepaConfig::default());
    let script = mutation_script();
    durable.apply_mutations(&script[0]).unwrap();
    twin.apply_mutations(&script[0]).unwrap();

    // A closure mutation bypasses the WAL (promotion-style path) ...
    let promote = |ix: &mut AIndex| {
        ix.insert_promoted(&k("left.c.5"), &k("right.c.5"), Probability::of(0.5));
    };
    durable.update_index(promote);
    twin.update_index(promote);
    // ... and the explicit checkpoint captures it in a full cut.
    let covered = durable.checkpoint_durable().unwrap();
    assert!(covered.is_some());

    // Records computed on top of it land in the WAL as usual.
    durable.apply_mutations(&script[1]).unwrap();
    twin.apply_mutations(&script[1]).unwrap();
    drop(durable);

    let (recovered, report) = Quepa::recover_durable(
        small_polystore(),
        QuepaConfig::default(),
        &tmp.0,
        SyncPolicy::Always,
        &RecoveryOptions::default(),
    )
    .unwrap();
    assert!(report.checkpoints_loaded > 0, "the forced cut must be loaded");
    assert_index_equal(&recovered.index_snapshot(), &twin.index_snapshot(), "stale checkpoint");
}

#[test]
fn unlogged_closure_mutation_is_lost_but_recovery_stays_sound() {
    let tmp = TempDir::new("lost-closure");
    let durable = Quepa::create_durable(
        small_polystore(),
        AIndex::new(),
        QuepaConfig::default(),
        &tmp.0,
        SyncPolicy::Always,
    )
    .unwrap();
    let twin = Quepa::with_config(small_polystore(), AIndex::new(), QuepaConfig::default());
    let script = mutation_script();
    durable.apply_mutations(&script[0]).unwrap();
    twin.apply_mutations(&script[0]).unwrap();
    // Closure mutation, then crash before any checkpoint: the mutation
    // is expected to vanish — the WAL tail replays against the state
    // its records were computed on, so the twin *without* it matches.
    durable.update_index(|ix| {
        ix.insert_promoted(&k("left.c.5"), &k("right.c.5"), Probability::of(0.5));
    });
    drop(durable);

    let (recovered, _) = Quepa::recover_durable(
        small_polystore(),
        QuepaConfig::default(),
        &tmp.0,
        SyncPolicy::Always,
        &RecoveryOptions::default(),
    )
    .unwrap();
    assert_index_equal(&recovered.index_snapshot(), &twin.index_snapshot(), "lost closure");
}

#[test]
fn create_refuses_a_dir_with_existing_state() {
    let tmp = TempDir::new("refuse");
    let first = Quepa::create_durable(
        small_polystore(),
        AIndex::new(),
        QuepaConfig::default(),
        &tmp.0,
        SyncPolicy::Always,
    )
    .unwrap();
    drop(first);
    let err = Quepa::create_durable(
        small_polystore(),
        AIndex::new(),
        QuepaConfig::default(),
        &tmp.0,
        SyncPolicy::Always,
    )
    .expect_err("second create must refuse");
    assert!(err.to_string().contains("already holds durable state"), "got: {err}");
}

#[test]
fn volatile_instances_share_the_mutation_path() {
    let quepa = Quepa::with_config(small_polystore(), AIndex::new(), QuepaConfig::default());
    assert!(!quepa.is_durable());
    assert!(quepa.durability_status().is_none());
    assert_eq!(quepa.checkpoint_durable().unwrap(), None);
    for batch in mutation_script() {
        assert_eq!(quepa.apply_mutations(&batch).unwrap(), 0);
    }
    let direct = {
        let mut ix = AIndex::new();
        for batch in mutation_script() {
            for op in &batch {
                op.apply(&mut ix);
            }
        }
        ix
    };
    assert_index_equal(&quepa.index_snapshot(), &direct, "volatile apply");
}

#[test]
fn skip_wal_tail_injection_visibly_diverges() {
    let tmp = TempDir::new("inject");
    let durable = Quepa::create_durable(
        small_polystore(),
        AIndex::new(),
        QuepaConfig::default(),
        &tmp.0,
        SyncPolicy::Always,
    )
    .unwrap();
    let twin = Quepa::with_config(small_polystore(), AIndex::new(), QuepaConfig::default());
    for batch in mutation_script() {
        durable.apply_mutations(&batch).unwrap();
        twin.apply_mutations(&batch).unwrap();
    }
    let tail_len = durable.durability_status().unwrap().records_appended as usize;
    drop(durable);

    // Dropping the whole replayable tail must lose state: the recovered
    // node set shrinks versus the twin (the fault-injection hook works,
    // which is what the crash harness's self-test relies on).
    let (lossy, report) = Quepa::recover_durable(
        small_polystore(),
        QuepaConfig::default(),
        &tmp.0,
        SyncPolicy::Always,
        &RecoveryOptions { skip_wal_tail: tail_len },
    )
    .unwrap();
    assert_eq!(report.replayed, 0, "everything after the initial cut was skipped");
    assert!(
        lossy.index_snapshot().node_count() < twin.index_snapshot().node_count(),
        "skipping the WAL tail must visibly lose state"
    );
}
