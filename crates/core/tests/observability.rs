//! Observability integration suite: the determinism contract end to end.
//!
//! The metrics layer records only *simulated* durations — closed-form
//! latency-model costs and closed-form retry backoffs — never wall time.
//! So two fresh systems driven by the same seed must produce bit-identical
//! [`MetricsSnapshot`]s even with the concurrent augmenters racing worker
//! threads, and even under a seeded fault plan. CI runs this suite twice
//! with different `--test-threads` values to pin scheduling independence.

use std::sync::Arc;
use std::time::Duration;

use quepa_aindex::AIndex;
use quepa_core::{
    AugmenterKind, DegradeMode, MetricsSnapshot, Quepa, QuepaConfig, ResilienceConfig,
};
use quepa_kvstore::KvStore;
use quepa_obs::{prometheus_text, Stage};
use quepa_pdm::{GlobalKey, Probability};
use quepa_polystore::retry::{BreakerConfig, RetryPolicy};
use quepa_polystore::{Deployment, FaultPlan, FaultyConnector, KvConnector, Polystore};

const STORES: usize = 3;
const KEYS_PER_STORE: usize = 10;

fn key(s: usize, k: usize) -> GlobalKey {
    format!("db{s}.c.k{k}").parse().unwrap()
}

fn fast_partial_resilience() -> ResilienceConfig {
    ResilienceConfig {
        retry: RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_micros(5),
            max_backoff: Duration::from_micros(40),
            jitter_pct: 50,
            deadline: None,
        },
        breaker: BreakerConfig { trip_after: 0, cooldown_calls: 8 },
        degrade: DegradeMode::Partial,
    }
}

/// A small multi-store playground; `plan` (if any) wraps every store but
/// the query target `db0` in seeded faults.
fn build(plan: Option<&FaultPlan>, config: QuepaConfig) -> Quepa {
    let latency = Deployment::Centralized.latency();
    let mut polystore = Polystore::new();
    for s in 0..STORES {
        let mut kv = KvStore::new(format!("db{s}"));
        for k in 0..KEYS_PER_STORE {
            kv.set(format!("k{k}"), format!("v{s}-{k}"));
        }
        polystore.register(Arc::new(KvConnector::new(kv, "c", latency)));
    }
    let polystore = match plan {
        Some(plan) => {
            let plan = Arc::new(plan.clone());
            polystore.wrap_connectors(|inner| {
                if inner.database().as_str() == "db0" {
                    inner
                } else {
                    Arc::new(FaultyConnector::new(inner, Arc::clone(&plan), latency))
                }
            })
        }
        None => polystore,
    };
    let mut index = AIndex::new();
    for s in 0..STORES {
        for k in 0..KEYS_PER_STORE {
            let p = Probability::of(0.2 + 0.8 * ((s * 31 + k * 7) % 13) as f64 / 13.0);
            index.insert_matching(&key(s, k), &key(s, (k + 1) % KEYS_PER_STORE), p);
            let q = Probability::of(0.15 + 0.8 * ((s * 17 + k * 11) % 11) as f64 / 11.0);
            index.insert_matching(&key(s, k), &key((s + 1) % STORES, (k * 3) % KEYS_PER_STORE), q);
        }
    }
    Quepa::with_config(polystore, index, config)
}

fn observed_config(kind: AugmenterKind, resilience: ResilienceConfig) -> QuepaConfig {
    QuepaConfig {
        augmenter: kind,
        batch_size: 4,
        threads_size: 4,
        cache_size: 64,
        resilience,
        observability: true,
        pushdown: true,
    }
}

/// Drives one system through a fixed workload and returns its snapshot.
fn run_workload(quepa: &Quepa) -> MetricsSnapshot {
    for _ in 0..2 {
        quepa.augmented_search("db0", "SCAN k COUNT 10", 1).unwrap();
    }
    quepa.augmented_search("db0", "SCAN k COUNT 6", 2).unwrap();
    quepa.metrics_snapshot()
}

#[test]
fn same_seed_runs_produce_identical_snapshots() {
    for kind in AugmenterKind::ALL {
        let config = observed_config(kind, ResilienceConfig::default());
        let a = run_workload(&build(None, config));
        let b = run_workload(&build(None, config));
        assert_eq!(a, b, "snapshot diverged across same-seed runs for {kind}");
        assert!(!a.is_empty(), "observed workload must record something for {kind}");
    }
}

#[test]
fn same_seed_chaos_runs_produce_identical_snapshots() {
    let plan = FaultPlan::new(42)
        .with_transient_faults(0.3, 2)
        .with_latency_spikes(0.2, Duration::from_millis(2));
    for kind in [AugmenterKind::Sequential, AugmenterKind::OuterBatch, AugmenterKind::OuterInner] {
        let config = observed_config(kind, fast_partial_resilience());
        let a = run_workload(&build(Some(&plan), config));
        let b = run_workload(&build(Some(&plan), config));
        assert_eq!(a, b, "chaos snapshot diverged across same-seed runs for {kind}");
    }
}

#[test]
fn disabled_observability_yields_empty_snapshot() {
    let config = QuepaConfig::default();
    assert!(!config.observability, "observability must be opt-in");
    let quepa = build(None, config);
    let snapshot = run_workload(&quepa);
    assert!(snapshot.is_empty(), "disabled observability must record nothing: {snapshot:?}");
}

#[test]
fn observed_run_covers_every_stage() {
    let plan = FaultPlan::new(7).with_transient_faults(0.4, 2);
    let config = observed_config(AugmenterKind::OuterBatch, fast_partial_resilience());
    let quepa = build(Some(&plan), config);
    let snapshot = run_workload(&quepa);

    let stage = |s: Stage| &snapshot.stages[s.index()];
    assert!(stage(Stage::Plan).spans > 0, "plan spans: {snapshot:?}");
    assert!(stage(Stage::Plan).items > 0, "plan items (augmented keys)");
    assert!(stage(Stage::Fetch).sim_latency.count > 0, "fetch link events");
    assert!(stage(Stage::Retry).sim_latency.count > 0, "re-attempt link events under faults");
    assert!(stage(Stage::Merge).spans > 0, "merge spans");
    assert!(snapshot.cache.hits + snapshot.cache.misses > 0, "cache probes");

    // Per-store recorders: the healthy target plus the faulted links.
    assert!(snapshot.stores.len() >= 2, "stores seen: {:?}", snapshot.stores.keys());
    let faulted = snapshot.stores.get("db1").expect("db1 recorded");
    assert!(faulted.faults > 0, "seeded transient faults must be counted");
    assert!(faulted.backoff.count > 0, "backoff pauses recorded");
    // The resilience counters folded in from the connector statistics.
    assert!(faulted.retries > 0, "retries folded from connector stats");
    let healthy = snapshot.stores.get("db0").expect("query target recorded");
    assert!(healthy.sim_latency.count > 0, "original query round trips");
    assert_eq!(healthy.faults, 0, "db0 stays healthy");
}

#[test]
fn set_config_toggles_recording() {
    let quepa = build(None, QuepaConfig::default());
    quepa.augmented_search("db0", "SCAN k COUNT 5", 1).unwrap();
    assert!(quepa.metrics_snapshot().is_empty());

    let mut on = quepa.config();
    on.observability = true;
    quepa.set_config(on);
    quepa.augmented_search("db0", "SCAN k COUNT 5", 1).unwrap();
    let recorded = quepa.metrics_snapshot();
    assert!(!recorded.is_empty(), "enabling via set_config must start recording");

    let mut off = quepa.config();
    off.observability = false;
    quepa.set_config(off);
    let before = quepa.metrics_snapshot();
    quepa.augmented_search("db0", "SCAN k COUNT 5", 1).unwrap();
    assert_eq!(quepa.metrics_snapshot(), before, "disabling must stop recording");
}

#[test]
fn snapshots_merge_across_instances() {
    let config = observed_config(AugmenterKind::Batch, ResilienceConfig::default());
    let a = run_workload(&build(None, config));
    let b = run_workload(&build(None, config));
    let merged = a.clone().merge(b.clone());
    assert_eq!(merged.total_sim_nanos(), a.total_sim_nanos() + b.total_sim_nanos());
    assert_eq!(merged.cache.hits, a.cache.hits + b.cache.hits);
}

#[test]
fn prometheus_export_covers_the_run() {
    let plan = FaultPlan::new(11).with_transient_faults(0.5, 2);
    let config = observed_config(AugmenterKind::OuterBatch, fast_partial_resilience());
    let quepa = build(Some(&plan), config);
    let snapshot = run_workload(&quepa);
    let text = prometheus_text(&snapshot);
    for series in [
        "quepa_store_sim_latency_nanos_bucket",
        "quepa_store_retries_total",
        "quepa_store_faults_total",
        "quepa_stage_sim_latency_nanos_bucket",
        "quepa_stage_spans_total",
        "quepa_cache_hits_total",
        "le=\"+Inf\"",
        "store=\"db1\"",
        "stage=\"plan\"",
    ] {
        assert!(text.contains(series), "missing {series} in:\n{text}");
    }
    let json = quepa_obs::json(&snapshot);
    assert!(json.contains("\"stores\"") && json.contains("\"db1\""), "{json}");
}

#[test]
fn trace_ring_captures_spans_without_affecting_snapshots() {
    let config = observed_config(AugmenterKind::Sequential, ResilienceConfig::default());
    let quepa = build(None, config);
    quepa.augmented_search("db0", "SCAN k COUNT 5", 1).unwrap();
    let snapshot = quepa.metrics_snapshot();
    let trace = quepa.metrics().take_trace();
    assert!(trace.iter().any(|e| e.stage == Stage::Plan), "plan span traced");
    assert!(trace.iter().any(|e| e.stage == Stage::Merge), "merge span traced");
    // Draining the wall-clock trace must not perturb the deterministic
    // numeric snapshot.
    assert_eq!(quepa.metrics_snapshot(), snapshot);
}
