//! The augmentation execution engine: one semantic result, six execution
//! strategies (paper §IV).
//!
//! Every augmenter computes the *same* augmented answer — the level-*n*
//! neighbourhood of the seeds in the A' index, retrieved from the
//! polystore and ranked by probability — but distributes the key-based
//! retrieval differently over round trips (batching) and threads
//! (concurrency). The LRU cache sits in front of every lookup, and keys
//! whose objects have vanished from the polystore are reported back as
//! `missing` (the lazy-deletion signal of §III-C).
//!
//! Hot-path structure: the A' index is traversed **once** per query
//! ([`plan`] calls `AIndex::augment_multi`, which yields the canonical
//! neighbourhood and the per-seed work partition together), and every
//! worker thread accumulates into its own [`Sink`] shard that is merged
//! after join — workers never share a lock. The final sort by
//! (probability desc, key asc) makes the outcome independent of worker
//! interleaving and shard merge order.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use quepa_aindex::{AIndex, AugmentedKey};
use quepa_obs::{MetricsRegistry, Stage};
use quepa_pdm::{CollectionName, DataObject, DatabaseName, GlobalKey, LocalKey, Probability};
use quepa_polystore::retry::{BreakerSet, CircuitBreaker};
use quepa_polystore::{PolyError, Polystore};

use crate::cache::ObjectCache;
use crate::config::{AugmenterKind, DegradeMode, QuepaConfig, ResilienceConfig};
use crate::error::Result;

/// One element of an augmented answer.
#[derive(Debug, Clone, PartialEq)]
pub struct AugmentedObject {
    /// The related object, fetched from its home store.
    pub object: DataObject,
    /// The probability that it relates to the original answer (best path
    /// product over the A' index).
    pub probability: Probability,
    /// Hop distance of the best path.
    pub distance: usize,
}

/// Why a key the A' index pointed at is absent from the augmentation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum MissingReason {
    /// The store answered and the object is gone — the lazy-deletion
    /// signal of §III-C: the key leaves the index and the cache.
    NotFound,
    /// The store could not be reached: every allowed attempt failed (or
    /// the circuit breaker rejected the call, in which case `attempts`
    /// is 0). The object may well still exist — the index keeps it.
    Unreachable {
        /// The database that failed to answer.
        database: DatabaseName,
        /// Round-trip attempts made before giving up.
        attempts: u32,
    },
}

/// One key missing from an augmented answer, with the reason.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MissingKey {
    /// The key the A' index pointed at.
    pub key: GlobalKey,
    /// Why it is not in the answer.
    pub reason: MissingReason,
}

impl MissingKey {
    /// A key whose object vanished from its store.
    pub fn not_found(key: GlobalKey) -> Self {
        MissingKey { key, reason: MissingReason::NotFound }
    }

    /// A key whose store could not be reached.
    pub fn unreachable(key: GlobalKey, database: DatabaseName, attempts: u32) -> Self {
        MissingKey { key, reason: MissingReason::Unreachable { database, attempts } }
    }

    /// True for the lazy-deletion case.
    pub fn is_not_found(&self) -> bool {
        self.reason == MissingReason::NotFound
    }
}

/// The result of executing an augmentation.
#[derive(Debug, Clone, Default)]
pub struct AugmentationOutcome {
    /// Related objects, ordered by decreasing probability (ties broken by
    /// key for determinism).
    pub objects: Vec<AugmentedObject>,
    /// Keys the A' index knows but this run could not retrieve: gone from
    /// the store ([`MissingReason::NotFound`], the lazy-deletion signal)
    /// or behind an unreachable store
    /// ([`MissingReason::Unreachable`], a partial-answer degradation).
    pub missing: Vec<MissingKey>,
    /// How many lookups the cache answered.
    pub cache_hits: usize,
}

/// A unit of retrieval work.
#[derive(Debug, Clone)]
struct Task {
    key: GlobalKey,
    probability: Probability,
    distance: usize,
}

/// The index-side answer to an augmentation, computed in one traversal:
/// the canonical neighbourhood plus the first-reaching-seed work
/// partition the outer strategies distribute over threads.
#[derive(Debug, Clone)]
pub struct AugmentPlan {
    /// The canonical augmented keys, identical to
    /// `AIndex::augment(seeds, level)` over the same seeds.
    pub augmented: Vec<AugmentedKey>,
    /// Per `augmented` entry, the index of its owning seed.
    ownership: Vec<u32>,
    /// Length of the seed slice the plan was computed for.
    seed_count: usize,
}

/// Traverses the A' index once, producing the retrieval plan for `seeds`.
pub fn plan(index: &AIndex, seed_keys: &[GlobalKey], level: usize) -> AugmentPlan {
    let (augmented, ownership) = index.augment_multi(seed_keys, level);
    AugmentPlan { augmented, ownership, seed_count: seed_keys.len() }
}

/// Executes the augmentation of `seeds` at `level` using the strategy in
/// `config`.
pub fn run(
    polystore: &Polystore,
    index: &AIndex,
    cache: &ObjectCache,
    seeds: &[DataObject],
    level: usize,
    config: &QuepaConfig,
) -> Result<AugmentationOutcome> {
    let seed_keys: Vec<GlobalKey> = seeds.iter().map(|o| o.key().clone()).collect();
    let plan = plan(index, &seed_keys, level);
    run_planned(polystore, cache, &plan, config)
}

/// Executes a previously computed [`AugmentPlan`] — callers that already
/// traversed the index (e.g. for feature extraction) retrieve without a
/// second traversal. Circuit-breaker state lives only for this run; use
/// [`run_planned_with`] to share breakers across runs (as [`Quepa`]
/// does).
///
/// [`Quepa`]: crate::system::Quepa
pub fn run_planned(
    polystore: &Polystore,
    cache: &ObjectCache,
    plan: &AugmentPlan,
    config: &QuepaConfig,
) -> Result<AugmentationOutcome> {
    let breakers = BreakerSet::new(config.resilience.breaker);
    run_planned_with(polystore, cache, plan, config, &breakers, None)
}

/// Executes a previously computed [`AugmentPlan`] with an externally
/// owned [`BreakerSet`], so breaker state (closed → open → half-open)
/// persists across augmentation runs, and an optional metrics registry:
/// when one is passed (and enabled), every worker thread reports its
/// round trips, cache probes and retries under the observation stages.
pub fn run_planned_with(
    polystore: &Polystore,
    cache: &ObjectCache,
    plan: &AugmentPlan,
    config: &QuepaConfig,
    breakers: &BreakerSet,
    obs: Option<&Arc<MetricsRegistry>>,
) -> Result<AugmentationOutcome> {
    let config = config.sanitized();

    // Work partition for the outer/inner strategies: each target key is
    // owned by the first seed that reaches it (the paper's augmenters
    // iterate the original answer and skip already-retrieved objects).
    let mut owned: Vec<Vec<Task>> = vec![Vec::new(); plan.seed_count];
    for (a, &owner) in plan.augmented.iter().zip(&plan.ownership) {
        owned[owner as usize].push(Task {
            key: a.key.clone(),
            probability: a.probability,
            distance: a.distance,
        });
    }

    let engine = Engine { polystore, cache, resilience: config.resilience, breakers, obs };
    // The calling thread fetches too (sequential/batch run here, and
    // outer-batch fills groups here): observe it like any worker.
    let _ctx = engine.observe_fetch();
    let sink = match config.augmenter {
        AugmenterKind::Sequential => engine.sequential(&owned)?,
        AugmenterKind::Batch => engine.batch(&owned, config.batch_size)?,
        AugmenterKind::Inner => engine.inner(&owned, config.threads_size)?,
        AugmenterKind::Outer => engine.outer(&owned, config.threads_size)?,
        AugmenterKind::OuterBatch => {
            engine.outer_batch(&owned, config.batch_size, config.threads_size)?
        }
        AugmenterKind::OuterInner => engine.outer_inner(&owned, config.threads_size)?,
    };

    let mut outcome = AugmentationOutcome {
        objects: sink.objects,
        missing: sink.missing,
        cache_hits: sink.cache_hits,
    };
    {
        let mut span = obs.map(|r| quepa_obs::span_on(r, Stage::Merge, config.augmenter.name()));
        if let Some(s) = span.as_mut() {
            s.add_items(outcome.objects.len() as u64);
        }
        outcome.objects.sort_by(|a, b| {
            b.probability.cmp(&a.probability).then_with(|| a.object.key().cmp(b.object.key()))
        });
        outcome.missing.sort();
    }
    Ok(outcome)
}

/// A shard of the result, private to one worker until merged.
#[derive(Debug, Default)]
struct Sink {
    objects: Vec<AugmentedObject>,
    missing: Vec<MissingKey>,
    cache_hits: usize,
}

impl Sink {
    fn merge(&mut self, mut other: Sink) {
        self.objects.append(&mut other.objects);
        self.missing.append(&mut other.missing);
        self.cache_hits += other.cache_hits;
    }
}

/// Merges worker shards in spawn order, surfacing the first worker error.
fn merge_shards(results: Vec<Result<Sink>>, into: &mut Sink) -> Result<()> {
    for result in results {
        into.merge(result?);
    }
    Ok(())
}

struct Engine<'a> {
    polystore: &'a Polystore,
    cache: &'a ObjectCache,
    resilience: ResilienceConfig,
    breakers: &'a BreakerSet,
    obs: Option<&'a Arc<MetricsRegistry>>,
}

/// Maps a fetch error to the structured reason it would leave in the
/// `missing` list — `None` for errors that must always propagate
/// (unknown database/collection, wrong store kind: configuration
/// mistakes, not outages).
fn unreachable_reason(error: &PolyError) -> Option<MissingReason> {
    match error {
        PolyError::Unreachable { database, attempts, .. } => {
            let database = DatabaseName::new(database).ok()?;
            Some(MissingReason::Unreachable { database, attempts: *attempts })
        }
        PolyError::Store { database, .. }
        | PolyError::Timeout { database }
        | PolyError::Unavailable { database } => {
            let database = DatabaseName::new(database).ok()?;
            Some(MissingReason::Unreachable { database, attempts: 1 })
        }
        _ => None,
    }
}

impl Engine<'_> {
    /// Installs the Fetch-stage observation context on the current
    /// thread; every worker calls this so its round trips, cache probes
    /// and retries report to the engine's registry. `None` (and disabled
    /// registries) cost nothing.
    fn observe_fetch(&self) -> Option<quepa_obs::ContextGuard> {
        self.obs.map(|r| quepa_obs::observe(r, Stage::Fetch))
    }

    /// The breaker guarding `database`, when breakers are enabled.
    fn breaker(&self, database: &DatabaseName) -> Option<Arc<CircuitBreaker>> {
        if self.resilience.breaker.is_disabled() {
            return None;
        }
        self.breakers.breaker(database)
    }

    /// Handles a failed fetch: under [`DegradeMode::Partial`] the task's
    /// key degrades into the `missing` list with a structured reason;
    /// under fail-fast (or for non-outage errors) the error propagates.
    fn degrade_or_fail(&self, task: &Task, error: PolyError, sink: &mut Sink) -> Result<()> {
        if self.resilience.degrade == DegradeMode::Partial {
            if let Some(reason) = unreachable_reason(&error) {
                sink.missing.push(MissingKey { key: task.key.clone(), reason });
                return Ok(());
            }
        }
        Err(error.into())
    }

    /// Fetches one task into `sink`: cache, then a direct-access query.
    fn fetch_one(&self, task: &Task, sink: &mut Sink) -> Result<()> {
        let cached = self.cache.get(&task.key);
        quepa_obs::record_cache_probe(cached.is_some());
        if let Some(object) = cached {
            sink.cache_hits += 1;
            sink.objects.push(AugmentedObject {
                object,
                probability: task.probability,
                distance: task.distance,
            });
            return Ok(());
        }
        self.fetch_one_uncached(task, sink)
    }

    /// The store round trip of [`fetch_one`](Engine::fetch_one), after
    /// the cache has missed — also the per-key fallback a failed batch
    /// degrades to.
    fn fetch_one_uncached(&self, task: &Task, sink: &mut Sink) -> Result<()> {
        let result = if self.resilience.is_trivial() {
            self.polystore.get(&task.key)
        } else {
            let breaker = self.breaker(task.key.database());
            self.polystore.get_resilient(&task.key, &self.resilience.retry, breaker.as_deref())
        };
        match result {
            Ok(Some(object)) => {
                self.cache.insert(object.clone());
                sink.objects.push(AugmentedObject {
                    object,
                    probability: task.probability,
                    distance: task.distance,
                });
                Ok(())
            }
            Ok(None) => {
                sink.missing.push(MissingKey::not_found(task.key.clone()));
                Ok(())
            }
            Err(error) => self.degrade_or_fail(task, error, sink),
        }
    }

    /// Fetches a group of tasks that share a (database, collection) in one
    /// round trip, cache first.
    fn fetch_group(&self, group: &[Task], sink: &mut Sink) -> Result<()> {
        debug_assert!(!group.is_empty());
        let mut to_fetch: Vec<&Task> = Vec::with_capacity(group.len());
        for task in group {
            let cached = self.cache.get(&task.key);
            quepa_obs::record_cache_probe(cached.is_some());
            match cached {
                Some(object) => {
                    sink.cache_hits += 1;
                    sink.objects.push(AugmentedObject {
                        object,
                        probability: task.probability,
                        distance: task.distance,
                    });
                }
                None => to_fetch.push(task),
            }
        }
        if to_fetch.is_empty() {
            return Ok(());
        }
        let database: &DatabaseName = to_fetch[0].key.database();
        let collection: &CollectionName = to_fetch[0].key.collection();
        let keys: Vec<LocalKey> = to_fetch.iter().map(|t| t.key.key().clone()).collect();
        let fetched = if self.resilience.is_trivial() {
            self.polystore.multi_get(database, collection, &keys)
        } else {
            let breaker = self.breaker(database);
            self.polystore.multi_get_resilient(
                database,
                collection,
                &keys,
                &self.resilience.retry,
                breaker.as_deref(),
            )
        };
        let fetched = match fetched {
            Ok(fetched) => fetched,
            Err(error)
                if self.resilience.degrade == DegradeMode::Partial
                    && unreachable_reason(&error).is_some() =>
            {
                // A failed batch must not poison its healthy members:
                // degrade to per-key round trips so only the keys that
                // are truly unreachable land in `missing`.
                for task in &to_fetch {
                    self.fetch_one_uncached(task, sink)?;
                }
                return Ok(());
            }
            Err(error) => return Err(error.into()),
        };
        // Move each fetched object straight into the sink (the cache takes
        // the one clone); tasks whose key came back empty are missing.
        let mut wanted: HashMap<&GlobalKey, &Task> =
            to_fetch.iter().map(|t| (&t.key, *t)).collect();
        for object in fetched {
            let Some(task) = wanted.remove(object.key()) else { continue };
            self.cache.insert(object.clone());
            sink.objects.push(AugmentedObject {
                object,
                probability: task.probability,
                distance: task.distance,
            });
        }
        // Preserve the historical missing order: to_fetch order, not map
        // order.
        for task in &to_fetch {
            if wanted.contains_key(&task.key) {
                sink.missing.push(MissingKey::not_found(task.key.clone()));
            }
        }
        Ok(())
    }

    // -- strategies ---------------------------------------------------------

    fn sequential(&self, owned: &[Vec<Task>]) -> Result<Sink> {
        let mut sink = Sink::default();
        for tasks in owned {
            for task in tasks {
                self.fetch_one(task, &mut sink)?;
            }
        }
        Ok(sink)
    }

    fn batch(&self, owned: &[Vec<Task>], batch_size: usize) -> Result<Sink> {
        let mut sink = Sink::default();
        // Group round trips by target (database, collection) across *all*
        // seeds, emitting a trip whenever a group fills (Fig. 7(b)).
        let mut groups: HashMap<(DatabaseName, CollectionName), Vec<Task>> = HashMap::new();
        for task in owned.iter().flatten() {
            let slot = (task.key.database().clone(), task.key.collection().clone());
            let group = groups.entry(slot).or_default();
            group.push(task.clone());
            if group.len() >= batch_size {
                let full = std::mem::take(group);
                self.fetch_group(&full, &mut sink)?;
            }
        }
        // Flush partial groups in deterministic order.
        let mut rest: Vec<_> = groups.into_iter().filter(|(_, g)| !g.is_empty()).collect();
        rest.sort_by(|a, b| a.0.cmp(&b.0));
        for (_, group) in rest {
            self.fetch_group(&group, &mut sink)?;
        }
        Ok(sink)
    }

    /// Inner concurrency: seeds in sequence, each seed's tasks spread over
    /// up to `threads` workers.
    fn inner(&self, owned: &[Vec<Task>], threads: usize) -> Result<Sink> {
        let mut sink = Sink::default();
        for tasks in owned {
            if tasks.is_empty() {
                continue;
            }
            self.parallel_each(tasks, threads, &mut sink)?;
        }
        Ok(sink)
    }

    /// Outer concurrency: a pool of `threads` workers, each taking whole
    /// seeds and fetching their tasks sequentially into its own shard.
    fn outer(&self, owned: &[Vec<Task>], threads: usize) -> Result<Sink> {
        let next = AtomicUsize::new(0);
        let results = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads.min(owned.len().max(1)))
                .map(|_| {
                    scope.spawn(|_| {
                        let _ctx = self.observe_fetch();
                        let mut local = Sink::default();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= owned.len() {
                                return Ok(local);
                            }
                            for task in &owned[i] {
                                self.fetch_one(task, &mut local)?;
                            }
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("augmentation worker panicked"))
                .collect::<Vec<Result<Sink>>>()
        })
        .expect("augmentation worker panicked");
        let mut sink = Sink::default();
        merge_shards(results, &mut sink)?;
        Ok(sink)
    }

    /// Outer-batch: the main thread fills per-store groups; workers drain
    /// full batches from a channel into worker-local shards.
    fn outer_batch(&self, owned: &[Vec<Task>], batch_size: usize, threads: usize) -> Result<Sink> {
        let (tx, rx) = crossbeam::channel::unbounded::<Vec<Task>>();
        let results = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let rx = rx.clone();
                    scope.spawn(move |_| {
                        let _ctx = self.observe_fetch();
                        let mut local = Sink::default();
                        while let Ok(group) = rx.recv() {
                            self.fetch_group(&group, &mut local)?;
                        }
                        Ok(local)
                    })
                })
                .collect();
            // Main process: group keys by target store, emitting each group
            // when it reaches BATCH_SIZE (Fig. 7(b)).
            let mut groups: HashMap<(DatabaseName, CollectionName), Vec<Task>> = HashMap::new();
            for task in owned.iter().flatten() {
                let slot = (task.key.database().clone(), task.key.collection().clone());
                let group = groups.entry(slot).or_default();
                group.push(task.clone());
                if group.len() >= batch_size {
                    let full = std::mem::take(group);
                    let _ = tx.send(full);
                }
            }
            let mut rest: Vec<_> = groups.into_iter().filter(|(_, g)| !g.is_empty()).collect();
            rest.sort_by(|a, b| a.0.cmp(&b.0));
            for (_, group) in rest {
                let _ = tx.send(group);
            }
            drop(tx);
            handles
                .into_iter()
                .map(|h| h.join().expect("augmentation worker panicked"))
                .collect::<Vec<Result<Sink>>>()
        })
        .expect("augmentation worker panicked");
        let mut sink = Sink::default();
        merge_shards(results, &mut sink)?;
        Ok(sink)
    }

    /// Outer-inner: half the threads take seeds, each fanning its tasks out
    /// over the other half.
    fn outer_inner(&self, owned: &[Vec<Task>], threads: usize) -> Result<Sink> {
        let outer_threads = (threads / 2).max(1);
        let inner_threads = (threads / 2).max(1);
        let next = AtomicUsize::new(0);
        let results = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..outer_threads.min(owned.len().max(1)))
                .map(|_| {
                    scope.spawn(|_| {
                        let _ctx = self.observe_fetch();
                        let mut local = Sink::default();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= owned.len() {
                                return Ok(local);
                            }
                            if owned[i].is_empty() {
                                continue;
                            }
                            self.parallel_each(&owned[i], inner_threads, &mut local)?;
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("augmentation worker panicked"))
                .collect::<Vec<Result<Sink>>>()
        })
        .expect("augmentation worker panicked");
        let mut sink = Sink::default();
        merge_shards(results, &mut sink)?;
        Ok(sink)
    }

    /// Spreads `tasks` over up to `threads` workers, one key per fetch,
    /// merging the worker shards into `sink` after join.
    fn parallel_each(&self, tasks: &[Task], threads: usize, sink: &mut Sink) -> Result<()> {
        let workers = threads.min(tasks.len()).max(1);
        if workers == 1 {
            for task in tasks {
                self.fetch_one(task, sink)?;
            }
            return Ok(());
        }
        let next = AtomicUsize::new(0);
        let results = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|_| {
                        let _ctx = self.observe_fetch();
                        let mut local = Sink::default();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= tasks.len() {
                                return Ok(local);
                            }
                            self.fetch_one(&tasks[i], &mut local)?;
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("augmentation worker panicked"))
                .collect::<Vec<Result<Sink>>>()
        })
        .expect("augmentation worker panicked");
        merge_shards(results, sink)
    }
}
