//! The augmentation execution engine: one semantic result, six execution
//! strategies (paper §IV).
//!
//! Every augmenter computes the *same* augmented answer — the level-*n*
//! neighbourhood of the seeds in the A' index, retrieved from the
//! polystore and ranked by probability — but distributes the key-based
//! retrieval differently over round trips (batching) and threads
//! (concurrency). The LRU cache sits in front of every lookup, and keys
//! whose objects have vanished from the polystore are reported back as
//! `missing` (the lazy-deletion signal of §III-C).

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use quepa_aindex::{AIndex, AugmentedKey};
use quepa_pdm::{CollectionName, DataObject, DatabaseName, GlobalKey, LocalKey, Probability};
use quepa_polystore::Polystore;

use crate::cache::ObjectCache;
use crate::config::{AugmenterKind, QuepaConfig};
use crate::error::Result;

/// One element of an augmented answer.
#[derive(Debug, Clone, PartialEq)]
pub struct AugmentedObject {
    /// The related object, fetched from its home store.
    pub object: DataObject,
    /// The probability that it relates to the original answer (best path
    /// product over the A' index).
    pub probability: Probability,
    /// Hop distance of the best path.
    pub distance: usize,
}

/// The result of executing an augmentation.
#[derive(Debug, Clone, Default)]
pub struct AugmentationOutcome {
    /// Related objects, ordered by decreasing probability (ties broken by
    /// key for determinism).
    pub objects: Vec<AugmentedObject>,
    /// Keys the A' index knows but the polystore no longer holds; the
    /// caller applies lazy deletion with them.
    pub missing: Vec<GlobalKey>,
    /// How many lookups the cache answered.
    pub cache_hits: usize,
}

/// A unit of retrieval work.
#[derive(Debug, Clone)]
struct Task {
    key: GlobalKey,
    probability: Probability,
    distance: usize,
}

/// Executes the augmentation of `seeds` at `level` using the strategy in
/// `config`.
pub fn run(
    polystore: &Polystore,
    index: &AIndex,
    cache: &ObjectCache,
    seeds: &[DataObject],
    level: usize,
    config: &QuepaConfig,
) -> Result<AugmentationOutcome> {
    let config = config.sanitized();
    let seed_keys: Vec<GlobalKey> = seeds.iter().map(|o| o.key().clone()).collect();

    // Canonical semantics: the level-n neighbourhood of all seeds with
    // best-path probabilities.
    let canonical = index.augment(&seed_keys, level);
    let canon_map: HashMap<&GlobalKey, (Probability, usize)> =
        canonical.iter().map(|a| (&a.key, (a.probability, a.distance))).collect();

    // Work partition for the outer/inner strategies: each target key is
    // owned by the first seed that reaches it (the paper's augmenters
    // iterate the original answer and skip already-retrieved objects).
    let mut owned: Vec<Vec<Task>> = Vec::with_capacity(seeds.len());
    {
        let mut seen: std::collections::HashSet<GlobalKey> = seed_keys.iter().cloned().collect();
        for seed_key in &seed_keys {
            let mut mine = Vec::new();
            for AugmentedKey { key, .. } in index.augment(std::slice::from_ref(seed_key), level)
            {
                if let Some(&(probability, distance)) = canon_map.get(&key) {
                    if seen.insert(key.clone()) {
                        mine.push(Task { key, probability, distance });
                    }
                }
            }
            owned.push(mine);
        }
    }

    let engine = Engine { polystore, cache, sink: Mutex::new(Sink::default()) };
    match config.augmenter {
        AugmenterKind::Sequential => engine.sequential(&owned)?,
        AugmenterKind::Batch => engine.batch(&owned, config.batch_size)?,
        AugmenterKind::Inner => engine.inner(&owned, config.threads_size)?,
        AugmenterKind::Outer => engine.outer(&owned, config.threads_size)?,
        AugmenterKind::OuterBatch => {
            engine.outer_batch(&owned, config.batch_size, config.threads_size)?
        }
        AugmenterKind::OuterInner => engine.outer_inner(&owned, config.threads_size)?,
    }

    let sink = engine.sink.into_inner().expect("no worker panicked");
    let mut outcome = AugmentationOutcome {
        objects: sink.objects,
        missing: sink.missing,
        cache_hits: sink.cache_hits,
    };
    outcome.objects.sort_by(|a, b| {
        b.probability
            .cmp(&a.probability)
            .then_with(|| a.object.key().cmp(b.object.key()))
    });
    outcome.missing.sort();
    Ok(outcome)
}

#[derive(Debug, Default)]
struct Sink {
    objects: Vec<AugmentedObject>,
    missing: Vec<GlobalKey>,
    cache_hits: usize,
}

struct Engine<'a> {
    polystore: &'a Polystore,
    cache: &'a ObjectCache,
    sink: Mutex<Sink>,
}

impl Engine<'_> {
    /// Fetches one task: cache, then a direct-access query.
    fn fetch_one(&self, task: &Task) -> Result<()> {
        if let Some(object) = self.cache.get(&task.key) {
            let mut sink = self.sink.lock().expect("sink lock");
            sink.cache_hits += 1;
            sink.objects.push(AugmentedObject {
                object,
                probability: task.probability,
                distance: task.distance,
            });
            return Ok(());
        }
        match self.polystore.get(&task.key)? {
            Some(object) => {
                self.cache.insert(object.clone());
                self.sink.lock().expect("sink lock").objects.push(AugmentedObject {
                    object,
                    probability: task.probability,
                    distance: task.distance,
                });
            }
            None => {
                self.sink.lock().expect("sink lock").missing.push(task.key.clone());
            }
        }
        Ok(())
    }

    /// Fetches a group of tasks that share a (database, collection) in one
    /// round trip, cache first.
    fn fetch_group(&self, group: &[Task]) -> Result<()> {
        debug_assert!(!group.is_empty());
        let mut to_fetch: Vec<&Task> = Vec::with_capacity(group.len());
        {
            let mut hits = Vec::new();
            for task in group {
                match self.cache.get(&task.key) {
                    Some(object) => hits.push(AugmentedObject {
                        object,
                        probability: task.probability,
                        distance: task.distance,
                    }),
                    None => to_fetch.push(task),
                }
            }
            if !hits.is_empty() {
                let mut sink = self.sink.lock().expect("sink lock");
                sink.cache_hits += hits.len();
                sink.objects.append(&mut hits);
            }
        }
        if to_fetch.is_empty() {
            return Ok(());
        }
        let database: &DatabaseName = to_fetch[0].key.database();
        let collection: &CollectionName = to_fetch[0].key.collection();
        let keys: Vec<LocalKey> = to_fetch.iter().map(|t| t.key.key().clone()).collect();
        let fetched = self.polystore.multi_get(database, collection, &keys)?;
        let by_key: HashMap<&GlobalKey, &DataObject> =
            fetched.iter().map(|o| (o.key(), o)).collect();
        let mut sink = self.sink.lock().expect("sink lock");
        for task in to_fetch {
            match by_key.get(&task.key) {
                Some(object) => {
                    self.cache.insert((*object).clone());
                    sink.objects.push(AugmentedObject {
                        object: (*object).clone(),
                        probability: task.probability,
                        distance: task.distance,
                    });
                }
                None => sink.missing.push(task.key.clone()),
            }
        }
        Ok(())
    }

    // -- strategies ---------------------------------------------------------

    fn sequential(&self, owned: &[Vec<Task>]) -> Result<()> {
        for tasks in owned {
            for task in tasks {
                self.fetch_one(task)?;
            }
        }
        Ok(())
    }

    fn batch(&self, owned: &[Vec<Task>], batch_size: usize) -> Result<()> {
        let mut groups: HashMap<(DatabaseName, CollectionName), Vec<Task>> = HashMap::new();
        for task in owned.iter().flatten() {
            let slot = (task.key.database().clone(), task.key.collection().clone());
            let group = groups.entry(slot).or_default();
            group.push(task.clone());
            if group.len() >= batch_size {
                let full = std::mem::take(group);
                self.fetch_group(&full)?;
            }
        }
        // Flush partial groups in deterministic order.
        let mut rest: Vec<_> = groups.into_iter().filter(|(_, g)| !g.is_empty()).collect();
        rest.sort_by(|a, b| a.0.cmp(&b.0));
        for (_, group) in rest {
            self.fetch_group(&group)?;
        }
        Ok(())
    }

    /// Inner concurrency: seeds in sequence, each seed's tasks spread over
    /// up to `threads` workers.
    fn inner(&self, owned: &[Vec<Task>], threads: usize) -> Result<()> {
        for tasks in owned {
            if tasks.is_empty() {
                continue;
            }
            self.parallel_each(tasks, threads)?;
        }
        Ok(())
    }

    /// Outer concurrency: a pool of `threads` workers, each taking whole
    /// seeds and fetching their tasks sequentially.
    fn outer(&self, owned: &[Vec<Task>], threads: usize) -> Result<()> {
        let next = AtomicUsize::new(0);
        let errors: Mutex<Vec<crate::error::QuepaError>> = Mutex::new(Vec::new());
        crossbeam::thread::scope(|scope| {
            for _ in 0..threads.min(owned.len().max(1)) {
                scope.spawn(|_| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= owned.len() {
                        return;
                    }
                    for task in &owned[i] {
                        if let Err(e) = self.fetch_one(task) {
                            errors.lock().expect("errors lock").push(e);
                            return;
                        }
                    }
                });
            }
        })
        .expect("augmentation worker panicked");
        first_error(errors)
    }

    /// Outer-batch: the main thread fills per-store groups; workers drain
    /// full batches from a channel.
    fn outer_batch(&self, owned: &[Vec<Task>], batch_size: usize, threads: usize) -> Result<()> {
        let (tx, rx) = crossbeam::channel::unbounded::<Vec<Task>>();
        let errors: Mutex<Vec<crate::error::QuepaError>> = Mutex::new(Vec::new());
        crossbeam::thread::scope(|scope| {
            for _ in 0..threads {
                let rx = rx.clone();
                let errors = &errors;
                scope.spawn(move |_| {
                    while let Ok(group) = rx.recv() {
                        if let Err(e) = self.fetch_group(&group) {
                            errors.lock().expect("errors lock").push(e);
                            return;
                        }
                    }
                });
            }
            // Main process: group keys by target store, emitting each group
            // when it reaches BATCH_SIZE (Fig. 7(b)).
            let mut groups: HashMap<(DatabaseName, CollectionName), Vec<Task>> = HashMap::new();
            for task in owned.iter().flatten() {
                let slot = (task.key.database().clone(), task.key.collection().clone());
                let group = groups.entry(slot).or_default();
                group.push(task.clone());
                if group.len() >= batch_size {
                    let full = std::mem::take(group);
                    let _ = tx.send(full);
                }
            }
            let mut rest: Vec<_> = groups.into_iter().filter(|(_, g)| !g.is_empty()).collect();
            rest.sort_by(|a, b| a.0.cmp(&b.0));
            for (_, group) in rest {
                let _ = tx.send(group);
            }
            drop(tx);
        })
        .expect("augmentation worker panicked");
        first_error(errors)
    }

    /// Outer-inner: half the threads take seeds, each fanning its tasks out
    /// over the other half.
    fn outer_inner(&self, owned: &[Vec<Task>], threads: usize) -> Result<()> {
        let outer_threads = (threads / 2).max(1);
        let inner_threads = (threads / 2).max(1);
        let next = AtomicUsize::new(0);
        let errors: Mutex<Vec<crate::error::QuepaError>> = Mutex::new(Vec::new());
        crossbeam::thread::scope(|scope| {
            for _ in 0..outer_threads.min(owned.len().max(1)) {
                scope.spawn(|_| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= owned.len() {
                        return;
                    }
                    if owned[i].is_empty() {
                        continue;
                    }
                    if let Err(e) = self.parallel_each(&owned[i], inner_threads) {
                        errors.lock().expect("errors lock").push(e);
                        return;
                    }
                });
            }
        })
        .expect("augmentation worker panicked");
        first_error(errors)
    }

    /// Spreads `tasks` over up to `threads` workers, one key per fetch.
    fn parallel_each(&self, tasks: &[Task], threads: usize) -> Result<()> {
        let workers = threads.min(tasks.len()).max(1);
        if workers == 1 {
            for task in tasks {
                self.fetch_one(task)?;
            }
            return Ok(());
        }
        let next = AtomicUsize::new(0);
        let errors: Mutex<Vec<crate::error::QuepaError>> = Mutex::new(Vec::new());
        crossbeam::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|_| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= tasks.len() {
                        return;
                    }
                    if let Err(e) = self.fetch_one(&tasks[i]) {
                        errors.lock().expect("errors lock").push(e);
                        return;
                    }
                });
            }
        })
        .expect("augmentation worker panicked");
        first_error(errors)
    }
}

fn first_error(errors: Mutex<Vec<crate::error::QuepaError>>) -> Result<()> {
    match errors.into_inner().expect("errors lock").into_iter().next() {
        Some(e) => Err(e),
        None => Ok(()),
    }
}
