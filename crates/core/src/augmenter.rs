//! The augmentation execution engine: one semantic result, six execution
//! strategies (paper §IV).
//!
//! Every augmenter computes the *same* augmented answer — the level-*n*
//! neighbourhood of the seeds in the A' index, retrieved from the
//! polystore and ranked by probability — but distributes the key-based
//! retrieval differently over round trips (batching) and threads
//! (concurrency). The LRU cache sits in front of every lookup, and keys
//! whose objects have vanished from the polystore are reported back as
//! `missing` (the lazy-deletion signal of §III-C).
//!
//! Hot-path structure: the A' index is traversed **once** per query
//! ([`plan`] calls `AIndex::augment_multi`, which yields the canonical
//! neighbourhood and the per-seed work partition together). Execution is
//! uniform across the concurrent strategies: each strategy compiles its
//! work into a list of *units* (single keys or batch groups) and a
//! ticket count, and the ticket executor claims units off a shared
//! atomic cursor — either on the instance's shared [`WorkerPool`]
//! (queries park on a [`Latch`](crate::pool::Latch) while pool workers
//! run their tickets) or on scoped threads when no pool is attached.
//! Every ticket accumulates into its own [`Sink`] shard merged after
//! completion — workers never share a lock — and the final sort by
//! (probability desc, key asc) makes the outcome independent of worker
//! interleaving and shard merge order.
//!
//! When a [`FlightTable`] is attached (and the cache is enabled), fetches
//! coalesce across queries: one leader per key (or per batch group)
//! performs the round trip, waiters account the published object exactly
//! like a cache hit. See [`crate::flight`] for the equality argument.

use std::collections::HashMap;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use quepa_aindex::{AIndex, Augmentable, AugmentedKey};
use quepa_obs::{MetricsRegistry, Stage};
use quepa_pdm::{CollectionName, DataObject, DatabaseName, GlobalKey, LocalKey, Probability, Pushdown};
use quepa_polystore::retry::{BreakerSet, CircuitBreaker};
use quepa_polystore::{FilteredFetch, PolyError, Polystore, StoreKind};

use crate::cache::ObjectCache;
use crate::config::{AugmenterKind, DegradeMode, QuepaConfig, ResilienceConfig};
use crate::error::Result;
use crate::flight::{Flight, FlightOutcome, FlightTable, KeyRole, LeaderGuard};
use crate::pool::{Latch, WorkerPool};

/// One element of an augmented answer.
#[derive(Debug, Clone, PartialEq)]
pub struct AugmentedObject {
    /// The related object, fetched from its home store.
    pub object: DataObject,
    /// The probability that it relates to the original answer (best path
    /// product over the A' index).
    pub probability: Probability,
    /// Hop distance of the best path.
    pub distance: usize,
}

/// Why a key the A' index pointed at is absent from the augmentation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum MissingReason {
    /// The store answered and the object is gone — the lazy-deletion
    /// signal of §III-C: the key leaves the index and the cache.
    NotFound,
    /// The store could not be reached: every allowed attempt failed (or
    /// the circuit breaker rejected the call, in which case `attempts`
    /// is 0). The object may well still exist — the index keeps it.
    Unreachable {
        /// The database that failed to answer.
        database: DatabaseName,
        /// Round-trip attempts made before giving up.
        attempts: u32,
    },
}

/// One key missing from an augmented answer, with the reason.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MissingKey {
    /// The key the A' index pointed at.
    pub key: GlobalKey,
    /// Why it is not in the answer.
    pub reason: MissingReason,
}

impl MissingKey {
    /// A key whose object vanished from its store.
    pub fn not_found(key: GlobalKey) -> Self {
        MissingKey { key, reason: MissingReason::NotFound }
    }

    /// A key whose store could not be reached.
    pub fn unreachable(key: GlobalKey, database: DatabaseName, attempts: u32) -> Self {
        MissingKey { key, reason: MissingReason::Unreachable { database, attempts } }
    }

    /// True for the lazy-deletion case.
    pub fn is_not_found(&self) -> bool {
        self.reason == MissingReason::NotFound
    }
}

/// The result of executing an augmentation.
#[derive(Debug, Clone, Default)]
pub struct AugmentationOutcome {
    /// Related objects, ordered by decreasing probability (ties broken by
    /// key for determinism).
    pub objects: Vec<AugmentedObject>,
    /// Keys the A' index knows but this run could not retrieve: gone from
    /// the store ([`MissingReason::NotFound`], the lazy-deletion signal)
    /// or behind an unreachable store
    /// ([`MissingReason::Unreachable`], a partial-answer degradation).
    pub missing: Vec<MissingKey>,
    /// How many lookups the cache answered.
    pub cache_hits: usize,
}

/// A unit of retrieval work.
#[derive(Debug, Clone)]
struct Task {
    key: GlobalKey,
    probability: Probability,
    distance: usize,
}

/// The index-side answer to an augmentation, computed in one traversal:
/// the canonical neighbourhood plus the first-reaching-seed work
/// partition the outer strategies distribute over threads.
#[derive(Debug, Clone)]
pub struct AugmentPlan {
    /// The canonical augmented keys, identical to
    /// `AIndex::augment(seeds, level)` over the same seeds.
    pub augmented: Vec<AugmentedKey>,
    /// Per `augmented` entry, the index of its owning seed.
    ownership: Vec<u32>,
    /// Length of the seed slice the plan was computed for.
    seed_count: usize,
}

/// Traverses the A' index once, producing the retrieval plan for `seeds`.
/// Generic over [`Augmentable`] so it serves both the monolithic
/// [`AIndex`] and a sharded [`quepa_aindex::IndexView`].
pub fn plan<I: Augmentable>(index: &I, seed_keys: &[GlobalKey], level: usize) -> AugmentPlan {
    let (augmented, ownership) = index.augment_multi(seed_keys, level);
    AugmentPlan { augmented, ownership, seed_count: seed_keys.len() }
}

/// Executes the augmentation of `seeds` at `level` using the strategy in
/// `config`.
pub fn run(
    polystore: &Polystore,
    index: &AIndex,
    cache: &Arc<ObjectCache>,
    seeds: &[DataObject],
    level: usize,
    config: &QuepaConfig,
) -> Result<AugmentationOutcome> {
    let seed_keys: Vec<GlobalKey> = seeds.iter().map(|o| o.key().clone()).collect();
    let plan = plan(index, &seed_keys, level);
    run_planned(polystore, cache, &plan, config)
}

/// The shared serving-path machinery an execution borrows from its
/// [`Quepa`] instance: long-lived breaker state, the metrics registry,
/// the shared worker pool, and the cross-query flight table. Standalone
/// callers ([`run_planned`]) get fresh breakers and none of the rest.
///
/// [`Quepa`]: crate::system::Quepa
pub struct FetchRuntime<'a> {
    /// Circuit breakers that persist across runs.
    pub breakers: &'a Arc<BreakerSet>,
    /// Metrics registry; workers report round trips / probes / retries.
    pub obs: Option<&'a Arc<MetricsRegistry>>,
    /// The instance's shared fetch pool; `None` falls back to scoped
    /// threads (one-shot executions).
    pub pool: Option<&'a WorkerPool>,
    /// Cross-query single-flight table; only engaged while the cache is
    /// enabled (see [`crate::flight`]).
    pub flight: Option<&'a Arc<FlightTable>>,
}

/// Executes a previously computed [`AugmentPlan`] — callers that already
/// traversed the index (e.g. for feature extraction) retrieve without a
/// second traversal. Circuit-breaker state lives only for this run; use
/// [`run_planned_with`] to share the serving-path machinery across runs
/// (as [`Quepa`] does).
///
/// [`Quepa`]: crate::system::Quepa
pub fn run_planned(
    polystore: &Polystore,
    cache: &Arc<ObjectCache>,
    plan: &AugmentPlan,
    config: &QuepaConfig,
) -> Result<AugmentationOutcome> {
    let breakers = Arc::new(BreakerSet::new(config.resilience.breaker));
    let runtime = FetchRuntime { breakers: &breakers, obs: None, pool: None, flight: None };
    run_planned_with(polystore, cache, plan, config, &runtime)
}

/// Executes a previously computed [`AugmentPlan`] on the shared serving
/// path: breaker state (closed → open → half-open) persists across runs,
/// workers report to the metrics registry when one is attached, tickets
/// run on the shared pool, and fetches coalesce across queries through
/// the flight table.
pub fn run_planned_with(
    polystore: &Polystore,
    cache: &Arc<ObjectCache>,
    plan: &AugmentPlan,
    config: &QuepaConfig,
    runtime: &FetchRuntime<'_>,
) -> Result<AugmentationOutcome> {
    let config = config.sanitized();
    let owned = partition(plan);
    let engine = Engine {
        polystore: polystore.clone(),
        cache: Arc::clone(cache),
        resilience: config.resilience,
        breakers: Arc::clone(runtime.breakers),
        obs: runtime.obs.map(Arc::clone),
        // A disabled cache means a serial run performs every round trip
        // itself — coalescing would change behaviour, not preserve it.
        flight: if config.cache_size > 0 { runtime.flight.map(Arc::clone) } else { None },
        filter: None,
    };
    // The calling thread fetches too (sequential/batch run here):
    // observe it like any worker.
    let _ctx = engine.observe_fetch();
    let sink = dispatch(&engine, owned, &config, runtime.pool)?;
    Ok(finish(sink, &config, runtime))
}

/// Which side of the wire evaluates a filtered group's predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupStrategy {
    /// One `fetch_where` round trip carries the predicate to the store;
    /// only matching objects travel back.
    Pushdown,
    /// The configured augmenter fetches every key; the predicate is
    /// evaluated client-side.
    FetchAll,
}

/// Why a store group landed on its strategy (the `EXPLAIN` surface).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionReason {
    /// The planner picked pushdown.
    Chosen,
    /// Pushdown is disabled by configuration.
    Disabled,
    /// The connector declined the filter (no native path).
    Declined,
    /// The planner predicted fetch-all to be faster for this group.
    Predicted,
}

/// The planner's verdict for one (database, collection) group of a
/// filtered augmentation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupDecision {
    /// The group's target database.
    pub database: DatabaseName,
    /// The group's target collection.
    pub collection: CollectionName,
    /// Keys in the group.
    pub keys: usize,
    /// The strategy the group executed under.
    pub strategy: GroupStrategy,
    /// Why.
    pub reason: DecisionReason,
}

/// The per-group pushdown decision hook: given the target store's kind
/// and the group's key count, return `true` to execute the group as one
/// pushdown round trip (the connector has already said it supports the
/// filter). The adaptive planner supplies a model-backed implementation;
/// `None` means "pushdown whenever supported".
pub type PushdownDecider<'a> = dyn Fn(StoreKind, usize) -> bool + Sync + 'a;

/// Executes a plan under a [`Pushdown`] filter: only objects matching the
/// predicate are returned, keys whose objects exist but fail it appear in
/// neither `objects` nor `missing`, and `missing` keeps its exact
/// unfiltered meaning (gone or unreachable). Per (database, collection)
/// group the planner chooses pushdown or fetch-all — the answer is
/// bit-identical either way; only the wire traffic differs.
///
/// Cache contract under a filter: probes serve hits (evaluated
/// client-side) but only *matched* objects are ever inserted, in both
/// strategies, so the cache state cannot reveal which strategy ran.
/// Cross-query flight coalescing is disabled (a leader's published
/// outcome is not filter-aware).
pub fn run_planned_filtered(
    polystore: &Polystore,
    cache: &Arc<ObjectCache>,
    plan: &AugmentPlan,
    config: &QuepaConfig,
    runtime: &FetchRuntime<'_>,
    filter: &Pushdown,
    decider: Option<&PushdownDecider<'_>>,
) -> Result<(AugmentationOutcome, Vec<GroupDecision>)> {
    if filter.is_trivial() {
        let outcome = run_planned_with(polystore, cache, plan, config, runtime)?;
        return Ok((outcome, Vec::new()));
    }
    let config = config.sanitized();
    let owned = partition(plan);
    let engine = Engine {
        polystore: polystore.clone(),
        cache: Arc::clone(cache),
        resilience: config.resilience,
        breakers: Arc::clone(runtime.breakers),
        obs: runtime.obs.map(Arc::clone),
        flight: None,
        filter: Some(filter.clone()),
    };
    let _ctx = engine.observe_fetch();

    let decisions = decide_groups(polystore, &owned, &config, filter, decider);
    let pushdown_slots: std::collections::BTreeSet<(&DatabaseName, &CollectionName)> = decisions
        .iter()
        .filter(|d| d.strategy == GroupStrategy::Pushdown)
        .map(|d| (&d.database, &d.collection))
        .collect();

    // The fetch-all share keeps its per-seed partition and runs under the
    // configured augmenter; each pushdown group is one unit, claimed by
    // tickets like any other (sequential configs keep one ticket).
    let mut fetch_all: Vec<Vec<Task>> = vec![Vec::new(); owned.len()];
    let mut push_groups: HashMap<(DatabaseName, CollectionName), Vec<Task>> = HashMap::new();
    for (seed, tasks) in owned.into_iter().enumerate() {
        for task in tasks {
            let slot = (task.key.database(), task.key.collection());
            if pushdown_slots.contains(&slot) {
                push_groups
                    .entry((task.key.database().clone(), task.key.collection().clone()))
                    .or_default()
                    .push(task);
            } else {
                fetch_all[seed].push(task);
            }
        }
    }
    let mut push_units: Vec<((DatabaseName, CollectionName), Vec<Task>)> =
        push_groups.into_iter().collect();
    push_units.sort_by(|a, b| a.0.cmp(&b.0));
    let push_units: Vec<Vec<Task>> = push_units.into_iter().map(|(_, g)| g).collect();

    let tickets = if config.augmenter.uses_threads() { config.threads_size } else { 1 };
    let mut sink = engine.execute(push_units, UnitMode::PushdownGroup, tickets, runtime.pool)?;
    sink.merge(dispatch(&engine, fetch_all, &config, runtime.pool)?);
    Ok((finish(sink, &config, runtime), decisions))
}

/// Dry-runs the planner: the per-group verdicts a filtered augmentation
/// of `plan` would execute under, without touching any store (the
/// `EXPLAIN` surface). A trivial filter plans no groups. Unlike a real
/// run, no observation context is installed here, so the planner
/// counters stay untouched — explaining a query must not dirty the
/// metrics a differential check compares.
pub fn explain_groups(
    polystore: &Polystore,
    plan: &AugmentPlan,
    config: &QuepaConfig,
    filter: &Pushdown,
    decider: Option<&PushdownDecider<'_>>,
) -> Vec<GroupDecision> {
    if filter.is_trivial() {
        return Vec::new();
    }
    decide_groups(polystore, &partition(plan), &config.sanitized(), filter, decider)
}

/// The planner: one verdict per (database, collection) group, in sorted
/// group order. Connector capability is consulted first (declines are
/// counted per store); the decider only arbitrates supported groups.
fn decide_groups(
    polystore: &Polystore,
    owned: &[Vec<Task>],
    config: &QuepaConfig,
    filter: &Pushdown,
    decider: Option<&PushdownDecider<'_>>,
) -> Vec<GroupDecision> {
    let mut sizes: std::collections::BTreeMap<(DatabaseName, CollectionName), usize> =
        std::collections::BTreeMap::new();
    for task in owned.iter().flatten() {
        *sizes
            .entry((task.key.database().clone(), task.key.collection().clone()))
            .or_default() += 1;
    }
    sizes
        .into_iter()
        .map(|((database, collection), keys)| {
            let supported = polystore
                .connector(&database)
                .map(|c| (c.kind(), c.supports_pushdown(filter)))
                .ok();
            let (strategy, reason) = match supported {
                _ if !config.pushdown => (GroupStrategy::FetchAll, DecisionReason::Disabled),
                // Unknown database: let the fetch path surface the error.
                None => (GroupStrategy::FetchAll, DecisionReason::Declined),
                Some((_, false)) => {
                    quepa_obs::record_pushdown_declined(database.as_str());
                    (GroupStrategy::FetchAll, DecisionReason::Declined)
                }
                Some((kind, true)) => {
                    if decider.is_none_or(|d| d(kind, keys)) {
                        quepa_obs::record_pushdown_chosen(database.as_str());
                        (GroupStrategy::Pushdown, DecisionReason::Chosen)
                    } else {
                        (GroupStrategy::FetchAll, DecisionReason::Predicted)
                    }
                }
            };
            GroupDecision { database, collection, keys, strategy, reason }
        })
        .collect()
}

/// Work partition for the outer/inner strategies: each target key is
/// owned by the first seed that reaches it (the paper's augmenters
/// iterate the original answer and skip already-retrieved objects).
fn partition(plan: &AugmentPlan) -> Vec<Vec<Task>> {
    let mut owned: Vec<Vec<Task>> = vec![Vec::new(); plan.seed_count];
    for (a, &owner) in plan.augmented.iter().zip(&plan.ownership) {
        owned[owner as usize].push(Task {
            key: a.key.clone(),
            probability: a.probability,
            distance: a.distance,
        });
    }
    owned
}

/// Runs the configured augmenter over a per-seed work partition.
fn dispatch(
    engine: &Engine,
    owned: Vec<Vec<Task>>,
    config: &QuepaConfig,
    pool: Option<&WorkerPool>,
) -> Result<Sink> {
    let threads = config.threads_size;
    match config.augmenter {
        AugmenterKind::Sequential => engine.sequential(&owned),
        AugmenterKind::Batch => {
            let units = batch_groups(&owned, config.batch_size);
            engine.execute(units, UnitMode::Group, 1, None)
        }
        AugmenterKind::Inner => engine.inner(owned, threads, pool),
        AugmenterKind::Outer => engine.execute(owned, UnitMode::Singles, threads, pool),
        AugmenterKind::OuterBatch => {
            let units = batch_groups(&owned, config.batch_size);
            engine.execute(units, UnitMode::Group, threads, pool)
        }
        AugmenterKind::OuterInner => {
            // Outer × inner parallelism, flattened: per-key units claimed
            // by outer×inner tickets give the same schedule capacity
            // without nesting pools (a nested wait inside a pool worker
            // could deadlock the shared pool).
            let outer = (threads / 2).max(1);
            let inner = (threads / 2).max(1);
            let units: Vec<Vec<Task>> = owned.into_iter().flatten().map(|t| vec![t]).collect();
            engine.execute(units, UnitMode::Singles, outer * inner, pool)
        }
    }
}

/// Sorts a merged sink into the canonical answer order under the Merge
/// span.
fn finish(sink: Sink, config: &QuepaConfig, runtime: &FetchRuntime<'_>) -> AugmentationOutcome {
    let mut outcome = AugmentationOutcome {
        objects: sink.objects,
        missing: sink.missing,
        cache_hits: sink.cache_hits,
    };
    let mut span =
        runtime.obs.map(|r| quepa_obs::span_on(r, Stage::Merge, config.augmenter.name()));
    if let Some(s) = span.as_mut() {
        s.add_items(outcome.objects.len() as u64);
    }
    outcome.objects.sort_by(|a, b| {
        b.probability.cmp(&a.probability).then_with(|| a.object.key().cmp(b.object.key()))
    });
    outcome.missing.sort();
    outcome
}

/// Compiles the cross-seed batching of §IV-A into group units, in the
/// order the streaming formulation emits them: a group unit is produced
/// the moment it fills to `batch_size` (encounter order), partial groups
/// flush afterwards sorted by target (deterministic remainder).
fn batch_groups(owned: &[Vec<Task>], batch_size: usize) -> Vec<Vec<Task>> {
    let mut units = Vec::new();
    let mut groups: HashMap<(DatabaseName, CollectionName), Vec<Task>> = HashMap::new();
    for task in owned.iter().flatten() {
        let slot = (task.key.database().clone(), task.key.collection().clone());
        let group = groups.entry(slot).or_default();
        group.push(task.clone());
        if group.len() >= batch_size {
            units.push(std::mem::take(group));
        }
    }
    let mut rest: Vec<_> = groups.into_iter().filter(|(_, g)| !g.is_empty()).collect();
    rest.sort_by(|a, b| a.0.cmp(&b.0));
    units.extend(rest.into_iter().map(|(_, g)| g));
    units
}

/// A shard of the result, private to one worker until merged.
#[derive(Debug, Default)]
struct Sink {
    objects: Vec<AugmentedObject>,
    missing: Vec<MissingKey>,
    cache_hits: usize,
}

impl Sink {
    fn merge(&mut self, mut other: Sink) {
        self.objects.append(&mut other.objects);
        self.missing.append(&mut other.missing);
        self.cache_hits += other.cache_hits;
    }
}

/// Merges worker shards in spawn order, surfacing the first worker error.
fn merge_shards(results: Vec<Result<Sink>>, into: &mut Sink) -> Result<()> {
    for result in results {
        into.merge(result?);
    }
    Ok(())
}

/// The retrieval engine, cloned into pool tickets: every field is either
/// a cheap handle (`Arc`s, the connector-registry `Polystore`) or `Copy`,
/// so a clone is a reference, not a data copy.
#[derive(Clone)]
struct Engine {
    polystore: Polystore,
    cache: Arc<ObjectCache>,
    resilience: ResilienceConfig,
    breakers: Arc<BreakerSet>,
    obs: Option<Arc<MetricsRegistry>>,
    flight: Option<Arc<FlightTable>>,
    /// The active pushdown filter, if the augmentation is filtered. Set
    /// only by [`run_planned_filtered`], which also forces `flight:
    /// None` — the flight table's published outcomes are not
    /// filter-aware.
    filter: Option<Pushdown>,
}

/// What one work unit is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum UnitMode {
    /// A run of single-key fetches.
    Singles,
    /// A batch group sharing one (database, collection): one `multi_get`.
    Group,
    /// A filtered store group: one `fetch_where` carrying the predicate.
    PushdownGroup,
}

/// Maps a fetch error to the structured reason it would leave in the
/// `missing` list — `None` for errors that must always propagate
/// (unknown database/collection, wrong store kind: configuration
/// mistakes, not outages).
fn unreachable_reason(error: &PolyError) -> Option<MissingReason> {
    match error {
        PolyError::Unreachable { database, attempts, .. } => {
            let database = DatabaseName::new(database).ok()?;
            Some(MissingReason::Unreachable { database, attempts: *attempts })
        }
        PolyError::Store { database, .. }
        | PolyError::Timeout { database }
        | PolyError::Unavailable { database } => {
            let database = DatabaseName::new(database).ok()?;
            Some(MissingReason::Unreachable { database, attempts: 1 })
        }
        _ => None,
    }
}

/// One batch of tickets executing on the shared pool. `'static` by
/// construction (the engine is owned), so jobs need no scoped lifetimes.
struct TicketBatch {
    engine: Engine,
    units: Vec<Vec<Task>>,
    mode: UnitMode,
    next: AtomicUsize,
    slots: parking_lot::Mutex<Vec<Option<TicketOutcome>>>,
    latch: Latch,
}

type TicketOutcome = std::result::Result<Result<Sink>, Box<dyn std::any::Any + Send + 'static>>;

impl TicketBatch {
    fn run_ticket(&self) -> Result<Sink> {
        let _ctx = self.engine.observe_fetch();
        let mut local = Sink::default();
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.units.len() {
                return Ok(local);
            }
            self.engine.run_unit(&self.units[i], self.mode, &mut local)?;
        }
    }
}

impl Engine {
    /// Installs the Fetch-stage observation context on the current
    /// thread; every worker calls this so its round trips, cache probes
    /// and retries report to the engine's registry. `None` (and disabled
    /// registries) cost nothing.
    fn observe_fetch(&self) -> Option<quepa_obs::ContextGuard> {
        self.obs.as_ref().map(|r| quepa_obs::observe(r, Stage::Fetch))
    }

    /// The breaker guarding `database`, when breakers are enabled.
    fn breaker(&self, database: &DatabaseName) -> Option<Arc<CircuitBreaker>> {
        if self.resilience.breaker.is_disabled() {
            return None;
        }
        self.breakers.breaker(database)
    }

    /// Handles a failed fetch: under [`DegradeMode::Partial`] the task's
    /// key degrades into the `missing` list with a structured reason;
    /// under fail-fast (or for non-outage errors) the error propagates.
    fn degrade_or_fail(&self, task: &Task, error: PolyError, sink: &mut Sink) -> Result<()> {
        if self.resilience.degrade == DegradeMode::Partial {
            if let Some(reason) = unreachable_reason(&error) {
                sink.missing.push(MissingKey { key: task.key.clone(), reason });
                return Ok(());
            }
        }
        Err(error.into())
    }

    /// Whether the active filter (if any) admits this object. Client-side
    /// evaluation uses the same canonical evaluator as every native
    /// pushdown path, over the exact local key and value the connector
    /// hands back — the bit-identity argument.
    fn admits(&self, task: &Task, object: &DataObject) -> bool {
        self.filter.as_ref().is_none_or(|f| f.matches(task.key.key().as_str(), object.value()))
    }

    /// Accounts a cache (or coalesced-flight) hit and records the object.
    fn push_hit(&self, task: &Task, object: DataObject, sink: &mut Sink) {
        self.cache.tally_hit();
        quepa_obs::record_cache_probe(true);
        sink.cache_hits += 1;
        sink.objects.push(AugmentedObject {
            object,
            probability: task.probability,
            distance: task.distance,
        });
    }

    /// One key's store round trip, resilient when configured.
    fn round_trip_one(
        &self,
        key: &GlobalKey,
    ) -> std::result::Result<Option<DataObject>, PolyError> {
        if self.resilience.is_trivial() {
            self.polystore.get(key)
        } else {
            let breaker = self.breaker(key.database());
            self.polystore.get_resilient(key, &self.resilience.retry, breaker.as_deref())
        }
    }

    /// Fetches one task into `sink`: cache, then — through the flight
    /// table when coalescing is on — a direct-access query.
    fn fetch_one(&self, task: &Task, sink: &mut Sink) -> Result<()> {
        let Some(flight) = self.flight.clone() else {
            let cached = self.cache.get(&task.key);
            quepa_obs::record_cache_probe(cached.is_some());
            if let Some(object) = cached {
                // The probe is a hit either way; a filtered-out hit just
                // contributes no object (and is not missing).
                sink.cache_hits += 1;
                if self.admits(task, &object) {
                    sink.objects.push(AugmentedObject {
                        object,
                        probability: task.probability,
                        distance: task.distance,
                    });
                }
                return Ok(());
            }
            return self.fetch_one_uncached(task, sink);
        };
        debug_assert!(self.filter.is_none(), "filtered runs disable the flight table");
        if let Some(object) = self.cache.probe(&task.key) {
            self.push_hit(task, object, sink);
            return Ok(());
        }
        match flight.join(&task.key, &self.cache) {
            KeyRole::Cached(object) => {
                self.push_hit(task, object, sink);
                Ok(())
            }
            KeyRole::Leader(guard) => {
                self.cache.tally_miss();
                quepa_obs::record_cache_probe(false);
                self.lead_one(task, guard, sink)
            }
            KeyRole::Waiter(f) => {
                let outcome = f.wait();
                self.settle_waiter(task, outcome, sink)
            }
        }
    }

    /// The store round trip of [`fetch_one`](Engine::fetch_one) when no
    /// flight table is engaged, after the cache has missed — also the
    /// per-key fallback a failed batch degrades to, and the fallback of
    /// a waiter whose leader failed.
    fn fetch_one_uncached(&self, task: &Task, sink: &mut Sink) -> Result<()> {
        match self.round_trip_one(&task.key) {
            Ok(Some(object)) => {
                // An existing object that fails the filter is neither an
                // answer nor missing — and it is never cached: under
                // pushdown it would not have crossed the wire, and the
                // cache state must not reveal which strategy ran.
                if self.admits(task, &object) {
                    self.cache.insert(object.clone());
                    sink.objects.push(AugmentedObject {
                        object,
                        probability: task.probability,
                        distance: task.distance,
                    });
                }
                Ok(())
            }
            Ok(None) => {
                sink.missing.push(MissingKey::not_found(task.key.clone()));
                Ok(())
            }
            Err(error) => self.degrade_or_fail(task, error, sink),
        }
    }

    /// Performs a led round trip for one key and publishes its outcome
    /// (the miss was already tallied when leadership was taken).
    fn lead_one(&self, task: &Task, guard: LeaderGuard, sink: &mut Sink) -> Result<()> {
        match self.round_trip_one(&task.key) {
            Ok(Some(object)) => {
                guard.publish(&self.cache, FlightOutcome::Found(object.clone()));
                sink.objects.push(AugmentedObject {
                    object,
                    probability: task.probability,
                    distance: task.distance,
                });
                Ok(())
            }
            Ok(None) => {
                guard.publish(&self.cache, FlightOutcome::NotFound);
                sink.missing.push(MissingKey::not_found(task.key.clone()));
                Ok(())
            }
            Err(error) => {
                guard.publish(&self.cache, FlightOutcome::Failed);
                self.degrade_or_fail(task, error, sink)
            }
        }
    }

    /// Resolves a coalesced fetch from the leader's published outcome.
    fn settle_waiter(&self, task: &Task, outcome: FlightOutcome, sink: &mut Sink) -> Result<()> {
        match outcome {
            // The flight table is the in-flight extension of the cache:
            // a serial execution would have found this object cached.
            FlightOutcome::Found(object) => {
                self.push_hit(task, object, sink);
                Ok(())
            }
            FlightOutcome::NotFound => {
                self.cache.tally_miss();
                quepa_obs::record_cache_probe(false);
                sink.missing.push(MissingKey::not_found(task.key.clone()));
                Ok(())
            }
            // The leader's round trip failed: fetch directly so this
            // query's own retry/breaker accounting applies.
            FlightOutcome::Failed => {
                self.cache.tally_miss();
                quepa_obs::record_cache_probe(false);
                self.fetch_one_uncached(task, sink)
            }
        }
    }

    /// Fetches a group of tasks that share a (database, collection) in one
    /// round trip, cache first.
    fn fetch_group(&self, group: &[Task], sink: &mut Sink) -> Result<()> {
        debug_assert!(!group.is_empty());
        match self.flight.clone() {
            None => self.fetch_group_direct(group, sink),
            Some(flight) => self.fetch_group_coalesced(&flight, group, sink),
        }
    }

    fn fetch_group_direct(&self, group: &[Task], sink: &mut Sink) -> Result<()> {
        let mut to_fetch: Vec<&Task> = Vec::with_capacity(group.len());
        for task in group {
            let cached = self.cache.get(&task.key);
            quepa_obs::record_cache_probe(cached.is_some());
            match cached {
                Some(object) => {
                    sink.cache_hits += 1;
                    if self.admits(task, &object) {
                        sink.objects.push(AugmentedObject {
                            object,
                            probability: task.probability,
                            distance: task.distance,
                        });
                    }
                }
                None => to_fetch.push(task),
            }
        }
        if to_fetch.is_empty() {
            return Ok(());
        }
        let database: &DatabaseName = to_fetch[0].key.database();
        let collection: &CollectionName = to_fetch[0].key.collection();
        let keys: Vec<LocalKey> = to_fetch.iter().map(|t| t.key.key().clone()).collect();
        let fetched = self.round_trip_group(database, collection, &keys);
        let fetched = match fetched {
            Ok(fetched) => fetched,
            Err(error)
                if self.resilience.degrade == DegradeMode::Partial
                    && unreachable_reason(&error).is_some() =>
            {
                // A failed batch must not poison its healthy members:
                // degrade to per-key round trips so only the keys that
                // are truly unreachable land in `missing`.
                for task in &to_fetch {
                    self.fetch_one_uncached(task, sink)?;
                }
                return Ok(());
            }
            Err(error) => return Err(error.into()),
        };
        // Move each fetched object straight into the sink (the cache takes
        // the one clone); tasks whose key came back empty are missing.
        let mut wanted: HashMap<&GlobalKey, &Task> =
            to_fetch.iter().map(|t| (&t.key, *t)).collect();
        for object in fetched {
            let Some(task) = wanted.remove(object.key()) else { continue };
            if self.admits(task, &object) {
                self.cache.insert(object.clone());
                sink.objects.push(AugmentedObject {
                    object,
                    probability: task.probability,
                    distance: task.distance,
                });
            }
        }
        // Preserve the historical missing order: to_fetch order, not map
        // order.
        for task in &to_fetch {
            if wanted.contains_key(&task.key) {
                sink.missing.push(MissingKey::not_found(task.key.clone()));
            }
        }
        Ok(())
    }

    /// One filtered store group as a single `fetch_where` round trip:
    /// cache probes first (hits evaluated client-side), then the
    /// predicate travels to the store and only matching objects travel
    /// back. Keys the store reports `rejected` exist but fail the filter
    /// — neither answers nor missing; keys in neither list are gone (the
    /// lazy-deletion signal, exactly as a `multi_get` would report
    /// them). A degradable wire failure falls back to per-key round
    /// trips with client-side filtering, mirroring the batch ladder.
    fn fetch_group_pushdown(&self, group: &[Task], sink: &mut Sink) -> Result<()> {
        debug_assert!(!group.is_empty());
        let filter = self.filter.as_ref().expect("pushdown units carry the engine filter");
        let mut to_fetch: Vec<&Task> = Vec::with_capacity(group.len());
        for task in group {
            let cached = self.cache.get(&task.key);
            quepa_obs::record_cache_probe(cached.is_some());
            match cached {
                Some(object) => {
                    sink.cache_hits += 1;
                    if self.admits(task, &object) {
                        sink.objects.push(AugmentedObject {
                            object,
                            probability: task.probability,
                            distance: task.distance,
                        });
                    }
                }
                None => to_fetch.push(task),
            }
        }
        if to_fetch.is_empty() {
            return Ok(());
        }
        let database: &DatabaseName = to_fetch[0].key.database();
        let collection: &CollectionName = to_fetch[0].key.collection();
        let keys: Vec<LocalKey> = to_fetch.iter().map(|t| t.key.key().clone()).collect();
        let fetched = match self.round_trip_pushdown(database, collection, &keys, filter) {
            Ok(fetched) => fetched,
            Err(error)
                if self.resilience.degrade == DegradeMode::Partial
                    && unreachable_reason(&error).is_some() =>
            {
                quepa_obs::record_pushdown_fallback(database.as_str());
                for task in &to_fetch {
                    self.fetch_one_uncached(task, sink)?;
                }
                return Ok(());
            }
            Err(error) => return Err(error.into()),
        };
        let mut wanted: HashMap<&GlobalKey, &Task> =
            to_fetch.iter().map(|t| (&t.key, *t)).collect();
        for object in fetched.matched {
            let Some(task) = wanted.remove(object.key()) else { continue };
            self.cache.insert(object.clone());
            sink.objects.push(AugmentedObject {
                object,
                probability: task.probability,
                distance: task.distance,
            });
        }
        let rejected: std::collections::HashSet<&LocalKey> = fetched.rejected.iter().collect();
        for task in &to_fetch {
            if wanted.contains_key(&task.key) && !rejected.contains(task.key.key()) {
                sink.missing.push(MissingKey::not_found(task.key.clone()));
            }
        }
        Ok(())
    }

    /// One pushdown round trip, resilient when configured. Shares its
    /// retry salt and fault identity with a `multi_get` of the same key
    /// list, so the planner's choice never changes which faults fire.
    fn round_trip_pushdown(
        &self,
        database: &DatabaseName,
        collection: &CollectionName,
        keys: &[LocalKey],
        filter: &Pushdown,
    ) -> std::result::Result<FilteredFetch, PolyError> {
        if self.resilience.is_trivial() {
            self.polystore.fetch_where(database, collection, keys, filter)
        } else {
            let breaker = self.breaker(database);
            self.polystore.fetch_where_resilient(
                database,
                collection,
                keys,
                filter,
                &self.resilience.retry,
                breaker.as_deref(),
            )
        }
    }

    /// The coalescing variant: the group's cache misses join the flight
    /// table as one atomic unit, the led subset travels in one round
    /// trip, and waiters settle from outcomes other queries publish.
    fn fetch_group_coalesced(
        &self,
        flight: &Arc<FlightTable>,
        group: &[Task],
        sink: &mut Sink,
    ) -> Result<()> {
        let mut to_join: Vec<&Task> = Vec::with_capacity(group.len());
        for task in group {
            match self.cache.probe(&task.key) {
                Some(object) => self.push_hit(task, object, sink),
                None => to_join.push(task),
            }
        }
        if to_join.is_empty() {
            return Ok(());
        }
        let keys: Vec<GlobalKey> = to_join.iter().map(|t| t.key.clone()).collect();
        let roles = flight.join_group(&keys, &self.cache);
        let mut leaders: Vec<(&Task, LeaderGuard)> = Vec::new();
        let mut waiters: Vec<(&Task, Arc<Flight>)> = Vec::new();
        for (task, role) in to_join.into_iter().zip(roles) {
            match role {
                KeyRole::Cached(object) => self.push_hit(task, object, sink),
                KeyRole::Leader(guard) => {
                    self.cache.tally_miss();
                    quepa_obs::record_cache_probe(false);
                    leaders.push((task, guard));
                }
                KeyRole::Waiter(f) => waiters.push((task, f)),
            }
        }
        if !leaders.is_empty() {
            self.lead_group(leaders, sink)?;
        }
        for (task, f) in waiters {
            let outcome = f.wait();
            self.settle_waiter(task, outcome, sink)?;
        }
        Ok(())
    }

    /// One round trip for the led subset of a group, publishing each
    /// key's outcome. On a degradable batch failure every key falls back
    /// to its own led round trip (mirroring the uncoalesced path).
    fn lead_group(&self, leaders: Vec<(&Task, LeaderGuard)>, sink: &mut Sink) -> Result<()> {
        let database = leaders[0].0.key.database().clone();
        let collection = leaders[0].0.key.collection().clone();
        let keys: Vec<LocalKey> = leaders.iter().map(|(t, _)| t.key.key().clone()).collect();
        let fetched = self.round_trip_group(&database, &collection, &keys);
        let fetched = match fetched {
            Ok(fetched) => fetched,
            Err(error)
                if self.resilience.degrade == DegradeMode::Partial
                    && unreachable_reason(&error).is_some() =>
            {
                for (task, guard) in leaders {
                    self.lead_one(task, guard, sink)?;
                }
                return Ok(());
            }
            // Propagating error: the dropped guards publish `Failed`, so
            // waiters in other queries fall back to their own fetch.
            Err(error) => return Err(error.into()),
        };
        let mut by_key: HashMap<GlobalKey, DataObject> =
            fetched.into_iter().map(|o| (o.key().clone(), o)).collect();
        for (task, guard) in leaders {
            match by_key.remove(&task.key) {
                Some(object) => {
                    guard.publish(&self.cache, FlightOutcome::Found(object.clone()));
                    sink.objects.push(AugmentedObject {
                        object,
                        probability: task.probability,
                        distance: task.distance,
                    });
                }
                None => {
                    guard.publish(&self.cache, FlightOutcome::NotFound);
                    sink.missing.push(MissingKey::not_found(task.key.clone()));
                }
            }
        }
        Ok(())
    }

    /// One group round trip, resilient when configured.
    fn round_trip_group(
        &self,
        database: &DatabaseName,
        collection: &CollectionName,
        keys: &[LocalKey],
    ) -> std::result::Result<Vec<DataObject>, PolyError> {
        if self.resilience.is_trivial() {
            self.polystore.multi_get(database, collection, keys)
        } else {
            let breaker = self.breaker(database);
            self.polystore.multi_get_resilient(
                database,
                collection,
                keys,
                &self.resilience.retry,
                breaker.as_deref(),
            )
        }
    }

    // -- strategies ---------------------------------------------------------

    fn sequential(&self, owned: &[Vec<Task>]) -> Result<Sink> {
        let mut sink = Sink::default();
        for task in owned.iter().flatten() {
            self.fetch_one(task, &mut sink)?;
        }
        Ok(sink)
    }

    /// Inner concurrency: seeds in sequence, each seed's tasks spread over
    /// up to `threads` workers.
    fn inner(
        &self,
        owned: Vec<Vec<Task>>,
        threads: usize,
        pool: Option<&WorkerPool>,
    ) -> Result<Sink> {
        let mut sink = Sink::default();
        for tasks in owned {
            if tasks.is_empty() {
                continue;
            }
            let units: Vec<Vec<Task>> = tasks.into_iter().map(|t| vec![t]).collect();
            sink.merge(self.execute(units, UnitMode::Singles, threads, pool)?);
        }
        Ok(sink)
    }

    /// Runs one unit — a batch group, a pushdown group or a run of
    /// single-key fetches — into a ticket's local sink.
    fn run_unit(&self, unit: &[Task], mode: UnitMode, sink: &mut Sink) -> Result<()> {
        match mode {
            UnitMode::Group => self.fetch_group(unit, sink),
            UnitMode::PushdownGroup => self.fetch_group_pushdown(unit, sink),
            UnitMode::Singles => {
                for task in unit {
                    self.fetch_one(task, sink)?;
                }
                Ok(())
            }
        }
    }

    /// The ticket executor: `tickets` workers claim `units` off a shared
    /// cursor, each into its own sink shard, merged in ticket order. With
    /// a pool the tickets are pool jobs and the caller parks on a latch;
    /// without one they are scoped threads (one-shot executions).
    fn execute(
        &self,
        units: Vec<Vec<Task>>,
        mode: UnitMode,
        tickets: usize,
        pool: Option<&WorkerPool>,
    ) -> Result<Sink> {
        if units.is_empty() {
            return Ok(Sink::default());
        }
        let tickets = tickets.min(units.len()).max(1);
        if tickets == 1 {
            let mut sink = Sink::default();
            for unit in &units {
                self.run_unit(unit, mode, &mut sink)?;
            }
            return Ok(sink);
        }
        match pool {
            Some(pool) => self.execute_pooled(units, mode, tickets, pool),
            None => self.execute_scoped(&units, mode, tickets),
        }
    }

    fn execute_pooled(
        &self,
        units: Vec<Vec<Task>>,
        mode: UnitMode,
        tickets: usize,
        pool: &WorkerPool,
    ) -> Result<Sink> {
        let state = Arc::new(TicketBatch {
            engine: self.clone(),
            units,
            mode,
            next: AtomicUsize::new(0),
            slots: parking_lot::Mutex::new((0..tickets).map(|_| None).collect()),
            latch: Latch::new(tickets),
        });
        for ticket in 0..tickets {
            let state = Arc::clone(&state);
            pool.submit(move || {
                let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| state.run_ticket()));
                state.slots.lock()[ticket] = Some(outcome);
                state.latch.count_down();
            });
        }
        state.latch.wait();
        let slots = std::mem::take(&mut *state.slots.lock());
        let mut results = Vec::with_capacity(tickets);
        for slot in slots {
            match slot.expect("every ticket reported before the latch opened") {
                Ok(result) => results.push(result),
                // Mirror the scoped executor: a panicking worker panics
                // the submitting query, first ticket order wins.
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
        let mut sink = Sink::default();
        merge_shards(results, &mut sink)?;
        Ok(sink)
    }

    fn execute_scoped(&self, units: &[Vec<Task>], mode: UnitMode, tickets: usize) -> Result<Sink> {
        let next = AtomicUsize::new(0);
        let results = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..tickets)
                .map(|_| {
                    scope.spawn(|_| {
                        let _ctx = self.observe_fetch();
                        let mut local = Sink::default();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= units.len() {
                                return Ok(local);
                            }
                            self.run_unit(&units[i], mode, &mut local)?;
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("augmentation worker panicked"))
                .collect::<Vec<Result<Sink>>>()
        })
        .expect("augmentation worker panicked");
        let mut sink = Sink::default();
        merge_shards(results, &mut sink)?;
        Ok(sink)
    }
}
