//! Run logs: the training set of the adaptive optimizer (§V Phase 1).
//!
//! "We keep the logs of the completed augmentation runs. They include QUEPA
//! parameters such as BATCH_SIZE or THREADS_SIZE, the overall execution
//! time and the characteristics of the query (i.e. target database, number
//! of original data objects in the result, number of augmented data
//! objects)."

use std::time::Duration;

use quepa_polystore::StoreKind;

use crate::config::QuepaConfig;

/// The query/polystore characteristics the optimizer sees.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryFeatures {
    /// Paradigm of the target database.
    pub target_kind: StoreKind,
    /// Number of databases in the polystore.
    pub store_count: usize,
    /// Objects in the local (original) answer.
    pub result_size: usize,
    /// Objects the augmentation will retrieve (known from the A' index
    /// before touching the polystore).
    pub augmented_size: usize,
    /// Augmentation level.
    pub level: usize,
    /// True in the distributed deployment (high link latency).
    pub distributed: bool,
    /// True when the augmentation carries a pushdown-eligible filter.
    pub filtered: bool,
}

/// One completed augmentation run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunLog {
    /// The query characteristics.
    pub features: QueryFeatures,
    /// The configuration that executed it.
    pub config: QuepaConfig,
    /// End-to-end execution time.
    pub duration: Duration,
}

impl RunLog {
    /// A grouping key: runs with these identical characteristics answer
    /// "the same situation", so the fastest of them defines the best
    /// configuration for training.
    pub fn situation(&self) -> (StoreKind, usize, usize, usize, usize, bool, bool) {
        let f = &self.features;
        (
            f.target_kind,
            f.store_count,
            bucket(f.result_size),
            bucket(f.augmented_size),
            f.level,
            f.distributed,
            f.filtered,
        )
    }
}

/// Log-scale size bucket: sizes within the same power-of-two range are the
/// same situation (exact result sizes never repeat across queries).
fn bucket(n: usize) -> usize {
    (usize::BITS - n.leading_zeros()) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AugmenterKind;

    fn log(result_size: usize, augmenter: AugmenterKind, ms: u64) -> RunLog {
        RunLog {
            features: QueryFeatures {
                target_kind: StoreKind::Relational,
                store_count: 10,
                result_size,
                augmented_size: result_size * 4,
                level: 0,
                distributed: false,
                filtered: false,
            },
            config: QuepaConfig::with_augmenter(augmenter),
            duration: Duration::from_millis(ms),
        }
    }

    #[test]
    fn situations_bucket_sizes() {
        // 1000 and 1023 are the same situation; 1000 and 5000 are not.
        assert_eq!(
            log(1000, AugmenterKind::Batch, 1).situation(),
            log(1023, AugmenterKind::Outer, 9).situation()
        );
        assert_ne!(
            log(1000, AugmenterKind::Batch, 1).situation(),
            log(5000, AugmenterKind::Batch, 1).situation()
        );
    }

    #[test]
    fn bucket_monotone() {
        assert_eq!(bucket(0), 0);
        assert_eq!(bucket(1), 1);
        assert_eq!(bucket(2), 2);
        assert_eq!(bucket(3), 2);
        assert_eq!(bucket(4), 3);
        assert!(bucket(10_000) > bucket(100));
    }
}
