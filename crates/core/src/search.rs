//! Augmented search (Definition 3): the answer type.

use std::time::Duration;

use quepa_pdm::DataObject;

use crate::augmenter::{AugmentedObject, MissingKey};
use crate::config::QuepaConfig;

/// The result of an augmented search `Q^S_{(n)}(D)`: the local answer plus
/// the related objects found in the rest of the polystore, ordered by the
/// probability of their relation to the answer.
#[derive(Debug, Clone)]
pub struct AugmentedAnswer {
    /// The local answer, exactly as the store returned it.
    pub original: Vec<DataObject>,
    /// The augmentation, ordered by decreasing probability.
    pub augmented: Vec<AugmentedObject>,
    /// The configuration that executed the augmentation (relevant when the
    /// adaptive optimizer chose it per query).
    pub config_used: QuepaConfig,
    /// End-to-end execution time (local query + augmentation).
    pub duration: Duration,
    /// Lookups answered by the LRU cache.
    pub cache_hits: usize,
    /// Objects the A' index referenced but the polystore no longer stores
    /// (they were lazily deleted from the index during this run).
    pub lazily_deleted: usize,
    /// Every referenced key the augmentation could not deliver, with a
    /// structured reason: not found (lazily deleted) or unreachable
    /// (store down / retries exhausted, under partial degradation).
    pub missing: Vec<MissingKey>,
}

/// Probability bands for intuitive presentation — "colors (as in the
/// example above) and rankings can be used in practice to represent
/// probability in a more intuitive way" (§I). The thresholds mirror the
/// experiment setup: identity ≥ 0.9, matching ≥ 0.6.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbabilityBand {
    /// `p ≥ 0.9` — effectively the same entity.
    Certain,
    /// `0.75 ≤ p < 0.9` — strongly related.
    Strong,
    /// `0.6 ≤ p < 0.75` — related.
    Moderate,
    /// `p < 0.6` — weakly related (usually a multi-hop path).
    Weak,
}

impl ProbabilityBand {
    /// Classifies a probability.
    pub fn of(p: quepa_pdm::Probability) -> Self {
        let p = p.get();
        if p >= 0.9 {
            ProbabilityBand::Certain
        } else if p >= 0.75 {
            ProbabilityBand::Strong
        } else if p >= 0.6 {
            ProbabilityBand::Moderate
        } else {
            ProbabilityBand::Weak
        }
    }

    /// The ANSI color code used by the colored rendering.
    pub fn ansi(self) -> &'static str {
        match self {
            ProbabilityBand::Certain => "\u{1b}[32m",  // green
            ProbabilityBand::Strong => "\u{1b}[36m",   // cyan
            ProbabilityBand::Moderate => "\u{1b}[33m", // yellow
            ProbabilityBand::Weak => "\u{1b}[90m",     // gray
        }
    }

    /// A short label for non-ANSI sinks.
    pub fn label(self) -> &'static str {
        match self {
            ProbabilityBand::Certain => "certain",
            ProbabilityBand::Strong => "strong",
            ProbabilityBand::Moderate => "moderate",
            ProbabilityBand::Weak => "weak",
        }
    }
}

impl AugmentedAnswer {
    /// Total objects across the original answer and the augmentation.
    pub fn total_objects(&self) -> usize {
        self.original.len() + self.augmented.len()
    }

    /// Renders the answer in the paper's arrow notation, e.g.
    /// `<a32, Cure, Wish> ⇒ (discounts.drop.k1:cure:wish: "40%") [p=0.68]`.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for obj in &self.original {
            let _ = writeln!(out, "{obj}");
        }
        for a in &self.augmented {
            let _ = writeln!(out, "  ⇒ {} [p={}]", a.object, a.probability);
        }
        out
    }

    /// Like [`render`](AugmentedAnswer::render) but with each related
    /// object colored by its [`ProbabilityBand`] (ANSI escapes).
    pub fn render_colored(&self) -> String {
        use std::fmt::Write;
        const RESET: &str = "\u{1b}[0m";
        let mut out = String::new();
        for obj in &self.original {
            let _ = writeln!(out, "{obj}");
        }
        for a in &self.augmented {
            let band = ProbabilityBand::of(a.probability);
            let _ = writeln!(
                out,
                "  {}⇒ {} [p={} {}]{RESET}",
                band.ansi(),
                a.object,
                a.probability,
                band.label(),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quepa_pdm::{Probability, Value};

    #[test]
    fn render_and_totals() {
        let answer = AugmentedAnswer {
            original: vec![DataObject::new(
                "transactions.inventory.a32".parse().unwrap(),
                Value::object([("name", Value::str("Wish"))]),
            )],
            augmented: vec![AugmentedObject {
                object: DataObject::new(
                    "discount.drop.k1:cure:wish".parse().unwrap(),
                    Value::str("40%"),
                ),
                probability: Probability::of(0.68),
                distance: 1,
            }],
            config_used: QuepaConfig::default(),
            duration: Duration::from_millis(3),
            cache_hits: 0,
            lazily_deleted: 0,
            missing: Vec::new(),
        };
        assert_eq!(answer.total_objects(), 2);
        let text = answer.render();
        assert!(text.contains("a32"));
        assert!(text.contains('⇒'));
        assert!(text.contains("p=0.680"));
        let colored = answer.render_colored();
        assert!(colored.contains("\u{1b}[33m"), "0.68 is the moderate band: {colored:?}");
        assert!(colored.contains("moderate"));
    }

    #[test]
    fn probability_bands() {
        use quepa_pdm::Probability;
        assert_eq!(ProbabilityBand::of(Probability::of(0.95)), ProbabilityBand::Certain);
        assert_eq!(ProbabilityBand::of(Probability::of(0.9)), ProbabilityBand::Certain);
        assert_eq!(ProbabilityBand::of(Probability::of(0.8)), ProbabilityBand::Strong);
        assert_eq!(ProbabilityBand::of(Probability::of(0.6)), ProbabilityBand::Moderate);
        assert_eq!(ProbabilityBand::of(Probability::of(0.3)), ProbabilityBand::Weak);
        assert!(ProbabilityBand::Certain.ansi().starts_with('\u{1b}'));
    }
}
