//! Augmented exploration (Definition 4): a guided, step-by-step expansion
//! of a local answer, "where the user can freely find her way through the
//! polystore, by just clicking on the links as soon as they are made
//! available".

use std::time::Instant;

use quepa_pdm::{DataObject, GlobalKey};
use quepa_polystore::StoreKind;

use crate::augmenter::AugmentedObject;
use crate::error::{QuepaError, Result};
use crate::system::Quepa;

/// An interactive exploration over the answer of a local query.
///
/// The session tracks the full path `v₀ … v_k` of selected objects; on
/// [`finish`](ExplorationSession::finish) the path lands in the `D_P`
/// repository, possibly promoting a shortcut p-relation (§III-D(a)).
pub struct ExplorationSession<'q> {
    quepa: &'q Quepa,
    target_kind: StoreKind,
    original: Vec<DataObject>,
    /// The current frontier: what the user can click next.
    frontier: Vec<AugmentedObject>,
    /// The selected objects so far (the full path).
    path: Vec<GlobalKey>,
    steps: usize,
}

impl<'q> ExplorationSession<'q> {
    pub(crate) fn new(quepa: &'q Quepa, original: Vec<DataObject>, target_kind: StoreKind) -> Self {
        ExplorationSession {
            quepa,
            target_kind,
            original,
            frontier: Vec::new(),
            path: Vec::new(),
            steps: 0,
        }
    }

    /// The local answer of the starting query.
    pub fn results(&self) -> &[DataObject] {
        &self.original
    }

    /// What the user can click right now (the links of the last expansion),
    /// ordered by probability.
    pub fn frontier(&self) -> &[AugmentedObject] {
        &self.frontier
    }

    /// The path of selected objects so far.
    pub fn path(&self) -> &[GlobalKey] {
        &self.path
    }

    /// Number of expansion steps taken.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Step 1: selects the `index`-th object of the *original answer* and
    /// expands it (`O₀ = α⁰([o₀])`).
    pub fn select(&mut self, index: usize) -> Result<&[AugmentedObject]> {
        let object = self
            .original
            .get(index)
            .ok_or(QuepaError::BadSelection { index, available: self.original.len() })?
            .clone();
        self.expand(object, 0)
    }

    /// Steps 2…k: selects the `index`-th object of the current *frontier*
    /// and expands it (`Oᵢ = α¹([oᵢ])`), hiding objects already visited on
    /// this path.
    pub fn step(&mut self, index: usize) -> Result<&[AugmentedObject]> {
        let object = self
            .frontier
            .get(index)
            .ok_or(QuepaError::BadSelection { index, available: self.frontier.len() })?
            .object
            .clone();
        self.expand(object, 1)
    }

    fn expand(&mut self, object: DataObject, level: usize) -> Result<&[AugmentedObject]> {
        let start = Instant::now();
        let key = object.key().clone();
        let answer = self.quepa.augment_objects(
            std::slice::from_ref(&object),
            level,
            self.target_kind,
            start,
        )?;
        self.path.push(key);
        self.frontier =
            answer.augmented.into_iter().filter(|a| !self.path.contains(a.object.key())).collect();
        self.steps += 1;
        Ok(&self.frontier)
    }

    /// Ends the exploration, recording the traversed path in `D_P` and
    /// applying any p-relation promotion it triggers. Returns whether a
    /// promotion fired.
    pub fn finish(self) -> bool {
        if self.path.len() < 3 {
            return false;
        }
        let mut paths = self.quepa.paths();
        self.quepa.update_index(|index| paths.record_and_promote(&self.path, index).is_some())
    }
}
