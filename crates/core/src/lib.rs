//! # quepa-core — the augmentation operator and the QUEPA system
//!
//! This crate is the paper's primary contribution, assembled:
//!
//! * [`config`] — the augmenter family ([`AugmenterKind`]) and the knob set
//!   (`BATCH_SIZE`, `THREADS_SIZE`, `CACHE_SIZE`) a [`QuepaConfig`] bundles;
//! * [`cache`] — the LRU object cache of §IV-C (the Ehcache role);
//! * [`validator`] — §III-A's Validator: decides whether a native query can
//!   be augmented (aggregates cannot) and rewrites it when the key column
//!   is not in the projection;
//! * [`augmenter`] — the execution engine for the augmentation construct:
//!   SEQUENTIAL plus the network-efficient BATCH (§IV-A), the CPU-efficient
//!   INNER / OUTER / OUTER-BATCH / OUTER-INNER (§IV-B), all with the LRU
//!   cache in front of the polystore and the lazy-deletion signal of
//!   §III-C;
//! * [`search`] / [`explore`] — the two access methods: **augmented
//!   search** (Definition 3) and **augmented exploration** (Definition 4),
//!   the latter feeding the `D_P` path repository for p-relation promotion;
//! * [`logs`] — run logs, the ADAPTIVE optimizer's training set (§V
//!   Phase 1);
//! * [`adaptive`] — the rule-based optimizer: `T1` (C4.5) chooses the
//!   augmenter, `T2`–`T4` (REPTrees) choose the knobs, plus the HUMAN and
//!   RANDOM baselines of §VII-C;
//! * [`analytics`] — probability-weighted aggregation over augmented
//!   answers (the paper's stated future work, §VIII);
//! * [`system`] — [`Quepa`], the facade wiring polystore + A' index +
//!   augmenters + optimizer together;
//! * [`durability`] — the optional durable mode: write-ahead logging of
//!   index mutations plus incremental checkpoint cuts, with bit-exact
//!   crash recovery (`create_durable` / `recover_durable` /
//!   `apply_mutations` / `checkpoint_durable`).
//!
//! On top of the paper, the crate carries a **resilience model**
//! ([`ResilienceConfig`]): retries with deterministic backoff, per-store
//! circuit breakers, and — under [`DegradeMode::Partial`] — partial-answer
//! degradation, where unreachable stores shrink the augmentation instead
//! of failing it and the affected keys land in
//! [`AugmentedAnswer::missing`] with a structured [`MissingReason`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod analytics;
pub mod augmenter;
pub mod cache;
pub mod config;
pub mod durability;
pub mod error;
pub mod explore;
pub mod flight;
pub mod logs;
pub mod normal;
pub mod pool;
pub mod search;
pub mod snapshot;
pub mod system;
pub mod validator;

pub use adaptive::{AdaptiveOptimizer, HumanOptimizer, OnlineOptimizer, Optimizer, RandomOptimizer};
pub use augmenter::{
    AugmentationOutcome, AugmentedObject, DecisionReason, GroupDecision, GroupStrategy, MissingKey,
    MissingReason,
};
pub use cache::ObjectCache;
pub use config::{AugmenterKind, DegradeMode, QuepaConfig, ResilienceConfig};
pub use durability::{
    dir_has_state, DurabilityStatus, IndexOp, Lsn, RecoveryOptions, RecoveryReport, SyncPolicy,
};
pub use error::{QuepaError, Result};
pub use explore::ExplorationSession;
pub use flight::{FlightOutcome, FlightTable};
pub use logs::{QueryFeatures, RunLog};
pub use normal::{AnswerNormalForm, NormalEntry};
pub use pool::{pool_width, Latch, WorkerPool};
pub use quepa_obs::{MetricsRegistry, MetricsSnapshot};
pub use search::{AugmentedAnswer, ProbabilityBand};
pub use system::Quepa;
pub use validator::Validator;
