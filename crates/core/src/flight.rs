//! Cross-query single-flight coalescing for key fetches.
//!
//! When concurrent queries want the same `(database, key)` at the same
//! moment, only one of them — the *leader* — performs the store round
//! trip; the others park as *waiters* and receive the published outcome.
//! The flight table is the in-flight extension of the LRU cache: a
//! waiter that is handed a `Found` object accounts it exactly like a
//! cache hit (which is what a serial execution of the same queries would
//! have seen), so per-query answers and metrics stay identical to the
//! serial run.
//!
//! Ordering contract that makes the serial-equality argument work:
//!
//! 1. A leader publishing `Found` inserts the object into the cache
//!    *before* removing its flight entry (the removal takes the shard
//!    lock). A joiner that finds no entry therefore re-checks the cache
//!    under that same shard lock — the window between "flight gone" and
//!    "cache filled" is closed, so no query ever performs a redundant
//!    round trip for a key that was just coalesced.
//! 2. [`FlightTable::join_group`] registers *all* keys of a batch group
//!    atomically (locking the involved shards in ascending order), so
//!    for identical concurrent queries each batch group has exactly one
//!    leader — the round-trip count and group composition match the
//!    serial run, which is what keeps metrics snapshots bit-identical.
//! 3. A leader whose round trip fails publishes `Failed`; waiters fall
//!    back to their own direct fetch, preserving per-query retry and
//!    breaker accounting under faults. The guard publishes `Failed` on
//!    drop, so a panicking leader can never strand its waiters.
//!
//! Coalescing is only engaged when the cache is enabled: with
//! `CACHE_SIZE = 0` a serial run performs every round trip itself, so
//! sharing one would *change* observable behaviour, not preserve it.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

use quepa_pdm::{DataObject, GlobalKey};

use crate::cache::ObjectCache;

/// Flight-table shard fan-out.
const SHARD_COUNT: usize = 16;

/// What a completed flight produced.
#[derive(Debug, Clone)]
pub enum FlightOutcome {
    /// The round trip returned the object (it is already in the cache).
    Found(DataObject),
    /// The store answered and the object is gone (lazy-deletion signal).
    NotFound,
    /// The leader's round trip failed — waiters must fetch for
    /// themselves so their own retry/breaker accounting applies.
    Failed,
}

enum FlightState {
    Pending,
    Done(FlightOutcome),
}

/// One in-flight fetch; waiters park on `done` until the leader
/// publishes.
pub struct Flight {
    state: Mutex<FlightState>,
    done: Condvar,
}

impl Flight {
    fn new() -> Self {
        Flight { state: Mutex::new(FlightState::Pending), done: Condvar::new() }
    }

    /// Parks until the leader publishes, then returns the outcome.
    pub fn wait(&self) -> FlightOutcome {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let FlightState::Done(outcome) = &*state {
                return outcome.clone();
            }
            state = self.done.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn publish(&self, outcome: FlightOutcome) {
        *self.state.lock().unwrap_or_else(|e| e.into_inner()) = FlightState::Done(outcome);
        self.done.notify_all();
    }
}

impl std::fmt::Debug for Flight {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Flight")
    }
}

/// A joiner's role for one key.
#[derive(Debug)]
pub enum KeyRole {
    /// The cache answered while holding the shard lock (a flight for this
    /// key just landed) — account it as a plain cache hit.
    Cached(DataObject),
    /// This query leads: perform the round trip and publish through the
    /// guard.
    Leader(LeaderGuard),
    /// Another query is already fetching this key — wait for its
    /// published outcome.
    Waiter(Arc<Flight>),
}

/// The sharded registry of in-flight fetches, shared by every query of
/// one `Quepa` instance.
#[derive(Debug)]
pub struct FlightTable {
    shards: Vec<parking_lot::Mutex<HashMap<GlobalKey, Arc<Flight>>>>,
}

impl Default for FlightTable {
    fn default() -> Self {
        Self::new()
    }
}

impl FlightTable {
    /// An empty flight table.
    pub fn new() -> Self {
        FlightTable {
            shards: (0..SHARD_COUNT).map(|_| parking_lot::Mutex::new(HashMap::new())).collect(),
        }
    }

    fn shard_of(&self, key: &GlobalKey) -> usize {
        let mixed = key.precomputed_hash().wrapping_mul(0x9e37_79b9_7f4a_7c15);
        (mixed >> 32) as usize % self.shards.len()
    }

    /// Joins one key (a single-key group).
    pub fn join(self: &Arc<Self>, key: &GlobalKey, cache: &ObjectCache) -> KeyRole {
        self.join_group(std::slice::from_ref(key), cache).pop().expect("one role per key")
    }

    /// Joins every key of a batch group atomically: the involved shards
    /// are locked together (in ascending order — no deadlock), so
    /// concurrent queries fetching the same group see it either wholly
    /// unclaimed or wholly in flight, never split. Returns one
    /// [`KeyRole`] per key, in input order.
    pub fn join_group(self: &Arc<Self>, keys: &[GlobalKey], cache: &ObjectCache) -> Vec<KeyRole> {
        let mut shard_ids: Vec<usize> = keys.iter().map(|k| self.shard_of(k)).collect();
        let mut order = shard_ids.clone();
        order.sort_unstable();
        order.dedup();
        let mut guards: HashMap<usize, _> =
            order.iter().map(|&i| (i, self.shards[i].lock())).collect();
        let mut roles = Vec::with_capacity(keys.len());
        for (key, shard) in keys.iter().zip(shard_ids.drain(..)) {
            let map = guards.get_mut(&shard).expect("shard locked");
            if let Some(flight) = map.get(key) {
                roles.push(KeyRole::Waiter(Arc::clone(flight)));
                continue;
            }
            // No flight: any earlier one has fully landed, and it filled
            // the cache before dropping its entry — probe under the shard
            // lock so a just-coalesced object is not fetched again.
            if let Some(object) = cache.probe(key) {
                roles.push(KeyRole::Cached(object));
                continue;
            }
            let flight = Arc::new(Flight::new());
            map.insert(key.clone(), Arc::clone(&flight));
            roles.push(KeyRole::Leader(LeaderGuard {
                table: Arc::clone(self),
                key: key.clone(),
                flight,
                published: false,
            }));
        }
        roles
    }

    fn land(&self, key: &GlobalKey, flight: &Arc<Flight>, outcome: FlightOutcome) {
        {
            let mut map = self.shards[self.shard_of(key)].lock();
            map.remove(key);
        }
        flight.publish(outcome);
    }

    /// In-flight fetches right now (diagnostics and tests).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True when nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Proof of leadership for one key. The leader performs the round trip
/// and must [`publish`](LeaderGuard::publish) the outcome; dropping the
/// guard unpublished lands the flight as [`FlightOutcome::Failed`], so
/// waiters are released (to their own fallback fetch) even if the leader
/// panics.
#[derive(Debug)]
pub struct LeaderGuard {
    table: Arc<FlightTable>,
    key: GlobalKey,
    flight: Arc<Flight>,
    published: bool,
}

impl LeaderGuard {
    /// Publishes the round trip's outcome. `Found` objects enter `cache`
    /// *before* the flight entry is removed — see the module contract.
    pub fn publish(mut self, cache: &ObjectCache, outcome: FlightOutcome) {
        if let FlightOutcome::Found(object) = &outcome {
            cache.insert(object.clone());
        }
        self.published = true;
        self.table.land(&self.key, &self.flight, outcome);
    }
}

impl Drop for LeaderGuard {
    fn drop(&mut self) {
        if !self.published {
            self.table.land(&self.key, &self.flight, FlightOutcome::Failed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quepa_pdm::Value;

    fn obj(i: usize) -> DataObject {
        DataObject::new(
            format!("d.c.k{i}").parse().unwrap(),
            Value::object([("n", Value::Int(i as i64))]),
        )
    }

    fn key(i: usize) -> GlobalKey {
        format!("d.c.k{i}").parse().unwrap()
    }

    #[test]
    fn exactly_one_leader_per_key() {
        let table = Arc::new(FlightTable::new());
        let cache = ObjectCache::new(64);
        let first = table.join(&key(1), &cache);
        let second = table.join(&key(1), &cache);
        assert!(matches!(first, KeyRole::Leader(_)));
        assert!(matches!(second, KeyRole::Waiter(_)));
    }

    #[test]
    fn waiters_receive_the_published_object() {
        let table = Arc::new(FlightTable::new());
        let cache = Arc::new(ObjectCache::new(64));
        let KeyRole::Leader(guard) = table.join(&key(1), &cache) else { panic!("leads") };
        let waiters: Vec<_> = (0..4)
            .map(|_| {
                let KeyRole::Waiter(f) = table.join(&key(1), &cache) else { panic!("waits") };
                std::thread::spawn(move || f.wait())
            })
            .collect();
        guard.publish(&cache, FlightOutcome::Found(obj(1)));
        for w in waiters {
            assert!(matches!(w.join().unwrap(), FlightOutcome::Found(_)));
        }
        assert!(table.is_empty(), "the flight landed");
        assert!(cache.probe(&key(1)).is_some(), "published objects enter the cache");
    }

    #[test]
    fn late_joiner_sees_the_cache_not_a_new_flight() {
        let table = Arc::new(FlightTable::new());
        let cache = ObjectCache::new(64);
        let KeyRole::Leader(guard) = table.join(&key(1), &cache) else { panic!("leads") };
        guard.publish(&cache, FlightOutcome::Found(obj(1)));
        assert!(matches!(table.join(&key(1), &cache), KeyRole::Cached(_)));
    }

    #[test]
    fn dropped_guard_releases_waiters_as_failed() {
        let table = Arc::new(FlightTable::new());
        let cache = ObjectCache::new(64);
        let KeyRole::Leader(guard) = table.join(&key(1), &cache) else { panic!("leads") };
        let KeyRole::Waiter(f) = table.join(&key(1), &cache) else { panic!("waits") };
        drop(guard);
        assert!(matches!(f.wait(), FlightOutcome::Failed));
        assert!(table.is_empty());
    }

    #[test]
    fn group_join_is_atomic_per_group() {
        let table = Arc::new(FlightTable::new());
        let cache = ObjectCache::new(64);
        let keys: Vec<GlobalKey> = (0..8).map(key).collect();
        let first = table.join_group(&keys, &cache);
        assert!(first.iter().all(|r| matches!(r, KeyRole::Leader(_))));
        let second = table.join_group(&keys, &cache);
        assert!(second.iter().all(|r| matches!(r, KeyRole::Waiter(_))));
        drop(first);
        drop(second);
        assert!(table.is_empty());
    }

    #[test]
    fn concurrent_joins_elect_a_single_leader() {
        let table = Arc::new(FlightTable::new());
        let cache = Arc::new(ObjectCache::new(64));
        let barrier = Arc::new(std::sync::Barrier::new(8));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let table = Arc::clone(&table);
                let cache = Arc::clone(&cache);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    match table.join(&key(7), &cache) {
                        KeyRole::Leader(guard) => {
                            guard.publish(&cache, FlightOutcome::Found(obj(7)));
                            1usize
                        }
                        KeyRole::Waiter(f) => {
                            assert!(matches!(f.wait(), FlightOutcome::Found(_)));
                            0
                        }
                        KeyRole::Cached(_) => 0,
                    }
                })
            })
            .collect();
        let leaders: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(leaders, 1, "one round trip for 8 concurrent joiners");
    }
}
