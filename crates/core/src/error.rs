//! QUEPA-level errors.

use std::fmt;

use quepa_polystore::PolyError;

/// Convenience alias.
pub type Result<T> = std::result::Result<T, QuepaError>;

/// Errors surfacing from augmented access.
#[derive(Debug, Clone, PartialEq)]
pub enum QuepaError {
    /// The query cannot be augmented (e.g. it aggregates) — the Validator's
    /// verdict.
    NotAugmentable {
        /// Why the query was refused.
        reason: String,
    },
    /// The query text could not be understood well enough to validate.
    Validation(String),
    /// Errors from the polystore layer.
    Polystore(PolyError),
    /// An exploration step referenced a result position that does not
    /// exist.
    BadSelection {
        /// The requested index.
        index: usize,
        /// How many results were available.
        available: usize,
    },
    /// The durability layer failed (WAL append, checkpoint write, or
    /// recovery). Carries the rendered cause: the underlying error owns
    /// an `io::Error` and cannot be cloned.
    Durability(String),
}

impl fmt::Display for QuepaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuepaError::NotAugmentable { reason } => {
                write!(f, "query cannot be augmented: {reason}")
            }
            QuepaError::Validation(m) => write!(f, "validation error: {m}"),
            QuepaError::Polystore(e) => write!(f, "polystore error: {e}"),
            QuepaError::BadSelection { index, available } => {
                write!(f, "selection {index} out of range (result has {available} objects)")
            }
            QuepaError::Durability(m) => write!(f, "durability error: {m}"),
        }
    }
}

impl From<quepa_wal::WalError> for QuepaError {
    fn from(e: quepa_wal::WalError) -> Self {
        QuepaError::Durability(e.to_string())
    }
}

impl std::error::Error for QuepaError {}

impl From<PolyError> for QuepaError {
    fn from(e: PolyError) -> Self {
        QuepaError::Polystore(e)
    }
}
