//! Durable mode for the [`Quepa`] system: WAL + checkpoint cuts.
//!
//! A volatile instance loses its A' index on restart and must re-run
//! the whole linkage pipeline. A *durable* instance attaches a
//! directory holding a write-ahead log of logical index mutations
//! ([`IndexOp`]) and incremental checkpoint cuts of the sharded
//! projection (see `quepa-wal`). The commit path for one mutation
//! batch is:
//!
//! 1. append the batch to the WAL (fsync per [`SyncPolicy`]);
//! 2. ask every store to flush its own pending writes
//!    ([`Polystore::commit_durable_all`]) — QUEPA's durable state never
//!    runs ahead of the stores it indexes;
//! 3. apply the batch to the sharded index;
//! 4. if the drain compacted a shard, write a checkpoint cut at this
//!    LSN (re-serializing only dirty shards) and truncate the WAL.
//!
//! The whole sequence holds the durability lock, so WAL order is apply
//! order. Recovery ([`Quepa::recover_durable`]) loads the newest cut,
//! replays the WAL tail, and answers **bit-identically** to the
//! never-crashed instance — the crash-point differential harness in
//! `quepa-check` pins that end to end.
//!
//! Closure-based mutations ([`Quepa::update_index`] — e.g. promotion
//! during exploration) are not WAL-logged: in durable mode they mark
//! the state *stale*, and the next durable commit or explicit
//! [`Quepa::checkpoint_durable`] first writes a full cut capturing
//! them. A crash before that cut loses the un-logged mutation but never
//! corrupts recovery — the WAL tail always replays against the state
//! its records were computed on.

use std::path::{Path, PathBuf};

use parking_lot::Mutex;
use quepa_aindex::shard::route;
use quepa_aindex::{AIndex, ShardedIndex, SHARD_COUNT};
use quepa_polystore::Polystore;
pub use quepa_wal::{dir_has_state, IndexOp, Lsn, RecoveryOptions, RecoveryReport, SyncPolicy};
use quepa_wal::{Wal, WalError};

use crate::config::QuepaConfig;
use crate::error::{QuepaError, Result};
use crate::system::Quepa;

/// The durability attachment of a [`Quepa`] instance.
pub struct Durability {
    dir: PathBuf,
    sync: SyncPolicy,
    state: Mutex<DurableState>,
}

struct DurableState {
    wal: Wal,
    /// Shards whose serialized form may differ from the last cut.
    dirty: [bool; SHARD_COUNT],
    /// Whether any cut exists to carry clean shards over from.
    have_cut: bool,
    /// A closure mutation bypassed the WAL since the last cut; the next
    /// commit or checkpoint must start with a full cut.
    stale: bool,
    cuts_written: u64,
    records_appended: u64,
}

/// A point-in-time description of an instance's durability attachment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurabilityStatus {
    /// The durable directory.
    pub dir: PathBuf,
    /// Last LSN in the log.
    pub last_lsn: Lsn,
    /// Checkpoint cuts written since attach.
    pub cuts_written: u64,
    /// WAL records appended since attach.
    pub records_appended: u64,
}

impl Durability {
    fn write_cut_locked(
        &self,
        index: &ShardedIndex,
        st: &mut DurableState,
        lsn: Lsn,
    ) -> Result<()> {
        let full = !st.have_cut || st.stale;
        quepa_wal::write_cut(&self.dir, lsn, |shard| {
            (full || st.dirty[shard]).then(|| index.serialize_shard(shard))
        })?;
        st.wal.truncate_upto(lsn).map_err(wal_err)?;
        st.dirty = [false; SHARD_COUNT];
        st.have_cut = true;
        st.stale = false;
        st.cuts_written += 1;
        Ok(())
    }

    /// Runs a WAL-bypassing mutation under the durability lock and marks
    /// the state stale, so no concurrent commit can cut a half-observed
    /// state and the next commit starts with a full cut.
    pub(crate) fn bypass<R>(&self, f: impl FnOnce() -> R) -> R {
        let mut st = self.state.lock();
        let out = f();
        st.stale = true;
        st.dirty = [true; SHARD_COUNT];
        out
    }
}

fn wal_err(e: WalError) -> QuepaError {
    QuepaError::Durability(e.to_string())
}

impl Quepa {
    /// Assembles a **durable** system over a fresh directory: the
    /// initial index is checkpointed at LSN 0 and every subsequent
    /// [`apply_mutations`](Quepa::apply_mutations) batch is
    /// write-ahead-logged. Fails if `dir` already holds durable state —
    /// use [`recover_durable`](Quepa::recover_durable) for that.
    pub fn create_durable(
        polystore: Polystore,
        index: AIndex,
        config: QuepaConfig,
        dir: &Path,
        sync: SyncPolicy,
    ) -> Result<Quepa> {
        if quepa_wal::dir_has_state(dir) {
            return Err(QuepaError::Durability(format!(
                "{} already holds durable state; recover instead of creating",
                dir.display()
            )));
        }
        let mut quepa = Quepa::with_config(polystore, index, config);
        std::fs::create_dir_all(dir)
            .map_err(|e| QuepaError::Durability(format!("creating {}: {e}", dir.display())))?;
        let (wal, _) = Wal::open(&quepa_wal::wal_path(dir), sync).map_err(wal_err)?;
        let durability = Durability {
            dir: dir.to_path_buf(),
            sync,
            state: Mutex::new(DurableState {
                wal,
                dirty: [false; SHARD_COUNT],
                have_cut: false,
                stale: false,
                cuts_written: 0,
                records_appended: 0,
            }),
        };
        {
            let mut st = durability.state.lock();
            durability.write_cut_locked(&quepa.index, &mut st, 0)?;
            // The initial cut is bookkeeping, not mutation traffic.
            st.cuts_written = 0;
        }
        quepa.durability = Some(durability);
        Ok(quepa)
    }

    /// Recovers a durable system from `dir`: loads the newest checkpoint
    /// cut, replays the WAL tail (truncating a torn final record), and
    /// returns the instance together with a [`RecoveryReport`]. The
    /// recovered instance answers bit-identically to one that never
    /// crashed. `options` is the fault-injection surface of the
    /// simulation harness; production recovery passes the default.
    pub fn recover_durable(
        polystore: Polystore,
        config: QuepaConfig,
        dir: &Path,
        sync: SyncPolicy,
        options: &RecoveryOptions,
    ) -> Result<(Quepa, RecoveryReport)> {
        let (index, wal, report) = quepa_wal::recover(dir, sync, options).map_err(wal_err)?;
        let mut quepa = Quepa::with_config(polystore, index, config);
        quepa.durability = Some(Durability {
            dir: dir.to_path_buf(),
            sync,
            state: Mutex::new(DurableState {
                wal,
                // The replayed tail dirtied unknown shards; the first
                // cut after recovery serializes everything fresh.
                dirty: [true; SHARD_COUNT],
                have_cut: report.checkpoints_loaded > 0,
                stale: false,
                cuts_written: 0,
                records_appended: 0,
            }),
        });
        Ok((quepa, report))
    }

    /// Whether this instance has a durable directory attached.
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// The durability attachment's current status, if any.
    pub fn durability_status(&self) -> Option<DurabilityStatus> {
        self.durability.as_ref().map(|d| {
            let st = d.state.lock();
            DurabilityStatus {
                dir: d.dir.clone(),
                last_lsn: st.wal.last_lsn(),
                cuts_written: st.cuts_written,
                records_appended: st.records_appended,
            }
        })
    }

    /// Applies a batch of logical index mutations through the commit
    /// path: WAL append → store flush → apply → checkpoint cut if the
    /// drain compacted a shard. On a volatile instance the same code
    /// applies the batch directly (one atomic update) and returns LSN 0,
    /// so durable and volatile mutation share one code path — which is
    /// what makes the WAL-off/WAL-on benchmark comparison fair.
    pub fn apply_mutations(&self, ops: &[IndexOp]) -> Result<Lsn> {
        let mut span = quepa_obs::span_on(&self.obs, quepa_obs::Stage::Commit, "apply");
        span.add_items(ops.len() as u64);
        let Some(dur) = &self.durability else {
            self.index.update(|ix| {
                for op in ops {
                    op.apply(ix);
                }
            });
            return Ok(0);
        };
        let mut st = dur.state.lock();
        if st.stale {
            // A closure mutation bypassed the WAL; capture it in a full
            // cut before logging records computed on top of it.
            let lsn = st.wal.last_lsn();
            dur.write_cut_locked(&self.index, &mut st, lsn)?;
        }
        let lsn = st.wal.append(ops).map_err(wal_err)?;
        st.records_appended += ops.len() as u64;
        self.polystore.commit_durable_all()?;
        let (extra_dirty, report) = self.index.update_reporting(|ix| {
            // A lazy removal changes the neighbours' serialized shards
            // without journaling them — collect those before applying.
            let mut extra = Vec::new();
            for op in ops {
                if let IndexOp::RemoveObject { key } = op {
                    for (neighbor, _, _) in ix.neighbors(key) {
                        extra.push(route(&neighbor));
                    }
                }
                op.apply(ix);
            }
            extra
        });
        for shard in extra_dirty.into_iter().chain(report.touched) {
            st.dirty[shard] = true;
        }
        if !report.compacted.is_empty() {
            dur.write_cut_locked(&self.index, &mut st, lsn)?;
        }
        Ok(lsn)
    }

    /// Forces a checkpoint cut at the current LSN and truncates the WAL
    /// behind it. Returns the covered LSN, or `None` on a volatile
    /// instance. Also the way to persist closure mutations (promotion,
    /// manual curation) that bypass the WAL.
    pub fn checkpoint_durable(&self) -> Result<Option<Lsn>> {
        let Some(dur) = &self.durability else { return Ok(None) };
        let mut st = dur.state.lock();
        let lsn = st.wal.last_lsn();
        dur.write_cut_locked(&self.index, &mut st, lsn)?;
        Ok(Some(lsn))
    }

    /// The WAL sync policy of the durable attachment, if any.
    pub fn durable_sync(&self) -> Option<SyncPolicy> {
        self.durability.as_ref().map(|d| d.sync)
    }
}
