//! [`Quepa`]: the assembled system (paper Fig. 2).
//!
//! The struct wires together the polystore connectors, the A' index, the
//! validator, the LRU cache, the augmenter engine, the run log and the
//! (optional) optimizer. "Since QUEPA does not store any data, it is easy
//! to deploy multiple instances" — `Quepa` is `Send + Sync` and the
//! polystore is shared, so several instances can answer queries in
//! parallel, each with its own A' index replica and cache.
//!
//! One instance also serves many queries concurrently; the shared state
//! is shaped read-mostly for that:
//!
//! * the A' index is a [`ShardedIndex`]: hash-sharded immutable
//!   snapshots with delta overlays, published as one atomic directory
//!   swap — a query never holds a lock across a store round trip, a
//!   lazy-deletion pass lands as one atomic transition that republishes
//!   only the touched shards, and the configuration lives in a
//!   [`SnapshotCell`] with the same swap discipline;
//! * fetch tickets run on one bounded [`WorkerPool`] per instance
//!   (queries park on a latch), instead of every query spawning its own
//!   `THREADS_SIZE` threads;
//! * concurrent queries wanting the same key share one round trip
//!   through the [`FlightTable`];
//! * run logs accumulate in shard-local buffers (drained in shard order
//!   by [`take_logs`](Quepa::take_logs)), so loggers don't convoy on one
//!   mutex.

use std::hash::{Hash, Hasher};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use quepa_aindex::{AIndex, IndexView, PathRepository, ShardIndexStats, ShardedIndex};
use quepa_obs::{MetricsRegistry, MetricsSnapshot, Stage};
use quepa_pdm::{DataObject, DatabaseName, Pushdown};
use quepa_polystore::retry::{BreakerSet, BreakerState};
use quepa_polystore::{Polystore, StoreKind};

use crate::adaptive::Optimizer;
use crate::augmenter::{self, FetchRuntime, GroupDecision};
use crate::cache::ObjectCache;
use crate::config::QuepaConfig;
use crate::error::Result;
use crate::explore::ExplorationSession;
use crate::flight::FlightTable;
use crate::logs::{QueryFeatures, RunLog};
use crate::pool::WorkerPool;
use crate::search::AugmentedAnswer;
use crate::snapshot::SnapshotCell;
use crate::validator::Validator;

/// Run-log shard fan-out (drained in shard order by `take_logs`).
const LOG_SHARDS: usize = 8;

/// The QUEPA system.
pub struct Quepa {
    pub(crate) polystore: Polystore,
    pub(crate) index: ShardedIndex,
    cache: Arc<ObjectCache>,
    config: SnapshotCell<QuepaConfig>,
    validator: Validator,
    paths: Mutex<PathRepository>,
    log_shards: Vec<Mutex<Vec<RunLog>>>,
    optimizer: Mutex<Option<Box<dyn Optimizer>>>,
    breakers: Arc<BreakerSet>,
    pub(crate) obs: Arc<MetricsRegistry>,
    pool: WorkerPool,
    flight: Arc<FlightTable>,
    /// Durable attachment (WAL + checkpoint cuts); `None` = volatile.
    pub(crate) durability: Option<crate::durability::Durability>,
}

impl Quepa {
    /// Assembles a system over a polystore and its A' index, with the
    /// default configuration.
    pub fn new(polystore: Polystore, index: AIndex) -> Self {
        Self::with_config(polystore, index, QuepaConfig::default())
    }

    /// Assembles a system with an explicit configuration.
    pub fn with_config(polystore: Polystore, index: AIndex, config: QuepaConfig) -> Self {
        let obs = Arc::new(MetricsRegistry::new());
        obs.set_enabled(config.observability);
        Quepa {
            polystore,
            index: ShardedIndex::new(index),
            cache: Arc::new(ObjectCache::new(config.cache_size)),
            config: SnapshotCell::new(config.sanitized()),
            validator: Validator,
            paths: Mutex::new(PathRepository::new()),
            log_shards: (0..LOG_SHARDS).map(|_| Mutex::new(Vec::new())).collect(),
            optimizer: Mutex::new(None),
            breakers: Arc::new(BreakerSet::new(config.resilience.breaker)),
            obs,
            pool: WorkerPool::new(WorkerPool::default_width()),
            flight: Arc::new(FlightTable::new()),
            durability: None,
        }
    }

    /// The underlying polystore.
    pub fn polystore(&self) -> &Polystore {
        &self.polystore
    }

    /// An immutable view of the current A' index projection. The view is
    /// frozen: it stays valid across concurrent mutations, which publish
    /// fresh per-shard snapshots atomically without disturbing it.
    pub fn index(&self) -> IndexView {
        self.index.view()
    }

    /// A standalone clone of the A' index (persistence: `SAVE INDEX`).
    pub fn index_snapshot(&self) -> AIndex {
        self.index.snapshot()
    }

    /// Per-shard statistics of the published index projection.
    pub fn index_shard_stats(&self) -> Vec<ShardIndexStats> {
        self.index.shard_stats()
    }

    /// Mutates the A' index (Collector updates, manual curation): `f`
    /// runs on the master index under the writer lock, then the touched
    /// shards' snapshots are republished as one atomic transition.
    /// Concurrent readers keep the views they hold; concurrent updates
    /// serialize and compose.
    ///
    /// On a durable instance this path bypasses the WAL (a closure is
    /// not a loggable record): it marks the durable state stale, and the
    /// next [`apply_mutations`](Quepa::apply_mutations) or
    /// [`checkpoint_durable`](Quepa::checkpoint_durable) persists the
    /// result in a full checkpoint cut. Prefer `apply_mutations` for
    /// anything expressible as [`crate::durability::IndexOp`]s.
    pub fn update_index<R>(&self, f: impl FnOnce(&mut AIndex) -> R) -> R {
        match &self.durability {
            None => self.index.update(f),
            Some(dur) => dur.bypass(|| self.index.update(f)),
        }
    }

    /// Replaces the A' index wholesale (e.g. loading a saved index). On
    /// a durable instance the replacement is persisted at the next cut,
    /// like [`update_index`](Quepa::update_index).
    pub fn replace_index(&self, index: AIndex) {
        match &self.durability {
            None => self.index.replace(index),
            Some(dur) => dur.bypass(|| self.index.replace(index)),
        }
    }

    /// The object cache.
    pub fn cache(&self) -> &ObjectCache {
        &self.cache
    }

    /// The `D_P` exploration-path repository.
    pub fn paths(&self) -> parking_lot::MutexGuard<'_, PathRepository> {
        self.paths.lock()
    }

    /// The current configuration.
    pub fn config(&self) -> QuepaConfig {
        *self.config.load()
    }

    /// Replaces the configuration; the cache is resized and the circuit
    /// breakers rebuilt accordingly.
    pub fn set_config(&self, config: QuepaConfig) {
        let config = config.sanitized();
        self.cache.resize(config.cache_size);
        let rebuild = self.config.load().resilience.breaker != config.resilience.breaker;
        if rebuild {
            self.breakers.reconfigure(config.resilience.breaker);
        }
        self.obs.set_enabled(config.observability);
        self.config.store(config);
    }

    /// Caps the shared fetch pool (per instance, not per query — the
    /// `THREADS_SIZE` knob stays the per-query ticket bound). Sized for
    /// round-trip-parked tickets by default; throughput benches may pin
    /// it explicitly.
    pub fn set_pool_width(&self, width: usize) {
        self.pool.set_width(width);
    }

    /// The shared fetch pool's width bound.
    pub fn pool_width(&self) -> usize {
        self.pool.width()
    }

    /// The instance's metrics registry (live recorders and trace ring).
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.obs
    }

    /// The one metrics surface: a deterministic snapshot of the
    /// observability registry with the resilience counters (retries /
    /// timeouts / breaker trips) of every store folded in from the
    /// connector statistics. Empty unless `observability` is (or was)
    /// enabled — the resilience counters fold in regardless, since the
    /// connectors record them independently of this layer.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snapshot = self.obs.snapshot();
        for (database, stats) in self.polystore.stats_by_database() {
            snapshot.fold_resilience(
                database.as_str(),
                stats.retries,
                stats.timeouts,
                stats.breaker_trips,
            );
        }
        // Per-shard index gauges fold in only once something was recorded
        // — a never-observed instance keeps its empty snapshot. The
        // gauges themselves are deterministic (same scenario ⇒ same
        // projection), so twin-equality checks hold.
        if !snapshot.is_empty() {
            snapshot.index_shards = self
                .index
                .shard_stats()
                .into_iter()
                .map(|s| quepa_obs::IndexShardMetrics {
                    entries: s.entries as u64,
                    overlay_depth: s.overlay_depth as u64,
                    resident_bytes: s.resident_bytes as u64,
                    compactions: s.compactions,
                    swaps: s.swaps,
                })
                .collect();
        }
        snapshot
    }

    /// The circuit-breaker state guarding one store (breaker health is
    /// system-wide: it persists across queries, like a real client pool).
    pub fn breaker_state(&self, database: &DatabaseName) -> BreakerState {
        self.breakers.state(database)
    }

    /// Installs an optimizer that picks a configuration per query
    /// (ADAPTIVE / HUMAN / RANDOM of §VII-C); `None` pins the current
    /// configuration.
    pub fn set_optimizer(&self, optimizer: Option<Box<dyn Optimizer>>) {
        *self.optimizer.lock() = optimizer;
    }

    /// The accumulated run logs (the optimizer's training set), drained
    /// from the shard-local buffers in shard order.
    pub fn take_logs(&self) -> Vec<RunLog> {
        let mut logs = Vec::new();
        for shard in &self.log_shards {
            logs.append(&mut shard.lock());
        }
        logs
    }

    /// This thread's run-log shard.
    fn log_shard(&self) -> &Mutex<Vec<RunLog>> {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        std::thread::current().id().hash(&mut hasher);
        &self.log_shards[hasher.finish() as usize % self.log_shards.len()]
    }

    /// Clears the cache (cold-cache experiment runs).
    pub fn drop_caches(&self) {
        self.cache.clear();
    }

    /// **Augmented search** (Definition 3): runs `query` on `database` in
    /// its native language and augments the answer at `level`.
    pub fn augmented_search(
        &self,
        database: &str,
        query: &str,
        level: usize,
    ) -> Result<AugmentedAnswer> {
        let start = Instant::now();
        let connector = self.polystore.connector_by_name(database)?;
        let validated = self.validator.validate(connector.kind(), query)?;
        let original = connector.execute(&validated.query)?;
        let answer = self.augment_objects(&original, level, connector.kind(), start)?;
        Ok(answer)
    }

    /// A *filtered* augmented search: like
    /// [`augmented_search`](Quepa::augmented_search), but only augmented
    /// objects satisfying `filter` are returned. Keys whose objects exist
    /// but fail the predicate appear in neither `augmented` nor `missing`
    /// — `missing` keeps its exact unfiltered meaning (gone or
    /// unreachable). Per store group the planner pushes the predicate
    /// down to connectors that support it (unless `config.pushdown` is
    /// off or the installed optimizer's `T5` counsels against it); the
    /// answer is bit-identical whichever side of the wire filters.
    pub fn augmented_search_filtered(
        &self,
        database: &str,
        query: &str,
        level: usize,
        filter: &Pushdown,
    ) -> Result<AugmentedAnswer> {
        let start = Instant::now();
        let connector = self.polystore.connector_by_name(database)?;
        let validated = self.validator.validate(connector.kind(), query)?;
        let original = connector.execute(&validated.query)?;
        self.augment_objects_filtered(&original, level, connector.kind(), start, Some(filter))
    }

    /// Dry-runs the filtered-augmentation planner: the per-group
    /// pushdown/fetch-all verdicts the query *would* execute under,
    /// without touching any store for the augmentation (the native query
    /// itself still runs — the plan depends on its answer). The `EXPLAIN`
    /// command surfaces this; nothing is fetched, cached, logged or
    /// counted.
    pub fn explain_search(
        &self,
        database: &str,
        query: &str,
        level: usize,
        filter: &Pushdown,
    ) -> Result<Vec<GroupDecision>> {
        let connector = self.polystore.connector_by_name(database)?;
        let validated = self.validator.validate(connector.kind(), query)?;
        let original = connector.execute(&validated.query)?;
        let index = self.index.view();
        let keys: Vec<_> = original.iter().map(|o| o.key().clone()).collect();
        let plan = augmenter::plan(&index, &keys, level);
        let features = QueryFeatures {
            target_kind: connector.kind(),
            store_count: self.polystore.len(),
            result_size: original.len(),
            augmented_size: plan.augmented.len(),
            level,
            distributed: false,
            filtered: !filter.is_trivial(),
        };
        let config = self.config();
        let optimizer = self.optimizer.lock();
        let decider = |kind: StoreKind, group_keys: usize| {
            optimizer
                .as_ref()
                .and_then(|o| o.pushdown_for(&features, kind, group_keys))
                .unwrap_or(true)
        };
        Ok(augmenter::explain_groups(&self.polystore, &plan, &config, filter, Some(&decider)))
    }

    /// The server-facing entry point: an [`augmented_search`] that also
    /// keeps the admission ledger. A degraded execution clamps the
    /// augmentation level to 0 — the original answer without the fetch
    /// fan-out, the same shape `DegradeMode::Partial` falls back to —
    /// so an overloaded server still answers something exact and cheap.
    /// Both outcomes count as *served* in the admission counters; the
    /// caller records `offered` at accept and `shed` on rejection.
    ///
    /// [`augmented_search`]: Quepa::augmented_search
    pub fn serve_search(
        &self,
        database: &str,
        query: &str,
        level: usize,
        degraded: bool,
    ) -> Result<AugmentedAnswer> {
        let effective = if degraded { 0 } else { level };
        let answer = self.augmented_search(database, query, effective)?;
        self.obs.record_admission_served(degraded);
        Ok(answer)
    }

    /// Augments pre-fetched objects (exploration steps and baselines reuse
    /// this path).
    pub(crate) fn augment_objects(
        &self,
        original: &[DataObject],
        level: usize,
        target_kind: StoreKind,
        start: Instant,
    ) -> Result<AugmentedAnswer> {
        self.augment_objects_filtered(original, level, target_kind, start, None)
    }

    /// The filtered variant behind [`augment_objects`](Self::augment_objects):
    /// `filter = None` (or a trivial predicate) is the plain path.
    pub(crate) fn augment_objects_filtered(
        &self,
        original: &[DataObject],
        level: usize,
        target_kind: StoreKind,
        start: Instant,
        filter: Option<&Pushdown>,
    ) -> Result<AugmentedAnswer> {
        // One index traversal serves both feature extraction and
        // retrieval: the plan carries the canonical neighbourhood plus
        // the per-seed work partition, computed on an immutable snapshot
        // — no lock is held here or across any store round trip.
        let plan = {
            let mut span = quepa_obs::span_on(&self.obs, Stage::Plan, "traversal");
            let index = self.index.view();
            let keys: Vec<_> = original.iter().map(|o| o.key().clone()).collect();
            let plan = augmenter::plan(&index, &keys, level);
            span.add_items(plan.augmented.len() as u64);
            plan
        };
        // Decide the configuration: ask the optimizer if one is installed.
        let features = QueryFeatures {
            target_kind,
            store_count: self.polystore.len(),
            result_size: original.len(),
            augmented_size: plan.augmented.len(),
            level,
            distributed: false,
            filtered: filter.is_some_and(|f| !f.is_trivial()),
        };
        let current = self.config();
        let config = match self.optimizer.lock().as_ref() {
            Some(opt) => {
                let chosen = opt.choose(&features, &current).sanitized();
                // §V: the cache is not swung to the predicted value — it
                // moves by (predicted − current)/10.
                let delta = (chosen.cache_size as i64 - current.cache_size as i64) / 10;
                let cache_size = (current.cache_size as i64 + delta).max(0) as usize;
                let adjusted = QuepaConfig { cache_size, ..chosen };
                self.set_config(adjusted);
                adjusted
            }
            None => current,
        };

        let runtime = FetchRuntime {
            breakers: &self.breakers,
            obs: Some(&self.obs),
            pool: Some(&self.pool),
            flight: Some(&self.flight),
        };
        let outcome = match filter {
            Some(f) if !f.is_trivial() => {
                // The model-backed per-group decider: consult the
                // installed optimizer's T5 counsel; no optimizer (or no
                // opinion yet) means "push wherever supported". The lock
                // is taken per call, during planning only — never across
                // a store round trip.
                let decider = |kind: StoreKind, group_keys: usize| {
                    self.optimizer
                        .lock()
                        .as_ref()
                        .and_then(|o| o.pushdown_for(&features, kind, group_keys))
                        .unwrap_or(true)
                };
                let (outcome, _decisions) = augmenter::run_planned_filtered(
                    &self.polystore,
                    &self.cache,
                    &plan,
                    &config,
                    &runtime,
                    f,
                    Some(&decider),
                )?;
                outcome
            }
            _ => augmenter::run_planned_with(&self.polystore, &self.cache, &plan, &config, &runtime)?,
        };

        // Lazy deletion (§III-C): objects that vanished from the polystore
        // leave the index and the cache. Only *not-found* keys qualify —
        // an unreachable store says nothing about whether its objects
        // still exist, so those stay indexed and only show up in the
        // answer's `missing` list. The sharded update makes the whole
        // pass one atomic transition — one directory swap republishing
        // just the touched shards — so a concurrent query plans against
        // the old projection or the fully pruned one, never a
        // half-pruned hybrid.
        let lazily_deleted = outcome.missing.iter().filter(|m| m.is_not_found()).count();
        if lazily_deleted > 0 {
            // One batch through the commit path: on a durable instance
            // the removals are write-ahead-logged before they land, so
            // recovery never resurrects an object the polystore already
            // lost; on a volatile instance the same call is one atomic
            // sharded update.
            let removals: Vec<crate::durability::IndexOp> = outcome
                .missing
                .iter()
                .filter(|m| m.is_not_found())
                .map(|entry| crate::durability::IndexOp::RemoveObject { key: entry.key.clone() })
                .collect();
            self.apply_mutations(&removals)?;
            for entry in outcome.missing.iter().filter(|m| m.is_not_found()) {
                self.cache.remove(&entry.key);
            }
        }

        let duration = start.elapsed();
        let run = RunLog { features, config, duration };
        // Feed the online-retrain stream before shelving the log: an
        // OnlineOptimizer refits from here, so a later query in the same
        // process can already plan differently — no restart, no
        // take_logs/train round trip.
        if let Some(opt) = self.optimizer.lock().as_ref() {
            opt.observe(&run);
        }
        self.log_shard().lock().push(run);
        Ok(AugmentedAnswer {
            original: original.to_vec(),
            augmented: outcome.objects,
            config_used: config,
            duration,
            cache_hits: outcome.cache_hits,
            lazily_deleted,
            missing: outcome.missing,
        })
    }

    /// **Augmented exploration** (Definition 4): runs the query and opens
    /// an interactive session over its answer.
    pub fn explore(&self, database: &str, query: &str) -> Result<ExplorationSession<'_>> {
        let connector = self.polystore.connector_by_name(database)?;
        let validated = self.validator.validate(connector.kind(), query)?;
        let original = connector.execute(&validated.query)?;
        Ok(ExplorationSession::new(self, original, connector.kind()))
    }
}

impl std::fmt::Debug for Quepa {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Quepa")
            .field("stores", &self.polystore.len())
            .field("index", &self.index.view().stats())
            .field("config", &self.config())
            .field("pool", &self.pool)
            .finish_non_exhaustive()
    }
}
