//! The shared fetch worker pool: one bounded pool per [`Quepa`] instance.
//!
//! Before this module, every `augmented_search` spawned its own scoped
//! threads, so N concurrent queries × `THREADS_SIZE` meant N×T short-lived
//! OS threads. Now the instance owns a single bounded pool; each query
//! submits its fetch tickets as jobs and parks on a [`Latch`] until its
//! batch completes. Tickets claim work units from a shared queue
//! (injector + atomic claiming inside each batch), so 64 concurrent
//! queries share the same few workers instead of spawning 64 × T threads.
//!
//! Sizing: fetch work is round-trip-shaped — a worker spends most of a
//! ticket parked in the polystore's simulated network sleep, not on the
//! CPU — so the default width oversubscribes the core count instead of
//! matching it (an IO pool, not a compute pool). Workers are spawned
//! lazily on demand, so a short-lived instance that only ever runs
//! sequential queries never starts a thread.
//!
//! [`Quepa`]: crate::system::Quepa

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// The shared worker-pool sizing clamp: fetch work is round-trip-shaped,
/// so the width oversubscribes the core count (an IO pool, not a compute
/// pool). Every consumer of a default pool width — [`WorkerPool`] itself,
/// the `quepa-check --concurrent` harness, the `quepa-serve` front end —
/// must size through this one function so they agree.
pub fn pool_width() -> usize {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    (cores * 4).clamp(16, 64)
}

#[derive(Default)]
struct PoolState {
    queue: VecDeque<Job>,
    shutdown: bool,
    /// Workers started so far (never exceeds `width` at spawn time).
    spawned: usize,
    /// Workers currently parked waiting for a job.
    idle: usize,
}

struct PoolShared {
    state: Mutex<PoolState>,
    signal: Condvar,
    /// Max workers; runtime-adjustable (only gates *new* spawns).
    width: AtomicUsize,
}

fn lock_state(shared: &PoolShared) -> MutexGuard<'_, PoolState> {
    // Jobs run outside the lock and are unwind-caught, so a poisoned
    // state can only mean a panic inside this module's own bookkeeping;
    // the data is still consistent enough to shut down with.
    shared.state.lock().unwrap_or_else(|e| e.into_inner())
}

/// A bounded pool of fetch workers shared by every query of one `Quepa`
/// instance. Dropping the pool shuts the workers down and joins them.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl WorkerPool {
    /// A pool running at most `width` workers (floored at 1).
    pub fn new(width: usize) -> Self {
        WorkerPool {
            shared: Arc::new(PoolShared {
                state: Mutex::new(PoolState::default()),
                signal: Condvar::new(),
                width: AtomicUsize::new(width.max(1)),
            }),
            handles: Mutex::new(Vec::new()),
        }
    }

    /// The default width: fetch tickets park in simulated round trips,
    /// so the pool oversubscribes the machine rather than matching it.
    /// Delegates to the shared [`pool_width`] clamp.
    pub fn default_width() -> usize {
        pool_width()
    }

    /// The current width bound.
    pub fn width(&self) -> usize {
        self.shared.width.load(Ordering::Relaxed)
    }

    /// Adjusts the width bound. Growing takes effect on the next submit;
    /// shrinking only stops further spawns — live workers are not culled.
    pub fn set_width(&self, width: usize) {
        self.shared.width.store(width.max(1), Ordering::Relaxed);
    }

    /// Workers started so far (for tests and diagnostics).
    pub fn spawned(&self) -> usize {
        lock_state(&self.shared).spawned
    }

    /// Enqueues a job, lazily starting a worker when none is idle and the
    /// pool is below its width.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        let mut state = lock_state(&self.shared);
        state.queue.push_back(Box::new(job));
        let width = self.shared.width.load(Ordering::Relaxed);
        if state.idle == 0 && state.spawned < width {
            state.spawned += 1;
            let name = format!("quepa-fetch-{}", state.spawned);
            drop(state);
            let shared = Arc::clone(&self.shared);
            let handle = std::thread::Builder::new()
                .name(name)
                .spawn(move || worker_loop(&shared))
                .expect("spawn fetch worker");
            self.handles.lock().unwrap_or_else(|e| e.into_inner()).push(handle);
            return;
        }
        drop(state);
        self.shared.signal.notify_one();
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut state = lock_state(shared);
            loop {
                if let Some(job) = state.queue.pop_front() {
                    break Some(job);
                }
                if state.shutdown {
                    break None;
                }
                state.idle += 1;
                state = shared.signal.wait(state).unwrap_or_else(|e| e.into_inner());
                state.idle -= 1;
            }
        };
        match job {
            // Ticket bodies catch their own panics and store them in the
            // batch result; this outer catch only keeps a worker alive if
            // a raw job (tests, future callers) panics anyway.
            Some(job) => drop(catch_unwind(AssertUnwindSafe(job))),
            None => return,
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        lock_state(&self.shared).shutdown = true;
        self.shared.signal.notify_all();
        let handles = std::mem::take(&mut *self.handles.lock().unwrap_or_else(|e| e.into_inner()));
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("width", &self.width())
            .field("spawned", &self.spawned())
            .finish()
    }
}

/// A completion latch: the submitting query parks until every ticket of
/// its batch counted down.
pub struct Latch {
    remaining: Mutex<usize>,
    done: Condvar,
}

impl Latch {
    /// A latch waiting for `count` tickets.
    pub fn new(count: usize) -> Self {
        Latch { remaining: Mutex::new(count), done: Condvar::new() }
    }

    /// Marks one ticket complete, waking waiters when the count hits 0.
    pub fn count_down(&self) {
        let mut remaining = self.remaining.lock().unwrap_or_else(|e| e.into_inner());
        *remaining = remaining.saturating_sub(1);
        if *remaining == 0 {
            self.done.notify_all();
        }
    }

    /// Parks until every ticket counted down.
    pub fn wait(&self) {
        let mut remaining = self.remaining.lock().unwrap_or_else(|e| e.into_inner());
        while *remaining > 0 {
            remaining = self.done.wait(remaining).unwrap_or_else(|e| e.into_inner());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn default_width_is_the_shared_clamp() {
        assert_eq!(WorkerPool::default_width(), pool_width());
        let w = pool_width();
        assert!((16..=64).contains(&w), "pool_width {w} outside clamp");
    }

    #[test]
    fn runs_submitted_jobs() {
        let pool = WorkerPool::new(4);
        let hits = Arc::new(AtomicUsize::new(0));
        let latch = Arc::new(Latch::new(32));
        for _ in 0..32 {
            let hits = Arc::clone(&hits);
            let latch = Arc::clone(&latch);
            pool.submit(move || {
                hits.fetch_add(1, Ordering::Relaxed);
                latch.count_down();
            });
        }
        latch.wait();
        assert_eq!(hits.load(Ordering::Relaxed), 32);
        assert!(pool.spawned() <= 4);
    }

    #[test]
    fn spawns_lazily_and_reuses_idle_workers() {
        let pool = WorkerPool::new(8);
        assert_eq!(pool.spawned(), 0, "no work yet, no threads");
        for _ in 0..3 {
            let latch = Arc::new(Latch::new(1));
            let l = Arc::clone(&latch);
            pool.submit(move || l.count_down());
            latch.wait();
        }
        // Sequential jobs find an idle worker again, so one thread serves
        // all three (a second may race the first job's park; never three).
        assert!(pool.spawned() <= 2, "spawned {}", pool.spawned());
    }

    #[test]
    fn width_is_adjustable() {
        let pool = WorkerPool::new(1);
        pool.set_width(6);
        assert_eq!(pool.width(), 6);
        pool.set_width(0);
        assert_eq!(pool.width(), 1, "width floors at 1");
    }

    #[test]
    fn survives_a_panicking_job() {
        let pool = WorkerPool::new(1);
        let latch = Arc::new(Latch::new(1));
        pool.submit(|| panic!("boom"));
        let l = Arc::clone(&latch);
        pool.submit(move || l.count_down());
        latch.wait();
    }

    #[test]
    fn drop_joins_workers() {
        let pool = WorkerPool::new(2);
        let latch = Arc::new(Latch::new(4));
        for _ in 0..4 {
            let l = Arc::clone(&latch);
            pool.submit(move || l.count_down());
        }
        latch.wait();
        drop(pool); // must not hang
    }
}
