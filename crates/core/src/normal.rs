//! A model-facing **answer normal form**.
//!
//! Differential testing (the `quepa-check` harness) compares the real
//! system's [`AugmentedAnswer`] against a reference model's prediction.
//! The comparison must be *set*-semantic — an answer is its augmented
//! key-set with exact probabilities and distances, plus its `missing`
//! set — independent of fetch order, batching, sharding or thread
//! interleaving. [`AnswerNormalForm`] is that canonical shape: both sides
//! reduce to it and equality is then plain `==`, with probabilities
//! compared by *bit pattern* so not even an ulp of drift passes.

use std::fmt;

use quepa_pdm::{GlobalKey, Probability};

use crate::augmenter::MissingKey;
use crate::search::AugmentedAnswer;

/// One augmented key in normal form: key, probability bits, hop distance.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct NormalEntry {
    /// The augmented object's global key, rendered `db.collection.key`.
    pub key: String,
    /// The IEEE-754 bit pattern of the path-product probability.
    pub prob_bits: u64,
    /// Hop distance of the best path.
    pub distance: usize,
}

/// An augmented answer reduced to canonical, order-independent form.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AnswerNormalForm {
    /// Augmented entries, sorted by key.
    pub augmented: Vec<NormalEntry>,
    /// Missing keys with structured reasons, sorted.
    pub missing: Vec<MissingKey>,
}

impl AnswerNormalForm {
    /// Builds a normal form from raw parts (the model side).
    pub fn from_parts<I>(augmented: I, mut missing: Vec<MissingKey>) -> Self
    where
        I: IntoIterator<Item = (GlobalKey, Probability, usize)>,
    {
        let mut augmented: Vec<NormalEntry> = augmented
            .into_iter()
            .map(|(key, prob, distance)| NormalEntry {
                key: key.to_string(),
                prob_bits: prob.get().to_bits(),
                distance,
            })
            .collect();
        augmented.sort();
        missing.sort();
        AnswerNormalForm { augmented, missing }
    }
}

impl AugmentedAnswer {
    /// Reduces this answer to its [`AnswerNormalForm`].
    pub fn normal_form(&self) -> AnswerNormalForm {
        AnswerNormalForm::from_parts(
            self.augmented.iter().map(|a| (a.object.key().clone(), a.probability, a.distance)),
            self.missing.clone(),
        )
    }
}

impl fmt::Display for AnswerNormalForm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "augmented ({}):", self.augmented.len())?;
        for e in &self.augmented {
            writeln!(
                f,
                "  {} p={:.6} (bits {:#018x}) d={}",
                e.key,
                f64::from_bits(e.prob_bits),
                e.prob_bits,
                e.distance
            )?;
        }
        writeln!(f, "missing ({}):", self.missing.len())?;
        for m in &self.missing {
            writeln!(f, "  {} {:?}", m.key, m.reason)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_parts_sorts_and_compares_set_wise() {
        let k = |s: &str| s.parse::<GlobalKey>().unwrap();
        let a = AnswerNormalForm::from_parts(
            vec![(k("db1.c.b"), Probability::of(0.5), 1), (k("db0.c.a"), Probability::of(0.25), 2)],
            vec![MissingKey::not_found(k("db2.c.x"))],
        );
        let b = AnswerNormalForm::from_parts(
            vec![(k("db0.c.a"), Probability::of(0.25), 2), (k("db1.c.b"), Probability::of(0.5), 1)],
            vec![MissingKey::not_found(k("db2.c.x"))],
        );
        assert_eq!(a, b);
        assert_eq!(a.augmented[0].key, "db0.c.a");
        // An ulp of probability drift is a mismatch.
        let c = AnswerNormalForm::from_parts(
            vec![
                (k("db0.c.a"), Probability::of(0.25 + f64::EPSILON), 2),
                (k("db1.c.b"), Probability::of(0.5), 1),
            ],
            vec![MissingKey::not_found(k("db2.c.x"))],
        );
        assert_ne!(a, c);
    }
}
