//! Augmented analytics — the paper's stated future work ("we would like to
//! extend augmentation to data analytics scenarios", §VIII), implemented
//! here as a small aggregation layer over augmented answers.
//!
//! The idea: once a local answer is augmented, the related objects form a
//! probabilistic relation over the whole polystore; analytics over it must
//! respect the probabilities. This module provides:
//!
//! * per-database breakdowns of an answer ([`breakdown_by_database`]);
//! * probability-weighted aggregates over a numeric field path
//!   ([`weighted_aggregate`]) — every value contributes proportionally to
//!   the probability that its object is actually related (expected-value
//!   semantics over possible worlds, assuming independence);
//! * answer-level summary statistics ([`AnswerStats`]).

use std::collections::BTreeMap;

use quepa_pdm::Value;

use crate::search::AugmentedAnswer;

/// Summary statistics of an augmented answer.
#[derive(Debug, Clone, PartialEq)]
pub struct AnswerStats {
    /// Objects in the local answer.
    pub original: usize,
    /// Objects contributed by augmentation.
    pub augmented: usize,
    /// Distinct databases the augmentation reached.
    pub databases_reached: usize,
    /// Mean probability of the augmented objects (0 when none).
    pub mean_probability: f64,
    /// Maximum hop distance observed.
    pub max_distance: usize,
}

/// Computes the summary statistics of an answer.
pub fn stats(answer: &AugmentedAnswer) -> AnswerStats {
    let mut dbs = std::collections::BTreeSet::new();
    let mut prob_sum = 0.0;
    let mut max_distance = 0;
    for a in &answer.augmented {
        dbs.insert(a.object.key().database().clone());
        prob_sum += a.probability.get();
        max_distance = max_distance.max(a.distance);
    }
    AnswerStats {
        original: answer.original.len(),
        augmented: answer.augmented.len(),
        databases_reached: dbs.len(),
        mean_probability: if answer.augmented.is_empty() {
            0.0
        } else {
            prob_sum / answer.augmented.len() as f64
        },
        max_distance,
    }
}

/// Counts the augmented objects per source database — "where did the
/// related information come from?".
pub fn breakdown_by_database(answer: &AugmentedAnswer) -> BTreeMap<String, usize> {
    let mut out = BTreeMap::new();
    for a in &answer.augmented {
        *out.entry(a.object.key().database().to_string()).or_insert(0) += 1;
    }
    out
}

/// A probability-weighted aggregate over one numeric field of the
/// augmented objects.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightedAggregate {
    /// Objects carrying the field with a numeric value.
    pub matching_objects: usize,
    /// Expected count: Σ p(o) over matching objects.
    pub expected_count: f64,
    /// Expected sum: Σ p(o)·value(o).
    pub expected_sum: f64,
    /// Expected mean: expected_sum / expected_count (None when no object
    /// matches).
    pub expected_mean: Option<f64>,
    /// Plain (unweighted) minimum among matching objects.
    pub min: Option<f64>,
    /// Plain maximum.
    pub max: Option<f64>,
}

/// Aggregates `field_path` (dots descend into nested objects) across the
/// augmented part of an answer, weighting every value by its object's
/// probability.
///
/// The semantics are expected values over the possible worlds induced by
/// the p-relations: an object related with probability `p` contributes its
/// value in a `p` fraction of the worlds.
pub fn weighted_aggregate(answer: &AugmentedAnswer, field_path: &str) -> WeightedAggregate {
    let mut agg = WeightedAggregate {
        matching_objects: 0,
        expected_count: 0.0,
        expected_sum: 0.0,
        expected_mean: None,
        min: None,
        max: None,
    };
    for a in &answer.augmented {
        let value = match a.object.value() {
            v @ (Value::Int(_) | Value::Float(_)) if field_path.is_empty() => v.as_f64(),
            v => v.get_path(field_path).and_then(Value::as_f64),
        };
        let Some(x) = value else { continue };
        let p = a.probability.get();
        agg.matching_objects += 1;
        agg.expected_count += p;
        agg.expected_sum += p * x;
        agg.min = Some(agg.min.map_or(x, |m: f64| m.min(x)));
        agg.max = Some(agg.max.map_or(x, |m: f64| m.max(x)));
    }
    if agg.expected_count > 0.0 {
        agg.expected_mean = Some(agg.expected_sum / agg.expected_count);
    }
    agg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::augmenter::AugmentedObject;
    use crate::config::QuepaConfig;
    use quepa_pdm::{DataObject, Probability};
    use std::time::Duration;

    fn answer() -> AugmentedAnswer {
        let mk = |key: &str, value: Value, p: f64, d: usize| AugmentedObject {
            object: DataObject::new(key.parse().unwrap(), value),
            probability: Probability::of(p),
            distance: d,
        };
        AugmentedAnswer {
            original: vec![DataObject::new(
                "a.t.1".parse().unwrap(),
                Value::object([("x", Value::Int(1))]),
            )],
            augmented: vec![
                mk("b.t.1", Value::object([("price", Value::Float(10.0))]), 1.0, 1),
                mk("b.t.2", Value::object([("price", Value::Float(20.0))]), 0.5, 1),
                mk("c.t.1", Value::object([("name", Value::str("no price"))]), 0.9, 2),
            ],
            config_used: QuepaConfig::default(),
            duration: Duration::from_millis(1),
            cache_hits: 0,
            lazily_deleted: 0,
            missing: Vec::new(),
        }
    }

    #[test]
    fn stats_summary() {
        let s = stats(&answer());
        assert_eq!(s.original, 1);
        assert_eq!(s.augmented, 3);
        assert_eq!(s.databases_reached, 2);
        assert!((s.mean_probability - 0.8).abs() < 1e-12);
        assert_eq!(s.max_distance, 2);
    }

    #[test]
    fn breakdown() {
        let b = breakdown_by_database(&answer());
        assert_eq!(b["b"], 2);
        assert_eq!(b["c"], 1);
    }

    #[test]
    fn weighted_aggregation() {
        let agg = weighted_aggregate(&answer(), "price");
        assert_eq!(agg.matching_objects, 2);
        // E[count] = 1.0 + 0.5; E[sum] = 10 + 0.5·20 = 20.
        assert!((agg.expected_count - 1.5).abs() < 1e-12);
        assert!((agg.expected_sum - 20.0).abs() < 1e-12);
        assert!((agg.expected_mean.unwrap() - 20.0 / 1.5).abs() < 1e-12);
        assert_eq!(agg.min, Some(10.0));
        assert_eq!(agg.max, Some(20.0));
    }

    #[test]
    fn missing_field_yields_empty_aggregate() {
        let agg = weighted_aggregate(&answer(), "nonexistent");
        assert_eq!(agg.matching_objects, 0);
        assert_eq!(agg.expected_mean, None);
        assert_eq!(agg.min, None);
    }

    #[test]
    fn empty_answer_stats() {
        let mut a = answer();
        a.augmented.clear();
        let s = stats(&a);
        assert_eq!(s.mean_probability, 0.0);
        assert_eq!(s.databases_reached, 0);
    }
}
