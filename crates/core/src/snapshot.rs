//! Atomic snapshot cells: read-mostly shared state without read locks.
//!
//! A [`SnapshotCell`] holds an immutable `Arc<T>` snapshot. Readers
//! [`load`](SnapshotCell::load) the current `Arc` (a refcount bump under
//! a briefly held lock — never held across any store round trip) and keep
//! working on that frozen snapshot for as long as they like. Writers
//! build the *next* snapshot copy-on-write and swap it in atomically, so
//! a mutation — e.g. the lazy-deletion pass pruning vanished keys from
//! the A' index — is one cold→warm transition: a concurrent query sees
//! either the whole old index or the whole new one, never a half-pruned
//! hybrid. This is the hand-rolled equivalent of the `arc-swap` crate
//! (this workspace is offline-vendored), trading the lock-free fast path
//! for `#![forbid(unsafe_code)]`.

use std::sync::Arc;

use parking_lot::Mutex;

/// An atomically swappable immutable snapshot of `T`.
#[derive(Debug)]
pub struct SnapshotCell<T> {
    current: Mutex<Arc<T>>,
}

impl<T> SnapshotCell<T> {
    /// A cell holding `value` as its first snapshot.
    pub fn new(value: T) -> Self {
        SnapshotCell { current: Mutex::new(Arc::new(value)) }
    }

    /// The current snapshot. The internal lock is held only for the
    /// refcount bump; the returned `Arc` stays valid (and frozen) however
    /// long the caller holds it.
    pub fn load(&self) -> Arc<T> {
        Arc::clone(&self.current.lock())
    }

    /// Replaces the snapshot wholesale.
    pub fn store(&self, value: T) {
        *self.current.lock() = Arc::new(value);
    }
}

impl<T: Clone> SnapshotCell<T> {
    /// Copy-on-write update: clones the current snapshot, applies `f` to
    /// the clone, and swaps it in as one atomic transition. Writers
    /// serialize on the cell's lock (so concurrent updates compose
    /// rather than losing each other); readers are never blocked by the
    /// mutation itself — they keep their loaded snapshot.
    pub fn update<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        let mut slot = self.current.lock();
        let mut next = T::clone(&slot);
        let result = f(&mut next);
        *slot = Arc::new(next);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_store_roundtrip() {
        let cell = SnapshotCell::new(1);
        assert_eq!(*cell.load(), 1);
        cell.store(2);
        assert_eq!(*cell.load(), 2);
    }

    #[test]
    fn readers_keep_their_snapshot_across_updates() {
        let cell = SnapshotCell::new(vec![1, 2, 3]);
        let before = cell.load();
        cell.update(|v| v.push(4));
        assert_eq!(*before, vec![1, 2, 3], "loaded snapshot is frozen");
        assert_eq!(*cell.load(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn updates_compose_under_contention() {
        let cell = Arc::new(SnapshotCell::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let cell = Arc::clone(&cell);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        cell.update(|n| *n += 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*cell.load(), 800, "no update may be lost");
    }

    #[test]
    fn update_returns_the_closure_result() {
        let cell = SnapshotCell::new(String::from("a"));
        let len = cell.update(|s| {
            s.push('b');
            s.len()
        });
        assert_eq!(len, 2);
    }
}
