//! The rule-based optimizer (§V) and the baseline optimizers of §VII-C.
//!
//! ADAPTIVE trains four models on the run logs:
//!
//! * `T1` — a C4.5 decision tree choosing the augmenter;
//! * `T2` — a REPTree regression tree choosing `BATCH_SIZE` (consulted when
//!   `T1` picks BATCH or OUTER-BATCH);
//! * `T3` — a REPTree choosing `THREADS_SIZE` (when a concurrent augmenter
//!   is selected);
//! * `T4` — a REPTree choosing `CACHE_SIZE` (applied softly: the system
//!   moves the cache by `(predicted − current) / 10`, see
//!   [`crate::system::Quepa`]);
//! * `T5` — a C4.5 tree deciding, per store group of a *filtered*
//!   augmentation, whether to push the predicate down to the store or
//!   fetch all keys and filter client-side. Answers are bit-identical
//!   either way, so `T5` is pure performance counsel — it learns from
//!   the same run logs, grouped by the same situations.
//!
//! [`OnlineOptimizer`] closes the adaptive loop at runtime: it keeps a
//! bounded deterministic [`Reservoir`] of the live run-log stream and
//! periodically refits all five trees, publishing each new model behind
//! a [`SnapshotCell`] swap so in-flight queries never block on a refit.

use parking_lot::Mutex;
use quepa_ml::c45::{C45Params, DecisionTree};
use quepa_ml::dataset::{AttrKind, Dataset, DatasetBuilder, FeatureValue, Schema};
use quepa_ml::reptree::{RegressionTree, RepTreeParams};
use quepa_ml::stream::Reservoir;
use quepa_polystore::StoreKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::{AugmenterKind, QuepaConfig};
use crate::logs::{QueryFeatures, RunLog};
use crate::snapshot::SnapshotCell;

/// Something that can pick a configuration for a query.
pub trait Optimizer: Send + Sync {
    /// Chooses the configuration for a query with the given
    /// characteristics; `current` is the configuration in effect.
    fn choose(&self, features: &QueryFeatures, current: &QuepaConfig) -> QuepaConfig;

    /// Per-store-group pushdown counsel for a filtered augmentation:
    /// should the group of `group_keys` keys living on a `kind` store be
    /// fetched with the predicate pushed down, or fetched whole and
    /// filtered client-side? `None` means no opinion — the planner then
    /// pushes wherever the connector supports it.
    fn pushdown_for(
        &self,
        _features: &QueryFeatures,
        _kind: StoreKind,
        _group_keys: usize,
    ) -> Option<bool> {
        None
    }

    /// Feeds one completed run back into the optimizer (the online
    /// optimizer's retrain stream); a no-op for offline optimizers.
    fn observe(&self, _log: &RunLog) {}

    /// Name used in experiment output.
    fn name(&self) -> &'static str;
}

const KINDS: [StoreKind; 4] =
    [StoreKind::Relational, StoreKind::Document, StoreKind::KeyValue, StoreKind::Graph];

fn feature_schema() -> Schema {
    let mut schema = Schema::new(&[
        ("target_kind", AttrKind::Categorical),
        ("store_count", AttrKind::Numeric),
        ("result_size", AttrKind::Numeric),
        ("augmented_size", AttrKind::Numeric),
        ("level", AttrKind::Numeric),
        ("distributed", AttrKind::Categorical),
        ("filtered", AttrKind::Categorical),
    ]);
    for k in KINDS {
        schema.intern(0, k.name());
    }
    schema.intern(5, "no");
    schema.intern(5, "yes");
    schema.intern(6, "no");
    schema.intern(6, "yes");
    schema
}

fn feature_row(schema: &Schema, f: &QueryFeatures) -> Vec<FeatureValue> {
    vec![
        FeatureValue::Cat(schema.category_id(0, f.target_kind.name()).expect("pre-interned")),
        FeatureValue::Num(f.store_count as f64),
        FeatureValue::Num(f.result_size as f64),
        FeatureValue::Num(f.augmented_size as f64),
        FeatureValue::Num(f.level as f64),
        FeatureValue::Cat(
            schema.category_id(5, if f.distributed { "yes" } else { "no" }).expect("pre-interned"),
        ),
        FeatureValue::Cat(
            schema.category_id(6, if f.filtered { "yes" } else { "no" }).expect("pre-interned"),
        ),
    ]
}

/// The trained ADAPTIVE optimizer.
pub struct AdaptiveOptimizer {
    schema: Schema,
    t1_augmenter: DecisionTree,
    t2_batch: Option<RegressionTree>,
    t3_threads: Option<RegressionTree>,
    t4_cache: Option<RegressionTree>,
    t5_pushdown: Option<DecisionTree>,
    fallback: QuepaConfig,
}

impl AdaptiveOptimizer {
    /// Trains the four models from run logs (§V Phase 2). Logs are grouped
    /// by *situation* (same query characteristics); within each group the
    /// fastest run defines the best configuration.
    ///
    /// Returns `None` when the logs contain fewer than two distinct
    /// situations — there is nothing to learn from yet, and the paper's
    /// remedy ("we run, in background, previously executed queries with
    /// different configurations") is the caller's job.
    pub fn train(logs: &[RunLog]) -> Option<Self> {
        let schema = feature_schema();
        // situation → (best duration, features, best config). A BTreeMap,
        // not a HashMap: `values()` feeds the training rows, and row order
        // breaks ties inside the tree fits — retraining from the same logs
        // must yield the same trees (the online optimizer's determinism
        // contract).
        let mut best: std::collections::BTreeMap<
            _,
            (std::time::Duration, QueryFeatures, QuepaConfig),
        > = std::collections::BTreeMap::new();
        for log in logs {
            match best.entry(log.situation()) {
                std::collections::btree_map::Entry::Occupied(mut o) => {
                    if log.duration < o.get().0 {
                        o.insert((log.duration, log.features, log.config));
                    }
                }
                std::collections::btree_map::Entry::Vacant(v) => {
                    v.insert((log.duration, log.features, log.config));
                }
            }
        }
        if best.len() < 2 {
            return None;
        }

        let mut t1 = DatasetBuilder::new(schema.clone());
        let mut t2 = DatasetBuilder::new(schema.clone());
        let mut t3 = DatasetBuilder::new(schema.clone());
        let mut t4 = DatasetBuilder::new(schema.clone());
        let mut t5 = DatasetBuilder::new(schema.clone());
        for (_, features, config) in best.values() {
            let row = feature_row(&schema, features);
            t1.push_classified(row.clone(), config.augmenter.name());
            if config.augmenter.uses_batching() {
                t2.push_regression(row.clone(), config.batch_size as f64);
            }
            if config.augmenter.uses_threads() {
                t3.push_regression(row.clone(), config.threads_size as f64);
            }
            if features.filtered {
                t5.push_classified(row.clone(), if config.pushdown { "push" } else { "fetch" });
            }
            t4.push_regression(row, config.cache_size as f64);
        }

        let c45 = C45Params { min_leaf: 2, ..Default::default() };
        let rep = RepTreeParams { min_leaf: 2, prune_fraction: 0.2, ..Default::default() };
        let fit_reg = |d: Dataset| (!d.is_empty()).then(|| RegressionTree::fit(&d, rep));
        let fit_cls = |d: Dataset| (!d.is_empty()).then(|| DecisionTree::fit(&d, c45));
        Some(AdaptiveOptimizer {
            t1_augmenter: DecisionTree::fit(&t1.build(), c45),
            t2_batch: fit_reg(t2.build()),
            t3_threads: fit_reg(t3.build()),
            t4_cache: fit_reg(t4.build()),
            t5_pushdown: fit_cls(t5.build()),
            schema,
            fallback: QuepaConfig::default(),
        })
    }
}

impl AdaptiveOptimizer {
    /// Renders the learned `T1` decision tree as indented text — the
    /// paper's Fig. 8 shows an example of this tree.
    pub fn render_t1(&self) -> String {
        let names: Vec<String> = self.schema.names().iter().map(|s| s.to_string()).collect();
        self.t1_augmenter
            .render(&names, |attr, cat| self.schema.category_name(attr, cat).to_owned())
    }
}

impl Optimizer for AdaptiveOptimizer {
    fn choose(&self, features: &QueryFeatures, current: &QuepaConfig) -> QuepaConfig {
        let row = feature_row(&self.schema, features);
        let augmenter = AugmenterKind::parse(self.t1_augmenter.predict_name(&row))
            .unwrap_or(self.fallback.augmenter);
        let batch_size = if augmenter.uses_batching() {
            self.t2_batch
                .as_ref()
                .map(|t| t.predict(&row).round().max(1.0) as usize)
                .unwrap_or(current.batch_size)
        } else {
            current.batch_size
        };
        let threads_size = if augmenter.uses_threads() {
            self.t3_threads
                .as_ref()
                .map(|t| t.predict(&row).round().max(1.0) as usize)
                .unwrap_or(current.threads_size)
        } else {
            current.threads_size
        };
        let cache_size = self
            .t4_cache
            .as_ref()
            .map(|t| t.predict(&row).round().max(0.0) as usize)
            .unwrap_or(current.cache_size);
        let pushdown = if features.filtered {
            self.t5_pushdown.as_ref().map(|t| t.predict_name(&row) == "push").unwrap_or(
                current.pushdown,
            )
        } else {
            current.pushdown
        };
        QuepaConfig {
            augmenter,
            batch_size,
            threads_size,
            cache_size,
            resilience: current.resilience,
            pushdown,
            observability: current.observability,
        }
    }

    fn pushdown_for(
        &self,
        features: &QueryFeatures,
        kind: StoreKind,
        group_keys: usize,
    ) -> Option<bool> {
        // The per-group question is the per-query question with the
        // group's own paradigm and fan-out substituted in: the group's
        // store kind replaces the query target and the group's key count
        // is the augmentation it pays for.
        let probe =
            QueryFeatures { target_kind: kind, augmented_size: group_keys, filtered: true, ..*features };
        let row = feature_row(&self.schema, &probe);
        self.t5_pushdown.as_ref().map(|t| t.predict_name(&row) == "push")
    }

    fn name(&self) -> &'static str {
        "ADAPTIVE"
    }
}

/// The HUMAN optimizer of §VII-C: an expert's fixed rules of thumb.
#[derive(Debug, Clone, Copy)]
pub struct HumanOptimizer {
    /// Number of CPU cores the expert assumes.
    pub cores: usize,
}

impl HumanOptimizer {
    /// The pinned core count [`Default`] assumes, so optimizer decisions
    /// are reproducible across machines.
    pub const DEFAULT_CORES: usize = 8;

    /// An expert sized for an explicit core count.
    pub fn new(cores: usize) -> Self {
        HumanOptimizer { cores: cores.max(1) }
    }

    /// An expert sized for *this* machine — the only constructor that
    /// reads `available_parallelism`, and therefore the only one whose
    /// decisions vary across hosts. Experiments that must reproduce
    /// byte-for-byte use [`Default`] or [`new`](HumanOptimizer::new).
    pub fn detected() -> Self {
        Self::new(std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4))
    }
}

impl Default for HumanOptimizer {
    fn default() -> Self {
        HumanOptimizer { cores: Self::DEFAULT_CORES }
    }
}

impl Optimizer for HumanOptimizer {
    fn choose(&self, features: &QueryFeatures, current: &QuepaConfig) -> QuepaConfig {
        // The expert's reasoning mirrors §VII-B's findings: tiny queries on
        // few stores don't amortize thread setup; distributed deployments
        // reward batching above all; large local queries want OUTER-BATCH.
        let augmenter = if features.augmented_size < 32 && features.store_count <= 4 {
            AugmenterKind::Sequential
        } else if features.distributed {
            AugmenterKind::Batch
        } else if features.result_size <= 4 {
            // Exploration-like shape: inner concurrency.
            AugmenterKind::Inner
        } else {
            AugmenterKind::OuterBatch
        };
        QuepaConfig {
            augmenter,
            batch_size: if features.distributed { 512 } else { 64 },
            threads_size: self.cores.clamp(2, 16),
            cache_size: current.cache_size,
            resilience: current.resilience,
            // The expert's rule of thumb: pushing a filter to the store
            // can only shrink the wire traffic, so always allow it.
            pushdown: true,
            observability: current.observability,
        }
    }

    fn name(&self) -> &'static str {
        "HUMAN"
    }
}

/// The RANDOM optimizer of §VII-C: uniform draws from the knob palettes.
pub struct RandomOptimizer {
    rng: parking_lot::Mutex<StdRng>,
}

impl RandomOptimizer {
    /// Creates a seeded random optimizer (deterministic experiment runs).
    pub fn new(seed: u64) -> Self {
        RandomOptimizer { rng: parking_lot::Mutex::new(StdRng::seed_from_u64(seed)) }
    }
}

impl Optimizer for RandomOptimizer {
    fn choose(&self, _features: &QueryFeatures, current: &QuepaConfig) -> QuepaConfig {
        const BATCHES: [usize; 6] = [1, 8, 32, 128, 512, 2048];
        const THREADS: [usize; 5] = [1, 2, 4, 8, 16];
        const CACHES: [usize; 4] = [0, 1024, 8192, 65536];
        let mut rng = self.rng.lock();
        QuepaConfig {
            augmenter: AugmenterKind::ALL[rng.gen_range(0..AugmenterKind::ALL.len())],
            batch_size: BATCHES[rng.gen_range(0..BATCHES.len())],
            threads_size: THREADS[rng.gen_range(0..THREADS.len())],
            cache_size: if rng.gen_bool(0.5) {
                current.cache_size
            } else {
                CACHES[rng.gen_range(0..CACHES.len())]
            },
            resilience: current.resilience,
            // A fair coin exercises both pushdown paths (answers are
            // bit-identical either way, so RANDOM stays correct).
            pushdown: rng.gen_bool(0.5),
            observability: current.observability,
        }
    }

    fn name(&self) -> &'static str {
        "RANDOM"
    }
}

/// The online-retrained optimizer: [`AdaptiveOptimizer`] fed from the
/// live run-log stream.
///
/// Each completed run is [`observe`](Optimizer::observe)d into a bounded
/// deterministic [`Reservoir`]; every `refit_every` observations the five
/// trees are refit from the current sample and the new model is published
/// with a [`SnapshotCell`] swap — queries in flight keep the model they
/// loaded, the next query sees the new one, and nothing ever blocks on
/// the refit. Until the stream holds two distinct situations the
/// optimizer has no model: `choose` pins the current configuration and
/// [`pushdown_for`](Optimizer::pushdown_for) has no opinion (the planner
/// then pushes wherever the connector supports it).
///
/// Determinism: the reservoir draws are a pure function of `(seed,
/// stream prefix)` and the tree fits are deterministic, so two instances
/// fed the same logs in the same order make identical decisions.
pub struct OnlineOptimizer {
    model: SnapshotCell<Option<AdaptiveOptimizer>>,
    state: Mutex<OnlineState>,
    refit_every: u64,
}

struct OnlineState {
    reservoir: Reservoir<RunLog>,
    since_refit: u64,
    refits: u64,
}

impl OnlineOptimizer {
    /// An untrained online optimizer sampling at most `capacity` logs
    /// and refitting every `refit_every` observations (floored to 1).
    pub fn new(seed: u64, capacity: usize, refit_every: u64) -> Self {
        OnlineOptimizer {
            model: SnapshotCell::new(None),
            state: Mutex::new(OnlineState {
                reservoir: Reservoir::new(capacity, seed),
                since_refit: 0,
                refits: 0,
            }),
            refit_every: refit_every.max(1),
        }
    }

    /// True once a refit has produced a model.
    pub fn is_trained(&self) -> bool {
        self.model.load().is_some()
    }

    /// Number of successful refits so far.
    pub fn refits(&self) -> u64 {
        self.state.lock().refits
    }

    /// Renders the current model's `T1` tree, if trained.
    pub fn render_t1(&self) -> Option<String> {
        self.model.load().as_ref().as_ref().map(AdaptiveOptimizer::render_t1)
    }
}

impl Optimizer for OnlineOptimizer {
    fn choose(&self, features: &QueryFeatures, current: &QuepaConfig) -> QuepaConfig {
        match self.model.load().as_ref() {
            Some(m) => m.choose(features, current),
            None => *current,
        }
    }

    fn pushdown_for(
        &self,
        features: &QueryFeatures,
        kind: StoreKind,
        group_keys: usize,
    ) -> Option<bool> {
        self.model.load().as_ref().as_ref().and_then(|m| m.pushdown_for(features, kind, group_keys))
    }

    fn observe(&self, log: &RunLog) {
        let mut state = self.state.lock();
        state.reservoir.push(log.clone());
        state.since_refit += 1;
        if state.since_refit >= self.refit_every {
            state.since_refit = 0;
            // Refit under the state lock (observers serialize; that's the
            // stream order determinism depends on), publish with a swap
            // (readers never wait).
            if let Some(model) = AdaptiveOptimizer::train(state.reservoir.items()) {
                state.refits += 1;
                self.model.store(Some(model));
            }
        }
    }

    fn name(&self) -> &'static str {
        "ONLINE"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn features(result_size: usize, distributed: bool) -> QueryFeatures {
        QueryFeatures {
            target_kind: StoreKind::Relational,
            store_count: 10,
            result_size,
            augmented_size: result_size * 4,
            level: 0,
            distributed,
            filtered: false,
        }
    }

    fn filtered_features(kind: StoreKind, result_size: usize) -> QueryFeatures {
        QueryFeatures { target_kind: kind, filtered: true, ..features(result_size, false) }
    }

    fn log(f: QueryFeatures, config: QuepaConfig, ms: u64) -> RunLog {
        RunLog { features: f, config, duration: Duration::from_millis(ms) }
    }

    /// Synthetic logs where small queries run best SEQUENTIAL and large
    /// ones best OUTER-BATCH with big batches.
    fn training_logs() -> Vec<RunLog> {
        let mut logs = Vec::new();
        for scale in 0..6u32 {
            let size = 10usize << (2 * scale); // 10, 40, 160, ... distinct buckets
            let f = features(size, false);
            let small = size < 100;
            for aug in AugmenterKind::ALL {
                let cfg = QuepaConfig {
                    augmenter: aug,
                    batch_size: if small { 4 } else { 256 },
                    threads_size: if small { 1 } else { 8 },
                    cache_size: 4096,
                    ..QuepaConfig::default()
                };
                let time = match (small, aug) {
                    (true, AugmenterKind::Sequential) => 5,
                    (true, _) => 20,
                    (false, AugmenterKind::OuterBatch) => 50,
                    (false, _) => 200,
                };
                logs.push(log(f, cfg, time));
            }
        }
        logs
    }

    #[test]
    fn adaptive_learns_the_regimes() {
        let opt = AdaptiveOptimizer::train(&training_logs()).expect("trainable");
        let current = QuepaConfig::default();
        let small = opt.choose(&features(10, false), &current);
        assert_eq!(small.augmenter, AugmenterKind::Sequential);
        let large = opt.choose(&features(10_240, false), &current);
        assert_eq!(large.augmenter, AugmenterKind::OuterBatch);
        assert!(large.batch_size >= 64, "learned a big batch: {}", large.batch_size);
        assert!(large.threads_size >= 2);
    }

    #[test]
    fn adaptive_needs_enough_situations() {
        assert!(AdaptiveOptimizer::train(&[]).is_none());
        let one = vec![log(features(10, false), QuepaConfig::default(), 5)];
        assert!(AdaptiveOptimizer::train(&one).is_none());
    }

    #[test]
    fn human_rules() {
        let h = HumanOptimizer { cores: 8 };
        let current = QuepaConfig::default();
        let tiny = h.choose(
            &QueryFeatures {
                target_kind: StoreKind::KeyValue,
                store_count: 4,
                result_size: 3,
                augmented_size: 9,
                level: 0,
                distributed: false,
                filtered: false,
            },
            &current,
        );
        assert_eq!(tiny.augmenter, AugmenterKind::Sequential);
        let dist = h.choose(&features(1000, true), &current);
        assert_eq!(dist.augmenter, AugmenterKind::Batch);
        assert_eq!(dist.batch_size, 512);
        let big = h.choose(&features(10_000, false), &current);
        assert_eq!(big.augmenter, AugmenterKind::OuterBatch);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let current = QuepaConfig::default();
        let a: Vec<_> = {
            let r = RandomOptimizer::new(9);
            (0..5).map(|_| r.choose(&features(10, false), &current)).collect()
        };
        let b: Vec<_> = {
            let r = RandomOptimizer::new(9);
            (0..5).map(|_| r.choose(&features(10, false), &current)).collect()
        };
        assert_eq!(a, b);
        // And actually varies across draws.
        let r = RandomOptimizer::new(1);
        let picks: std::collections::HashSet<_> =
            (0..20).map(|_| r.choose(&features(10, false), &current).augmenter).collect();
        assert!(picks.len() > 1);
    }

    #[test]
    fn t1_renders_like_fig8() {
        let opt = AdaptiveOptimizer::train(&training_logs()).unwrap();
        let text = opt.render_t1();
        assert!(text.contains('?'), "{text}");
        assert!(text.contains("→"), "{text}");
        // The learned tree splits on a size feature and names augmenters.
        assert!(text.contains("SEQUENTIAL") || text.contains("OUTER-BATCH"), "{text}");
    }

    #[test]
    fn optimizer_names() {
        assert_eq!(HumanOptimizer::default().name(), "HUMAN");
        assert_eq!(RandomOptimizer::new(0).name(), "RANDOM");
        assert_eq!(OnlineOptimizer::new(0, 16, 4).name(), "ONLINE");
        let opt = AdaptiveOptimizer::train(&training_logs()).unwrap();
        assert_eq!(opt.name(), "ADAPTIVE");
    }

    /// Filtered logs where pushdown wins on relational stores and loses
    /// on graph stores (say, the traversal filter is expensive there).
    fn pushdown_logs() -> Vec<RunLog> {
        let mut logs = Vec::new();
        for scale in 0..3u32 {
            let size = 10usize << (2 * scale);
            for (kind, push_wins) in [(StoreKind::Relational, true), (StoreKind::Graph, false)] {
                let f = filtered_features(kind, size);
                for push in [true, false] {
                    let cfg = QuepaConfig { pushdown: push, ..QuepaConfig::default() };
                    let time = if push == push_wins { 5 } else { 80 };
                    logs.push(log(f, cfg, time));
                }
            }
        }
        logs
    }

    #[test]
    fn t5_learns_per_store_pushdown() {
        let opt = AdaptiveOptimizer::train(&pushdown_logs()).expect("trainable");
        let f = filtered_features(StoreKind::Relational, 40);
        assert_eq!(opt.pushdown_for(&f, StoreKind::Relational, 160), Some(true));
        assert_eq!(opt.pushdown_for(&f, StoreKind::Graph, 160), Some(false));
        // choose() folds the same counsel into the config.
        let current = QuepaConfig::default();
        assert!(opt.choose(&f, &current).pushdown);
        assert!(!opt.choose(&filtered_features(StoreKind::Graph, 40), &current).pushdown);
    }

    #[test]
    fn t5_without_filtered_logs_defers_to_current() {
        let opt = AdaptiveOptimizer::train(&training_logs()).expect("trainable");
        let f = filtered_features(StoreKind::Relational, 40);
        assert_eq!(opt.pushdown_for(&f, StoreKind::Relational, 160), None, "no T5 → no opinion");
        let pinned = QuepaConfig { pushdown: false, ..QuepaConfig::default() };
        assert!(!opt.choose(&f, &pinned).pushdown, "current.pushdown is preserved");
    }

    #[test]
    fn unfiltered_queries_never_consult_t5() {
        let opt = AdaptiveOptimizer::train(&pushdown_logs()).expect("trainable");
        let pinned = QuepaConfig { pushdown: false, ..QuepaConfig::default() };
        let chosen = opt.choose(&features(10, false), &pinned);
        assert!(!chosen.pushdown, "unfiltered queries keep the pinned knob");
    }

    #[test]
    fn online_retrain_flips_the_pushdown_decision_mid_stream() {
        let online = OnlineOptimizer::new(9, 256, 8);
        let f = filtered_features(StoreKind::Relational, 40);
        assert_eq!(online.pushdown_for(&f, StoreKind::Relational, 160), None, "untrained");
        assert!(!online.is_trained());

        // Phase 1: fetch-all wins everywhere (a run of unselective
        // filters) — the model learns to decline.
        for scale in 0..3u32 {
            let size = 10usize << (2 * scale);
            let lf = filtered_features(StoreKind::Relational, size);
            for push in [true, false] {
                let cfg = QuepaConfig { pushdown: push, ..QuepaConfig::default() };
                online.observe(&log(lf, cfg, if push { 80 } else { 10 }));
            }
        }
        for _ in 0..2 {
            // pad to the refit boundary
            online.observe(&log(features(7, false), QuepaConfig::default(), 30));
        }
        assert!(online.is_trained(), "refit after 8 observations");
        assert_eq!(online.pushdown_for(&f, StoreKind::Relational, 160), Some(false));

        // Phase 2: the workload turns selective — pushdown runs now beat
        // the best fetch-all times, and the next refits flip the counsel
        // without any restart.
        for round in 0..4u32 {
            for scale in 0..3u32 {
                let size = 10usize << (2 * scale);
                let lf = filtered_features(StoreKind::Relational, size);
                let cfg = QuepaConfig { pushdown: true, ..QuepaConfig::default() };
                online.observe(&log(lf, cfg, 2));
                let _ = round;
            }
        }
        assert_eq!(online.pushdown_for(&f, StoreKind::Relational, 160), Some(true));
        assert!(online.refits() >= 2);
        assert!(online.render_t1().is_some());
    }

    #[test]
    fn online_is_deterministic_per_seed_and_stream() {
        let run = || {
            let online = OnlineOptimizer::new(5, 32, 4);
            let mut choices = Vec::new();
            for i in 0..40usize {
                let lf = filtered_features(
                    if i % 2 == 0 { StoreKind::Relational } else { StoreKind::Graph },
                    10 << (i % 5),
                );
                let cfg = QuepaConfig { pushdown: i % 3 == 0, ..QuepaConfig::default() };
                online.observe(&log(lf, cfg, 5 + (i as u64 * 13) % 90));
                choices.push((
                    online.choose(&lf, &QuepaConfig::default()),
                    online.pushdown_for(&lf, StoreKind::Document, 64),
                ));
            }
            choices
        };
        assert_eq!(run(), run(), "same seed + same stream ⇒ same decisions");
    }
}
