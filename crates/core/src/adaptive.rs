//! The rule-based optimizer (§V) and the baseline optimizers of §VII-C.
//!
//! ADAPTIVE trains four models on the run logs:
//!
//! * `T1` — a C4.5 decision tree choosing the augmenter;
//! * `T2` — a REPTree regression tree choosing `BATCH_SIZE` (consulted when
//!   `T1` picks BATCH or OUTER-BATCH);
//! * `T3` — a REPTree choosing `THREADS_SIZE` (when a concurrent augmenter
//!   is selected);
//! * `T4` — a REPTree choosing `CACHE_SIZE` (applied softly: the system
//!   moves the cache by `(predicted − current) / 10`, see
//!   [`crate::system::Quepa`]).

use quepa_ml::c45::{C45Params, DecisionTree};
use quepa_ml::dataset::{AttrKind, Dataset, DatasetBuilder, FeatureValue, Schema};
use quepa_ml::reptree::{RegressionTree, RepTreeParams};
use quepa_polystore::StoreKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::{AugmenterKind, QuepaConfig};
use crate::logs::{QueryFeatures, RunLog};

/// Something that can pick a configuration for a query.
pub trait Optimizer: Send + Sync {
    /// Chooses the configuration for a query with the given
    /// characteristics; `current` is the configuration in effect.
    fn choose(&self, features: &QueryFeatures, current: &QuepaConfig) -> QuepaConfig;

    /// Name used in experiment output.
    fn name(&self) -> &'static str;
}

const KINDS: [StoreKind; 4] =
    [StoreKind::Relational, StoreKind::Document, StoreKind::KeyValue, StoreKind::Graph];

fn feature_schema() -> Schema {
    let mut schema = Schema::new(&[
        ("target_kind", AttrKind::Categorical),
        ("store_count", AttrKind::Numeric),
        ("result_size", AttrKind::Numeric),
        ("augmented_size", AttrKind::Numeric),
        ("level", AttrKind::Numeric),
        ("distributed", AttrKind::Categorical),
    ]);
    for k in KINDS {
        schema.intern(0, k.name());
    }
    schema.intern(5, "no");
    schema.intern(5, "yes");
    schema
}

fn feature_row(schema: &Schema, f: &QueryFeatures) -> Vec<FeatureValue> {
    vec![
        FeatureValue::Cat(schema.category_id(0, f.target_kind.name()).expect("pre-interned")),
        FeatureValue::Num(f.store_count as f64),
        FeatureValue::Num(f.result_size as f64),
        FeatureValue::Num(f.augmented_size as f64),
        FeatureValue::Num(f.level as f64),
        FeatureValue::Cat(
            schema.category_id(5, if f.distributed { "yes" } else { "no" }).expect("pre-interned"),
        ),
    ]
}

/// The trained ADAPTIVE optimizer.
pub struct AdaptiveOptimizer {
    schema: Schema,
    t1_augmenter: DecisionTree,
    t2_batch: Option<RegressionTree>,
    t3_threads: Option<RegressionTree>,
    t4_cache: Option<RegressionTree>,
    fallback: QuepaConfig,
}

impl AdaptiveOptimizer {
    /// Trains the four models from run logs (§V Phase 2). Logs are grouped
    /// by *situation* (same query characteristics); within each group the
    /// fastest run defines the best configuration.
    ///
    /// Returns `None` when the logs contain fewer than two distinct
    /// situations — there is nothing to learn from yet, and the paper's
    /// remedy ("we run, in background, previously executed queries with
    /// different configurations") is the caller's job.
    pub fn train(logs: &[RunLog]) -> Option<Self> {
        let schema = feature_schema();
        // situation → (best duration, features, best config).
        let mut best: std::collections::HashMap<
            _,
            (std::time::Duration, QueryFeatures, QuepaConfig),
        > = std::collections::HashMap::new();
        for log in logs {
            let entry = best.entry(log.situation());
            match entry {
                std::collections::hash_map::Entry::Occupied(mut o) => {
                    if log.duration < o.get().0 {
                        o.insert((log.duration, log.features, log.config));
                    }
                }
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert((log.duration, log.features, log.config));
                }
            }
        }
        if best.len() < 2 {
            return None;
        }

        let mut t1 = DatasetBuilder::new(schema.clone());
        let mut t2 = DatasetBuilder::new(schema.clone());
        let mut t3 = DatasetBuilder::new(schema.clone());
        let mut t4 = DatasetBuilder::new(schema.clone());
        for (_, features, config) in best.values() {
            let row = feature_row(&schema, features);
            t1.push_classified(row.clone(), config.augmenter.name());
            if config.augmenter.uses_batching() {
                t2.push_regression(row.clone(), config.batch_size as f64);
            }
            if config.augmenter.uses_threads() {
                t3.push_regression(row.clone(), config.threads_size as f64);
            }
            t4.push_regression(row, config.cache_size as f64);
        }

        let c45 = C45Params { min_leaf: 2, ..Default::default() };
        let rep = RepTreeParams { min_leaf: 2, prune_fraction: 0.2, ..Default::default() };
        let fit_reg = |d: Dataset| (!d.is_empty()).then(|| RegressionTree::fit(&d, rep));
        Some(AdaptiveOptimizer {
            t1_augmenter: DecisionTree::fit(&t1.build(), c45),
            t2_batch: fit_reg(t2.build()),
            t3_threads: fit_reg(t3.build()),
            t4_cache: fit_reg(t4.build()),
            schema,
            fallback: QuepaConfig::default(),
        })
    }
}

impl AdaptiveOptimizer {
    /// Renders the learned `T1` decision tree as indented text — the
    /// paper's Fig. 8 shows an example of this tree.
    pub fn render_t1(&self) -> String {
        let names: Vec<String> = self.schema.names().iter().map(|s| s.to_string()).collect();
        self.t1_augmenter
            .render(&names, |attr, cat| self.schema.category_name(attr, cat).to_owned())
    }
}

impl Optimizer for AdaptiveOptimizer {
    fn choose(&self, features: &QueryFeatures, current: &QuepaConfig) -> QuepaConfig {
        let row = feature_row(&self.schema, features);
        let augmenter = AugmenterKind::parse(self.t1_augmenter.predict_name(&row))
            .unwrap_or(self.fallback.augmenter);
        let batch_size = if augmenter.uses_batching() {
            self.t2_batch
                .as_ref()
                .map(|t| t.predict(&row).round().max(1.0) as usize)
                .unwrap_or(current.batch_size)
        } else {
            current.batch_size
        };
        let threads_size = if augmenter.uses_threads() {
            self.t3_threads
                .as_ref()
                .map(|t| t.predict(&row).round().max(1.0) as usize)
                .unwrap_or(current.threads_size)
        } else {
            current.threads_size
        };
        let cache_size = self
            .t4_cache
            .as_ref()
            .map(|t| t.predict(&row).round().max(0.0) as usize)
            .unwrap_or(current.cache_size);
        QuepaConfig {
            augmenter,
            batch_size,
            threads_size,
            cache_size,
            resilience: current.resilience,
            observability: current.observability,
        }
    }

    fn name(&self) -> &'static str {
        "ADAPTIVE"
    }
}

/// The HUMAN optimizer of §VII-C: an expert's fixed rules of thumb.
#[derive(Debug, Clone, Copy)]
pub struct HumanOptimizer {
    /// Number of CPU cores the expert assumes.
    pub cores: usize,
}

impl HumanOptimizer {
    /// The pinned core count [`Default`] assumes, so optimizer decisions
    /// are reproducible across machines.
    pub const DEFAULT_CORES: usize = 8;

    /// An expert sized for an explicit core count.
    pub fn new(cores: usize) -> Self {
        HumanOptimizer { cores: cores.max(1) }
    }

    /// An expert sized for *this* machine — the only constructor that
    /// reads `available_parallelism`, and therefore the only one whose
    /// decisions vary across hosts. Experiments that must reproduce
    /// byte-for-byte use [`Default`] or [`new`](HumanOptimizer::new).
    pub fn detected() -> Self {
        Self::new(std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4))
    }
}

impl Default for HumanOptimizer {
    fn default() -> Self {
        HumanOptimizer { cores: Self::DEFAULT_CORES }
    }
}

impl Optimizer for HumanOptimizer {
    fn choose(&self, features: &QueryFeatures, current: &QuepaConfig) -> QuepaConfig {
        // The expert's reasoning mirrors §VII-B's findings: tiny queries on
        // few stores don't amortize thread setup; distributed deployments
        // reward batching above all; large local queries want OUTER-BATCH.
        let augmenter = if features.augmented_size < 32 && features.store_count <= 4 {
            AugmenterKind::Sequential
        } else if features.distributed {
            AugmenterKind::Batch
        } else if features.result_size <= 4 {
            // Exploration-like shape: inner concurrency.
            AugmenterKind::Inner
        } else {
            AugmenterKind::OuterBatch
        };
        QuepaConfig {
            augmenter,
            batch_size: if features.distributed { 512 } else { 64 },
            threads_size: self.cores.clamp(2, 16),
            cache_size: current.cache_size,
            resilience: current.resilience,
            observability: current.observability,
        }
    }

    fn name(&self) -> &'static str {
        "HUMAN"
    }
}

/// The RANDOM optimizer of §VII-C: uniform draws from the knob palettes.
pub struct RandomOptimizer {
    rng: parking_lot::Mutex<StdRng>,
}

impl RandomOptimizer {
    /// Creates a seeded random optimizer (deterministic experiment runs).
    pub fn new(seed: u64) -> Self {
        RandomOptimizer { rng: parking_lot::Mutex::new(StdRng::seed_from_u64(seed)) }
    }
}

impl Optimizer for RandomOptimizer {
    fn choose(&self, _features: &QueryFeatures, current: &QuepaConfig) -> QuepaConfig {
        const BATCHES: [usize; 6] = [1, 8, 32, 128, 512, 2048];
        const THREADS: [usize; 5] = [1, 2, 4, 8, 16];
        const CACHES: [usize; 4] = [0, 1024, 8192, 65536];
        let mut rng = self.rng.lock();
        QuepaConfig {
            augmenter: AugmenterKind::ALL[rng.gen_range(0..AugmenterKind::ALL.len())],
            batch_size: BATCHES[rng.gen_range(0..BATCHES.len())],
            threads_size: THREADS[rng.gen_range(0..THREADS.len())],
            cache_size: if rng.gen_bool(0.5) {
                current.cache_size
            } else {
                CACHES[rng.gen_range(0..CACHES.len())]
            },
            resilience: current.resilience,
            observability: current.observability,
        }
    }

    fn name(&self) -> &'static str {
        "RANDOM"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn features(result_size: usize, distributed: bool) -> QueryFeatures {
        QueryFeatures {
            target_kind: StoreKind::Relational,
            store_count: 10,
            result_size,
            augmented_size: result_size * 4,
            level: 0,
            distributed,
        }
    }

    fn log(f: QueryFeatures, config: QuepaConfig, ms: u64) -> RunLog {
        RunLog { features: f, config, duration: Duration::from_millis(ms) }
    }

    /// Synthetic logs where small queries run best SEQUENTIAL and large
    /// ones best OUTER-BATCH with big batches.
    fn training_logs() -> Vec<RunLog> {
        let mut logs = Vec::new();
        for scale in 0..6u32 {
            let size = 10usize << (2 * scale); // 10, 40, 160, ... distinct buckets
            let f = features(size, false);
            let small = size < 100;
            for aug in AugmenterKind::ALL {
                let cfg = QuepaConfig {
                    augmenter: aug,
                    batch_size: if small { 4 } else { 256 },
                    threads_size: if small { 1 } else { 8 },
                    cache_size: 4096,
                    ..QuepaConfig::default()
                };
                let time = match (small, aug) {
                    (true, AugmenterKind::Sequential) => 5,
                    (true, _) => 20,
                    (false, AugmenterKind::OuterBatch) => 50,
                    (false, _) => 200,
                };
                logs.push(log(f, cfg, time));
            }
        }
        logs
    }

    #[test]
    fn adaptive_learns_the_regimes() {
        let opt = AdaptiveOptimizer::train(&training_logs()).expect("trainable");
        let current = QuepaConfig::default();
        let small = opt.choose(&features(10, false), &current);
        assert_eq!(small.augmenter, AugmenterKind::Sequential);
        let large = opt.choose(&features(10_240, false), &current);
        assert_eq!(large.augmenter, AugmenterKind::OuterBatch);
        assert!(large.batch_size >= 64, "learned a big batch: {}", large.batch_size);
        assert!(large.threads_size >= 2);
    }

    #[test]
    fn adaptive_needs_enough_situations() {
        assert!(AdaptiveOptimizer::train(&[]).is_none());
        let one = vec![log(features(10, false), QuepaConfig::default(), 5)];
        assert!(AdaptiveOptimizer::train(&one).is_none());
    }

    #[test]
    fn human_rules() {
        let h = HumanOptimizer { cores: 8 };
        let current = QuepaConfig::default();
        let tiny = h.choose(
            &QueryFeatures {
                target_kind: StoreKind::KeyValue,
                store_count: 4,
                result_size: 3,
                augmented_size: 9,
                level: 0,
                distributed: false,
            },
            &current,
        );
        assert_eq!(tiny.augmenter, AugmenterKind::Sequential);
        let dist = h.choose(&features(1000, true), &current);
        assert_eq!(dist.augmenter, AugmenterKind::Batch);
        assert_eq!(dist.batch_size, 512);
        let big = h.choose(&features(10_000, false), &current);
        assert_eq!(big.augmenter, AugmenterKind::OuterBatch);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let current = QuepaConfig::default();
        let a: Vec<_> = {
            let r = RandomOptimizer::new(9);
            (0..5).map(|_| r.choose(&features(10, false), &current)).collect()
        };
        let b: Vec<_> = {
            let r = RandomOptimizer::new(9);
            (0..5).map(|_| r.choose(&features(10, false), &current)).collect()
        };
        assert_eq!(a, b);
        // And actually varies across draws.
        let r = RandomOptimizer::new(1);
        let picks: std::collections::HashSet<_> =
            (0..20).map(|_| r.choose(&features(10, false), &current).augmenter).collect();
        assert!(picks.len() > 1);
    }

    #[test]
    fn t1_renders_like_fig8() {
        let opt = AdaptiveOptimizer::train(&training_logs()).unwrap();
        let text = opt.render_t1();
        assert!(text.contains('?'), "{text}");
        assert!(text.contains("→"), "{text}");
        // The learned tree splits on a size feature and names augmenters.
        assert!(text.contains("SEQUENTIAL") || text.contains("OUTER-BATCH"), "{text}");
    }

    #[test]
    fn optimizer_names() {
        assert_eq!(HumanOptimizer::default().name(), "HUMAN");
        assert_eq!(RandomOptimizer::new(0).name(), "RANDOM");
        let opt = AdaptiveOptimizer::train(&training_logs()).unwrap();
        assert_eq!(opt.name(), "ADAPTIVE");
    }
}
