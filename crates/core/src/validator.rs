//! The Validator (§III-A): "is used to assess whether a query can be
//! augmented or not. For example, queries containing aggregative functions
//! cannot be augmented. The validator can also rewrite queries by adding
//! all identifiers of data objects that are not explicitly mentioned in the
//! query."
//!
//! Validation is necessarily language-aware, but deliberately shallow: it
//! inspects the query *text* per store paradigm without executing anything.

use quepa_polystore::StoreKind;

use crate::error::{QuepaError, Result};

/// The outcome of validation: the (possibly rewritten) query to execute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidatedQuery {
    /// The query to actually run against the store.
    pub query: String,
    /// True when the validator had to rewrite the original text.
    pub rewritten: bool,
}

/// The query validator.
#[derive(Debug, Clone, Copy, Default)]
pub struct Validator;

impl Validator {
    /// Validates (and possibly rewrites) a query for augmentation.
    pub fn validate(&self, kind: StoreKind, query: &str) -> Result<ValidatedQuery> {
        match kind {
            StoreKind::Relational => validate_sql(query),
            StoreKind::Document => validate_doc(query),
            StoreKind::KeyValue => validate_kv(query),
            StoreKind::Graph => validate_graph(query),
        }
    }
}

const SQL_AGGREGATES: [&str; 5] = ["count(", "sum(", "avg(", "min(", "max("];

fn validate_sql(query: &str) -> Result<ValidatedQuery> {
    let trimmed = query.trim();
    let lower = trimmed.to_lowercase();
    if !lower.starts_with("select") {
        return Err(QuepaError::NotAugmentable {
            reason: "only SELECT queries can be augmented".into(),
        });
    }
    // Locate the projection (between SELECT and FROM) and refuse
    // aggregates there.
    let Some(from_pos) = lower.find(" from ") else {
        return Err(QuepaError::Validation("SELECT without FROM".into()));
    };
    let projection = lower["select".len()..from_pos].replace(' ', "");
    if SQL_AGGREGATES.iter().any(|a| projection.contains(a)) {
        return Err(QuepaError::NotAugmentable {
            reason: "aggregative functions cannot be augmented".into(),
        });
    }
    if lower.contains("group by") {
        return Err(QuepaError::NotAugmentable {
            reason: "GROUP BY queries cannot be augmented".into(),
        });
    }
    // Projections that are not `*` may omit the key column; rewrite to `*`
    // so every result carries its identifier (the paper's "adding all
    // identifiers of data objects that are not explicitly mentioned").
    if projection == "*" {
        Ok(ValidatedQuery { query: trimmed.to_owned(), rewritten: false })
    } else {
        let rest = &trimmed[from_pos..];
        Ok(ValidatedQuery { query: format!("SELECT *{rest}"), rewritten: true })
    }
}

fn validate_doc(query: &str) -> Result<ValidatedQuery> {
    let compact: String = query.chars().filter(|c| !c.is_whitespace()).collect();
    if !compact.starts_with("db.") {
        return Err(QuepaError::Validation("expected a db.<collection>.find() query".into()));
    }
    if compact.contains(".count(") {
        return Err(QuepaError::NotAugmentable {
            reason: "count() aggregates cannot be augmented".into(),
        });
    }
    if compact.contains(".remove(") {
        return Err(QuepaError::NotAugmentable {
            reason: "remove() mutates and cannot be augmented".into(),
        });
    }
    if !compact.contains(".find(") {
        return Err(QuepaError::Validation("expected a find() query".into()));
    }
    // Documents always carry their _id, so no projection rewriting needed.
    Ok(ValidatedQuery { query: query.to_owned(), rewritten: false })
}

fn validate_kv(query: &str) -> Result<ValidatedQuery> {
    let verb = query.split_whitespace().next().unwrap_or("").to_uppercase();
    match verb.as_str() {
        "GET" | "MGET" | "SCAN" | "KEYS" => {
            Ok(ValidatedQuery { query: query.to_owned(), rewritten: false })
        }
        "DBSIZE" | "EXISTS" => Err(QuepaError::NotAugmentable {
            reason: format!("{verb} returns a scalar, not data objects"),
        }),
        "SET" | "DEL" => Err(QuepaError::NotAugmentable {
            reason: format!("{verb} mutates and cannot be augmented"),
        }),
        other => Err(QuepaError::Validation(format!("unknown command {other}"))),
    }
}

fn validate_graph(query: &str) -> Result<ValidatedQuery> {
    let lower = query.to_lowercase();
    if !lower.trim_start().starts_with("match") {
        return Err(QuepaError::Validation("expected a MATCH query".into()));
    }
    for agg in ["count(", "collect(", "sum(", "avg("] {
        if lower.replace(' ', "").contains(agg) {
            return Err(QuepaError::NotAugmentable {
                reason: "aggregating MATCH queries cannot be augmented".into(),
            });
        }
    }
    Ok(ValidatedQuery { query: query.to_owned(), rewritten: false })
}

#[cfg(test)]
mod tests {
    use super::*;

    const V: Validator = Validator;

    #[test]
    fn sql_select_star_passes_unchanged() {
        let r = V
            .validate(StoreKind::Relational, "SELECT * FROM inventory WHERE name LIKE '%wish%'")
            .unwrap();
        assert!(!r.rewritten);
        assert!(r.query.contains('*'));
    }

    #[test]
    fn sql_projection_rewritten_to_carry_keys() {
        let r = V
            .validate(StoreKind::Relational, "SELECT name FROM inventory WHERE name = 'Wish'")
            .unwrap();
        assert!(r.rewritten);
        assert_eq!(r.query, "SELECT * FROM inventory WHERE name = 'Wish'");
    }

    #[test]
    fn sql_aggregates_refused() {
        for q in [
            "SELECT COUNT(*) FROM t",
            "SELECT sum(total) FROM sales",
            "SELECT AVG( total ) FROM sales",
        ] {
            assert!(matches!(
                V.validate(StoreKind::Relational, q),
                Err(QuepaError::NotAugmentable { .. })
            ));
        }
    }

    #[test]
    fn sql_dml_refused() {
        assert!(matches!(
            V.validate(StoreKind::Relational, "DELETE FROM t"),
            Err(QuepaError::NotAugmentable { .. })
        ));
        assert!(matches!(
            V.validate(StoreKind::Relational, "INSERT INTO t VALUES (1)"),
            Err(QuepaError::NotAugmentable { .. })
        ));
    }

    #[test]
    fn doc_queries() {
        assert!(V.validate(StoreKind::Document, r#"db.albums.find({"a":1})"#).is_ok());
        assert!(matches!(
            V.validate(StoreKind::Document, "db.albums.count()"),
            Err(QuepaError::NotAugmentable { .. })
        ));
        assert!(matches!(
            V.validate(StoreKind::Document, r#"db.albums.remove({})"#),
            Err(QuepaError::NotAugmentable { .. })
        ));
        assert!(matches!(
            V.validate(StoreKind::Document, "albums.find()"),
            Err(QuepaError::Validation(_))
        ));
        // Whitespace does not hide the aggregate.
        assert!(matches!(
            V.validate(StoreKind::Document, "db.albums . count ( )"),
            Err(QuepaError::NotAugmentable { .. })
        ));
    }

    #[test]
    fn kv_commands() {
        assert!(V.validate(StoreKind::KeyValue, "GET k1").is_ok());
        assert!(V.validate(StoreKind::KeyValue, "MGET a b").is_ok());
        assert!(V.validate(StoreKind::KeyValue, "SCAN k1 COUNT 10").is_ok());
        assert!(V.validate(StoreKind::KeyValue, "keys *").is_ok(), "case-insensitive");
        for q in ["DBSIZE", "EXISTS k", "SET a 1", "DEL a"] {
            assert!(matches!(
                V.validate(StoreKind::KeyValue, q),
                Err(QuepaError::NotAugmentable { .. })
            ));
        }
        assert!(matches!(
            V.validate(StoreKind::KeyValue, "FLUSHALL"),
            Err(QuepaError::Validation(_))
        ));
    }

    #[test]
    fn graph_queries() {
        assert!(V.validate(StoreKind::Graph, "MATCH (n:Song) WHERE n.plays > 10 RETURN n").is_ok());
        assert!(matches!(
            V.validate(StoreKind::Graph, "MATCH (n) RETURN count(n)"),
            Err(QuepaError::NotAugmentable { .. })
        ));
        assert!(matches!(
            V.validate(StoreKind::Graph, "CREATE (n)"),
            Err(QuepaError::Validation(_))
        ));
    }
}
