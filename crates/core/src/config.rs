//! Configurations: the augmenter family and its knobs.
//!
//! "A configuration is a combination of the augmenter in use, CACHE_SIZE
//! and, if needed, BATCH_SIZE and THREADS_SIZE" (§V). On top of the
//! paper's knobs, [`QuepaConfig`] carries a [`ResilienceConfig`]: the
//! retry/breaker policy of every key-based round trip and the degradation
//! mode deciding whether an unreachable store fails the whole
//! augmentation or shrinks it to a partial answer.

use std::fmt;

use quepa_polystore::retry::{BreakerConfig, RetryPolicy};

/// The six augmenters of §IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AugmenterKind {
    /// One direct-access query per related object (the baseline of
    /// Fig. 6(a)).
    Sequential,
    /// Groups global keys by target store and fetches each group in one
    /// query of up to `BATCH_SIZE` keys (§IV-A, Fig. 6(b)).
    Batch,
    /// Parallelizes the lookups *within* each result's augmentation
    /// (§IV-B(a), Fig. 6(c)); best for exploration, worst at scale.
    Inner,
    /// One task per result of the original answer, each fetching its
    /// related objects sequentially (§IV-B(b), Fig. 7(a)).
    Outer,
    /// Threads consume key groups while the main process keeps filling
    /// them: batching + multi-threading (§IV-B(c), Fig. 7(b)).
    OuterBatch,
    /// Splits `THREADS_SIZE` between outer and inner parallelism
    /// (§IV-B(d), Fig. 7(c)).
    OuterInner,
}

impl AugmenterKind {
    /// All augmenters, in paper order.
    pub const ALL: [AugmenterKind; 6] = [
        AugmenterKind::Sequential,
        AugmenterKind::Batch,
        AugmenterKind::Inner,
        AugmenterKind::Outer,
        AugmenterKind::OuterBatch,
        AugmenterKind::OuterInner,
    ];

    /// The display name used in experiment output (paper capitalization).
    pub fn name(self) -> &'static str {
        match self {
            AugmenterKind::Sequential => "SEQUENTIAL",
            AugmenterKind::Batch => "BATCH",
            AugmenterKind::Inner => "INNER",
            AugmenterKind::Outer => "OUTER",
            AugmenterKind::OuterBatch => "OUTER-BATCH",
            AugmenterKind::OuterInner => "OUTER-INNER",
        }
    }

    /// Parses a paper-style name (case-insensitive).
    pub fn parse(name: &str) -> Option<Self> {
        Self::ALL.iter().copied().find(|k| k.name().eq_ignore_ascii_case(name))
    }

    /// Whether this augmenter reads `BATCH_SIZE`.
    pub fn uses_batching(self) -> bool {
        matches!(self, AugmenterKind::Batch | AugmenterKind::OuterBatch)
    }

    /// Whether this augmenter reads `THREADS_SIZE`.
    pub fn uses_threads(self) -> bool {
        !matches!(self, AugmenterKind::Sequential | AugmenterKind::Batch)
    }
}

impl fmt::Display for AugmenterKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What happens when a store stays unreachable after every allowed
/// attempt (or behind an open circuit breaker).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DegradeMode {
    /// Propagate the error: the whole augmentation fails (the paper's
    /// implicit behaviour, and the default).
    #[default]
    FailFast,
    /// Degrade to a partial answer: the affected keys land in the
    /// answer's `missing` list with an
    /// [`Unreachable`](crate::augmenter::MissingReason::Unreachable)
    /// reason and the rest of the augmentation completes.
    Partial,
}

/// The resilience policy of every key-based round trip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResilienceConfig {
    /// Retry/backoff/deadline policy per round trip.
    pub retry: RetryPolicy,
    /// Per-store circuit-breaker knobs (`trip_after == 0` disables).
    pub breaker: BreakerConfig,
    /// Fail fast or degrade to a partial answer.
    pub degrade: DegradeMode,
}

impl ResilienceConfig {
    /// True when the whole layer is pass-through: one attempt, no
    /// deadline, no breaker, fail-fast — the augmenters then skip the
    /// resilience machinery entirely (the happy path pays ~nothing).
    pub fn is_trivial(&self) -> bool {
        self.retry.is_trivial()
            && self.breaker.is_disabled()
            && self.degrade == DegradeMode::FailFast
    }

    /// A production-shaped policy: standard retries, a breaker tripping
    /// after 5 consecutive failures, partial-answer degradation.
    pub fn resilient() -> Self {
        ResilienceConfig {
            retry: RetryPolicy::standard(),
            breaker: BreakerConfig { trip_after: 5, cooldown_calls: 16 },
            degrade: DegradeMode::Partial,
        }
    }

    /// Clamps the knobs into meaningful ranges.
    #[must_use]
    pub fn sanitized(mut self) -> Self {
        self.retry = self.retry.sanitized();
        self
    }
}

/// A full QUEPA configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuepaConfig {
    /// Which augmenter executes the augmentation.
    pub augmenter: AugmenterKind,
    /// Max keys per batched query (BATCH/OUTER-BATCH).
    pub batch_size: usize,
    /// Max simultaneous worker threads (concurrent augmenters).
    pub threads_size: usize,
    /// Max objects in the LRU cache.
    pub cache_size: usize,
    /// Retry, circuit-breaker and degradation policy.
    pub resilience: ResilienceConfig,
    /// Whether filtered augmentations may push the predicate down to
    /// connectors that support it (the planner still decides per store
    /// group; unfiltered queries are unaffected). On by default —
    /// answers are bit-identical either way, pushdown only changes the
    /// wire traffic.
    pub pushdown: bool,
    /// Whether the observability layer records (stage-scoped spans,
    /// per-store/per-stage latency histograms). Off by default: the
    /// disabled path must stay within noise of the un-instrumented
    /// hot path (pinned by the `metrics_overhead` bench).
    pub observability: bool,
}

impl Default for QuepaConfig {
    fn default() -> Self {
        QuepaConfig {
            augmenter: AugmenterKind::OuterBatch,
            batch_size: 64,
            threads_size: 4,
            cache_size: 4096,
            resilience: ResilienceConfig::default(),
            pushdown: true,
            observability: false,
        }
    }
}

impl QuepaConfig {
    /// A configuration using the given augmenter and default knobs.
    pub fn with_augmenter(augmenter: AugmenterKind) -> Self {
        QuepaConfig { augmenter, ..Default::default() }
    }

    /// Clamps the knobs into sane ranges (at least 1 each).
    #[must_use]
    pub fn sanitized(mut self) -> Self {
        self.batch_size = self.batch_size.max(1);
        self.threads_size = self.threads_size.max(1);
        // cache_size 0 is legal: it disables caching.
        self.resilience = self.resilience.sanitized();
        self
    }
}

impl fmt::Display for QuepaConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.augmenter)?;
        let mut first = true;
        if self.augmenter.uses_batching() {
            write!(f, "batch={}", self.batch_size)?;
            first = false;
        }
        if self.augmenter.uses_threads() {
            write!(f, "{}threads={}", if first { "" } else { ", " }, self.threads_size)?;
            first = false;
        }
        write!(f, "{}cache={}", if first { "" } else { ", " }, self.cache_size)?;
        if !self.resilience.is_trivial() {
            write!(f, ", attempts={}", self.resilience.retry.max_attempts)?;
            if !self.resilience.breaker.is_disabled() {
                write!(f, ", breaker={}", self.resilience.breaker.trip_after)?;
            }
            if self.resilience.degrade == DegradeMode::Partial {
                f.write_str(", partial")?;
            }
        }
        if !self.pushdown {
            f.write_str(", no-pushdown")?;
        }
        if self.observability {
            f.write_str(", obs")?;
        }
        f.write_str(")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for k in AugmenterKind::ALL {
            assert_eq!(AugmenterKind::parse(k.name()), Some(k));
        }
        assert_eq!(AugmenterKind::parse("outer-batch"), Some(AugmenterKind::OuterBatch));
        assert_eq!(AugmenterKind::parse("nope"), None);
    }

    #[test]
    fn knob_usage() {
        assert!(!AugmenterKind::Sequential.uses_batching());
        assert!(!AugmenterKind::Sequential.uses_threads());
        assert!(AugmenterKind::Batch.uses_batching());
        assert!(!AugmenterKind::Batch.uses_threads());
        assert!(AugmenterKind::OuterBatch.uses_batching());
        assert!(AugmenterKind::OuterBatch.uses_threads());
        assert!(AugmenterKind::Inner.uses_threads());
    }

    #[test]
    fn sanitize_floors_knobs() {
        let c = QuepaConfig {
            augmenter: AugmenterKind::Batch,
            batch_size: 0,
            threads_size: 0,
            cache_size: 0,
            resilience: ResilienceConfig::default(),
            pushdown: true,
            observability: false,
        }
        .sanitized();
        assert_eq!(c.batch_size, 1);
        assert_eq!(c.threads_size, 1);
        assert_eq!(c.cache_size, 0, "cache may be disabled");
    }

    #[test]
    fn display_shows_relevant_knobs() {
        let c = QuepaConfig::with_augmenter(AugmenterKind::Sequential);
        assert_eq!(c.to_string(), "SEQUENTIAL(cache=4096)");
        let c = QuepaConfig::with_augmenter(AugmenterKind::OuterBatch);
        assert!(c.to_string().contains("batch=64"));
        assert!(c.to_string().contains("threads=4"));
    }

    #[test]
    fn default_resilience_is_trivial() {
        let r = ResilienceConfig::default();
        assert!(r.is_trivial(), "the default must keep the happy path free");
        assert!(!ResilienceConfig::resilient().is_trivial());
        let c = QuepaConfig::default();
        assert!(!c.to_string().contains("attempts"), "trivial resilience stays silent: {c}");
    }

    #[test]
    fn display_shows_resilience_when_configured() {
        let c = QuepaConfig {
            resilience: ResilienceConfig::resilient(),
            ..QuepaConfig::with_augmenter(AugmenterKind::Sequential)
        };
        let s = c.to_string();
        assert!(s.contains("attempts=4"), "{s}");
        assert!(s.contains("breaker=5"), "{s}");
        assert!(s.contains("partial"), "{s}");
    }

    #[test]
    fn display_flags_observability() {
        let c = QuepaConfig::default();
        assert!(!c.to_string().contains("obs"), "disabled observability stays silent: {c}");
        let c = QuepaConfig { observability: true, ..QuepaConfig::default() };
        assert!(c.to_string().ends_with(", obs)"), "{c}");
    }

    #[test]
    fn display_flags_disabled_pushdown() {
        let c = QuepaConfig::default();
        assert!(c.pushdown, "pushdown is on by default");
        assert!(!c.to_string().contains("pushdown"), "default pushdown stays silent: {c}");
        let c = QuepaConfig { pushdown: false, observability: true, ..QuepaConfig::default() };
        assert!(c.to_string().ends_with(", no-pushdown, obs)"), "{c}");
    }

    #[test]
    fn sanitize_floors_retry_attempts() {
        let c = QuepaConfig {
            resilience: ResilienceConfig {
                retry: quepa_polystore::RetryPolicy { max_attempts: 0, ..Default::default() },
                ..ResilienceConfig::default()
            },
            ..QuepaConfig::default()
        }
        .sanitized();
        assert_eq!(c.resilience.retry.max_attempts, 1);
    }
}
