//! The LRU object cache (§IV-C).
//!
//! "All augmenters rely on a caching mechanism with a LRU policy that
//! allows the fast access to the last accessed data objects by means of
//! their global-key." The paper uses Ehcache; this is a thread-safe,
//! intrusive-list LRU with O(1) get/insert.
//!
//! To keep the concurrent augmenters from serializing on a single lock,
//! large caches are split into [`SHARD_COUNT`] shards, each an exact LRU
//! over its own key-hash slice with its own `parking_lot` mutex. Small
//! caches (below [`SHARD_THRESHOLD`]) stay single-sharded so that the
//! global LRU order — which unit tests and tiny-capacity configurations
//! rely on — is exact. The shard count is fixed at construction; resizing
//! redistributes capacity over the existing shards (`total / n` each, the
//! remainder spread over the first shards), so the CACHE_SIZE accounting
//! the adaptive optimizer adjusts (±(predicted−current)/10) is unchanged:
//! the shard capacities always sum to the configured total.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;
use quepa_pdm::{DataObject, GlobalKey};

const NIL: usize = usize::MAX;

/// Shard fan-out for large caches.
const SHARD_COUNT: usize = 8;

/// Total capacity below which the cache stays single-sharded (exact
/// global LRU).
const SHARD_THRESHOLD: usize = 256;

#[derive(Debug)]
struct Entry {
    key: GlobalKey,
    value: DataObject,
    prev: usize,
    next: usize,
}

#[derive(Debug, Default)]
struct LruInner {
    map: HashMap<GlobalKey, usize>,
    slab: Vec<Entry>,
    free: Vec<usize>,
    head: usize, // most recent
    tail: usize, // least recent
}

/// One shard: an exact LRU over its key-hash slice.
#[derive(Debug)]
struct Shard {
    inner: Mutex<ShardInner>,
}

#[derive(Debug)]
struct ShardInner {
    capacity: usize,
    lru: LruInner,
}

impl Shard {
    fn new(capacity: usize) -> Self {
        Shard {
            inner: Mutex::new(ShardInner {
                capacity,
                lru: LruInner { head: NIL, tail: NIL, ..Default::default() },
            }),
        }
    }
}

/// A thread-safe LRU cache of data objects keyed by global key.
#[derive(Debug)]
pub struct ObjectCache {
    shards: Vec<Shard>,
    capacity: Mutex<usize>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Splits `total` capacity over `n` shards: `total / n` each, remainder
/// spread over the first shards, so the shard capacities sum to `total`.
fn split_capacity(total: usize, n: usize) -> impl Iterator<Item = usize> {
    let base = total / n;
    let extra = total % n;
    (0..n).map(move |i| base + usize::from(i < extra))
}

impl ObjectCache {
    /// Creates a cache holding at most `capacity` objects (0 disables it).
    pub fn new(capacity: usize) -> Self {
        let shard_count = if capacity >= SHARD_THRESHOLD { SHARD_COUNT } else { 1 };
        ObjectCache {
            shards: split_capacity(capacity, shard_count).map(Shard::new).collect(),
            capacity: Mutex::new(capacity),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The current total capacity.
    pub fn capacity(&self) -> usize {
        *self.capacity.lock()
    }

    /// Adjusts the capacity, evicting LRU entries from shards that shrank.
    /// This is the knob the adaptive optimizer turns by
    /// ±(predicted−current)/10. The shard count does not change.
    pub fn resize(&self, capacity: usize) {
        *self.capacity.lock() = capacity;
        for (shard, cap) in self.shards.iter().zip(split_capacity(capacity, self.shards.len())) {
            let mut inner = shard.inner.lock();
            inner.capacity = cap;
            while inner.lru.map.len() > cap {
                evict_tail(&mut inner.lru);
            }
        }
    }

    /// Number of cached objects across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.inner.lock().lru.map.len()).sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn shard(&self, key: &GlobalKey) -> &Shard {
        if self.shards.len() == 1 {
            return &self.shards[0];
        }
        // Fibonacci-mix the key's precomputed hash so the shard index draws
        // on all of its bits, not just the low ones.
        let mixed = key.precomputed_hash().wrapping_mul(0x9e37_79b9_7f4a_7c15);
        &self.shards[(mixed >> 32) as usize % self.shards.len()]
    }

    /// Looks up a key, marking it most-recently-used on a hit.
    pub fn get(&self, key: &GlobalKey) -> Option<DataObject> {
        let result = self.probe(key);
        match result.is_some() {
            true => self.tally_hit(),
            false => self.tally_miss(),
        }
        result
    }

    /// Looks up a key *without* touching the hit/miss counters (the LRU
    /// position still updates). The single-flight layer probes first and
    /// decides afterwards how the lookup counts: a waiter that receives a
    /// coalesced object tallies a hit — exactly what a serial execution
    /// would have recorded — while the flight leader tallies the miss.
    pub fn probe(&self, key: &GlobalKey) -> Option<DataObject> {
        let mut inner = self.shard(key).inner.lock();
        let &slot = inner.lru.map.get(key)?;
        detach(&mut inner.lru, slot);
        attach_front(&mut inner.lru, slot);
        Some(inner.lru.slab[slot].value.clone())
    }

    /// Counts one hit (for probes resolved out-of-band — see
    /// [`probe`](ObjectCache::probe)).
    pub fn tally_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one miss (for probes resolved out-of-band).
    pub fn tally_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Inserts (or refreshes) an object, evicting the shard's LRU entry if
    /// the shard is full.
    pub fn insert(&self, object: DataObject) {
        let key = object.key().clone();
        let mut inner = self.shard(&key).inner.lock();
        let capacity = inner.capacity;
        if capacity == 0 {
            return;
        }
        if let Some(&slot) = inner.lru.map.get(&key) {
            inner.lru.slab[slot].value = object;
            detach(&mut inner.lru, slot);
            attach_front(&mut inner.lru, slot);
            return;
        }
        if inner.lru.map.len() >= capacity {
            evict_tail(&mut inner.lru);
        }
        let slot = match inner.lru.free.pop() {
            Some(slot) => {
                inner.lru.slab[slot] =
                    Entry { key: key.clone(), value: object, prev: NIL, next: NIL };
                slot
            }
            None => {
                inner.lru.slab.push(Entry {
                    key: key.clone(),
                    value: object,
                    prev: NIL,
                    next: NIL,
                });
                inner.lru.slab.len() - 1
            }
        };
        inner.lru.map.insert(key, slot);
        attach_front(&mut inner.lru, slot);
    }

    /// Removes a key (used when lazy deletion discovers a vanished object).
    pub fn remove(&self, key: &GlobalKey) -> bool {
        let mut inner = self.shard(key).inner.lock();
        let Some(slot) = inner.lru.map.remove(key) else { return false };
        detach(&mut inner.lru, slot);
        inner.lru.free.push(slot);
        true
    }

    /// Clears the cache (cold-cache experiment runs).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut inner = shard.inner.lock();
            inner.lru.map.clear();
            inner.lru.slab.clear();
            inner.lru.free.clear();
            inner.lru.head = NIL;
            inner.lru.tail = NIL;
        }
    }

    /// `(hits, misses)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits.load(Ordering::Relaxed), self.misses.load(Ordering::Relaxed))
    }

    /// Resets the hit/miss counters.
    pub fn reset_stats(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

fn detach(inner: &mut LruInner, slot: usize) {
    let (prev, next) = (inner.slab[slot].prev, inner.slab[slot].next);
    if prev != NIL {
        inner.slab[prev].next = next;
    } else if inner.head == slot {
        inner.head = next;
    }
    if next != NIL {
        inner.slab[next].prev = prev;
    } else if inner.tail == slot {
        inner.tail = prev;
    }
    inner.slab[slot].prev = NIL;
    inner.slab[slot].next = NIL;
}

fn attach_front(inner: &mut LruInner, slot: usize) {
    inner.slab[slot].prev = NIL;
    inner.slab[slot].next = inner.head;
    if inner.head != NIL {
        let head = inner.head;
        inner.slab[head].prev = slot;
    }
    inner.head = slot;
    if inner.tail == NIL {
        inner.tail = slot;
    }
}

fn evict_tail(inner: &mut LruInner) {
    let tail = inner.tail;
    if tail == NIL {
        return;
    }
    let key = inner.slab[tail].key.clone();
    detach(inner, tail);
    inner.map.remove(&key);
    inner.free.push(tail);
}

#[cfg(test)]
mod tests {
    use super::*;
    use quepa_pdm::Value;

    fn obj(i: usize) -> DataObject {
        DataObject::new(
            format!("d.c.k{i}").parse().unwrap(),
            Value::object([("n", Value::Int(i as i64))]),
        )
    }

    fn key(i: usize) -> GlobalKey {
        format!("d.c.k{i}").parse().unwrap()
    }

    #[test]
    fn insert_get() {
        let c = ObjectCache::new(4);
        c.insert(obj(1));
        assert_eq!(c.get(&key(1)).unwrap().value().get("n"), Some(&Value::Int(1)));
        assert!(c.get(&key(2)).is_none());
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn lru_eviction_order() {
        let c = ObjectCache::new(3);
        for i in 0..3 {
            c.insert(obj(i));
        }
        // Touch 0 so 1 becomes LRU.
        assert!(c.get(&key(0)).is_some());
        c.insert(obj(3));
        assert!(c.get(&key(1)).is_none(), "1 was LRU and evicted");
        assert!(c.get(&key(0)).is_some());
        assert!(c.get(&key(2)).is_some());
        assert!(c.get(&key(3)).is_some());
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn reinsert_refreshes() {
        let c = ObjectCache::new(2);
        c.insert(obj(1));
        c.insert(obj(2));
        c.insert(obj(1)); // refresh 1 — 2 becomes LRU
        c.insert(obj(3));
        assert!(c.get(&key(2)).is_none());
        assert!(c.get(&key(1)).is_some());
    }

    #[test]
    fn zero_capacity_disables() {
        let c = ObjectCache::new(0);
        c.insert(obj(1));
        assert!(c.is_empty());
        assert!(c.get(&key(1)).is_none());
    }

    #[test]
    fn resize_shrinks_and_grows() {
        let c = ObjectCache::new(4);
        for i in 0..4 {
            c.insert(obj(i));
        }
        c.resize(2);
        assert_eq!(c.len(), 2);
        // The two most recent survive.
        assert!(c.get(&key(2)).is_some());
        assert!(c.get(&key(3)).is_some());
        c.resize(8);
        for i in 10..16 {
            c.insert(obj(i));
        }
        assert_eq!(c.len(), 8);
    }

    #[test]
    fn remove_and_reuse_slot() {
        let c = ObjectCache::new(4);
        c.insert(obj(1));
        assert!(c.remove(&key(1)));
        assert!(!c.remove(&key(1)));
        c.insert(obj(2));
        assert!(c.get(&key(2)).is_some());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn clear_empties() {
        let c = ObjectCache::new(4);
        c.insert(obj(1));
        c.clear();
        assert!(c.is_empty());
        assert!(c.get(&key(1)).is_none());
    }

    #[test]
    fn concurrent_access() {
        use std::sync::Arc;
        let c = Arc::new(ObjectCache::new(64));
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for i in 0..500 {
                        c.insert(obj(t * 1000 + i % 100));
                        c.get(&key(t * 1000 + (i + 1) % 100));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(c.len() <= 64);
    }

    #[test]
    fn single_entry_edge_cases() {
        let c = ObjectCache::new(1);
        c.insert(obj(1));
        c.insert(obj(2));
        assert_eq!(c.len(), 1);
        assert!(c.get(&key(1)).is_none());
        assert!(c.get(&key(2)).is_some());
        assert!(c.remove(&key(2)));
        assert!(c.is_empty());
        c.insert(obj(3));
        assert!(c.get(&key(3)).is_some());
    }

    #[test]
    fn small_caches_use_one_shard() {
        let c = ObjectCache::new(SHARD_THRESHOLD - 1);
        assert_eq!(c.shards.len(), 1);
        let c = ObjectCache::new(SHARD_THRESHOLD);
        assert_eq!(c.shards.len(), SHARD_COUNT);
    }

    #[test]
    fn shard_capacities_sum_to_total() {
        for total in [256, 257, 260, 263, 1000, 4096] {
            let c = ObjectCache::new(total);
            assert_eq!(c.capacity(), total);
            let sum: usize = c.shards.iter().map(|s| s.inner.lock().capacity).sum();
            assert_eq!(sum, total, "shard capacities must sum to {total}");
        }
    }

    #[test]
    fn sharded_cache_caps_total_size() {
        let c = ObjectCache::new(300);
        assert_eq!(c.shards.len(), SHARD_COUNT);
        for i in 0..2000 {
            c.insert(obj(i));
        }
        assert!(c.len() <= 300, "len {} exceeds capacity", c.len());
        // Every shard respects its own bound.
        for s in &c.shards {
            let inner = s.inner.lock();
            assert!(inner.lru.map.len() <= inner.capacity);
        }
    }

    #[test]
    fn sharded_resize_redistributes_and_evicts() {
        let c = ObjectCache::new(512);
        for i in 0..512 {
            c.insert(obj(i));
        }
        c.resize(300);
        assert!(c.len() <= 300);
        assert_eq!(c.capacity(), 300);
        let sum: usize = c.shards.iter().map(|s| s.inner.lock().capacity).sum();
        assert_eq!(sum, 300);
        c.resize(512);
        for i in 1000..1512 {
            c.insert(obj(i));
        }
        assert!(c.len() <= 512);
    }

    #[test]
    fn sharded_get_insert_remove_roundtrip() {
        let c = ObjectCache::new(1024);
        for i in 0..500 {
            c.insert(obj(i));
        }
        for i in 0..500 {
            assert!(c.get(&key(i)).is_some(), "key {i} must be cached");
        }
        for i in 0..500 {
            assert!(c.remove(&key(i)));
        }
        assert!(c.is_empty());
    }

    #[test]
    fn sharded_concurrent_access() {
        use std::sync::Arc;
        let c = Arc::new(ObjectCache::new(512));
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for i in 0..1000 {
                        c.insert(obj(t * 10000 + i % 300));
                        c.get(&key(t * 10000 + (i + 1) % 300));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(c.len() <= 512);
    }
}
