//! The LRU object cache (§IV-C).
//!
//! "All augmenters rely on a caching mechanism with a LRU policy that
//! allows the fast access to the last accessed data objects by means of
//! their global-key." The paper uses Ehcache; this is a thread-safe,
//! intrusive-list LRU with O(1) get/insert, shared by the concurrent
//! augmenters behind one mutex (lookups are tiny; contention is dominated
//! by the simulated network anyway).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;
use quepa_pdm::{DataObject, GlobalKey};

const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Entry {
    key: GlobalKey,
    value: DataObject,
    prev: usize,
    next: usize,
}

#[derive(Debug, Default)]
struct LruInner {
    map: HashMap<GlobalKey, usize>,
    slab: Vec<Entry>,
    free: Vec<usize>,
    head: usize, // most recent
    tail: usize, // least recent
}

/// A thread-safe LRU cache of data objects keyed by global key.
#[derive(Debug)]
pub struct ObjectCache {
    inner: Mutex<LruInner>,
    capacity: Mutex<usize>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ObjectCache {
    /// Creates a cache holding at most `capacity` objects (0 disables it).
    pub fn new(capacity: usize) -> Self {
        ObjectCache {
            inner: Mutex::new(LruInner { head: NIL, tail: NIL, ..Default::default() }),
            capacity: Mutex::new(capacity),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The current capacity.
    pub fn capacity(&self) -> usize {
        *self.capacity.lock()
    }

    /// Adjusts the capacity, evicting LRU entries if it shrank. This is the
    /// knob the adaptive optimizer turns by ±(predicted−current)/10.
    pub fn resize(&self, capacity: usize) {
        *self.capacity.lock() = capacity;
        let mut inner = self.inner.lock();
        while inner.map.len() > capacity {
            evict_tail(&mut inner);
        }
    }

    /// Number of cached objects.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up a key, marking it most-recently-used on a hit.
    pub fn get(&self, key: &GlobalKey) -> Option<DataObject> {
        let mut inner = self.inner.lock();
        let Some(&slot) = inner.map.get(key) else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        detach(&mut inner, slot);
        attach_front(&mut inner, slot);
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some(inner.slab[slot].value.clone())
    }

    /// Inserts (or refreshes) an object, evicting the LRU entry if full.
    pub fn insert(&self, object: DataObject) {
        let capacity = *self.capacity.lock();
        if capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock();
        let key = object.key().clone();
        if let Some(&slot) = inner.map.get(&key) {
            inner.slab[slot].value = object;
            detach(&mut inner, slot);
            attach_front(&mut inner, slot);
            return;
        }
        if inner.map.len() >= capacity {
            evict_tail(&mut inner);
        }
        let slot = match inner.free.pop() {
            Some(slot) => {
                inner.slab[slot] =
                    Entry { key: key.clone(), value: object, prev: NIL, next: NIL };
                slot
            }
            None => {
                inner.slab.push(Entry { key: key.clone(), value: object, prev: NIL, next: NIL });
                inner.slab.len() - 1
            }
        };
        inner.map.insert(key, slot);
        attach_front(&mut inner, slot);
    }

    /// Removes a key (used when lazy deletion discovers a vanished object).
    pub fn remove(&self, key: &GlobalKey) -> bool {
        let mut inner = self.inner.lock();
        let Some(slot) = inner.map.remove(key) else { return false };
        detach(&mut inner, slot);
        inner.free.push(slot);
        true
    }

    /// Clears the cache (cold-cache experiment runs).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.map.clear();
        inner.slab.clear();
        inner.free.clear();
        inner.head = NIL;
        inner.tail = NIL;
    }

    /// `(hits, misses)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits.load(Ordering::Relaxed), self.misses.load(Ordering::Relaxed))
    }

    /// Resets the hit/miss counters.
    pub fn reset_stats(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

fn detach(inner: &mut LruInner, slot: usize) {
    let (prev, next) = (inner.slab[slot].prev, inner.slab[slot].next);
    if prev != NIL {
        inner.slab[prev].next = next;
    } else if inner.head == slot {
        inner.head = next;
    }
    if next != NIL {
        inner.slab[next].prev = prev;
    } else if inner.tail == slot {
        inner.tail = prev;
    }
    inner.slab[slot].prev = NIL;
    inner.slab[slot].next = NIL;
}

fn attach_front(inner: &mut LruInner, slot: usize) {
    inner.slab[slot].prev = NIL;
    inner.slab[slot].next = inner.head;
    if inner.head != NIL {
        let head = inner.head;
        inner.slab[head].prev = slot;
    }
    inner.head = slot;
    if inner.tail == NIL {
        inner.tail = slot;
    }
}

fn evict_tail(inner: &mut LruInner) {
    let tail = inner.tail;
    if tail == NIL {
        return;
    }
    let key = inner.slab[tail].key.clone();
    detach(inner, tail);
    inner.map.remove(&key);
    inner.free.push(tail);
}

#[cfg(test)]
mod tests {
    use super::*;
    use quepa_pdm::Value;

    fn obj(i: usize) -> DataObject {
        DataObject::new(
            format!("d.c.k{i}").parse().unwrap(),
            Value::object([("n", Value::Int(i as i64))]),
        )
    }

    fn key(i: usize) -> GlobalKey {
        format!("d.c.k{i}").parse().unwrap()
    }

    #[test]
    fn insert_get() {
        let c = ObjectCache::new(4);
        c.insert(obj(1));
        assert_eq!(c.get(&key(1)).unwrap().value().get("n"), Some(&Value::Int(1)));
        assert!(c.get(&key(2)).is_none());
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn lru_eviction_order() {
        let c = ObjectCache::new(3);
        for i in 0..3 {
            c.insert(obj(i));
        }
        // Touch 0 so 1 becomes LRU.
        assert!(c.get(&key(0)).is_some());
        c.insert(obj(3));
        assert!(c.get(&key(1)).is_none(), "1 was LRU and evicted");
        assert!(c.get(&key(0)).is_some());
        assert!(c.get(&key(2)).is_some());
        assert!(c.get(&key(3)).is_some());
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn reinsert_refreshes() {
        let c = ObjectCache::new(2);
        c.insert(obj(1));
        c.insert(obj(2));
        c.insert(obj(1)); // refresh 1 — 2 becomes LRU
        c.insert(obj(3));
        assert!(c.get(&key(2)).is_none());
        assert!(c.get(&key(1)).is_some());
    }

    #[test]
    fn zero_capacity_disables() {
        let c = ObjectCache::new(0);
        c.insert(obj(1));
        assert!(c.is_empty());
        assert!(c.get(&key(1)).is_none());
    }

    #[test]
    fn resize_shrinks_and_grows() {
        let c = ObjectCache::new(4);
        for i in 0..4 {
            c.insert(obj(i));
        }
        c.resize(2);
        assert_eq!(c.len(), 2);
        // The two most recent survive.
        assert!(c.get(&key(2)).is_some());
        assert!(c.get(&key(3)).is_some());
        c.resize(8);
        for i in 10..16 {
            c.insert(obj(i));
        }
        assert_eq!(c.len(), 8);
    }

    #[test]
    fn remove_and_reuse_slot() {
        let c = ObjectCache::new(4);
        c.insert(obj(1));
        assert!(c.remove(&key(1)));
        assert!(!c.remove(&key(1)));
        c.insert(obj(2));
        assert!(c.get(&key(2)).is_some());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn clear_empties() {
        let c = ObjectCache::new(4);
        c.insert(obj(1));
        c.clear();
        assert!(c.is_empty());
        assert!(c.get(&key(1)).is_none());
    }

    #[test]
    fn concurrent_access() {
        use std::sync::Arc;
        let c = Arc::new(ObjectCache::new(64));
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for i in 0..500 {
                        c.insert(obj(t * 1000 + i % 100));
                        c.get(&key(t * 1000 + (i + 1) % 100));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(c.len() <= 64);
    }

    #[test]
    fn single_entry_edge_cases() {
        let c = ObjectCache::new(1);
        c.insert(obj(1));
        c.insert(obj(2));
        assert_eq!(c.len(), 1);
        assert!(c.get(&key(1)).is_none());
        assert!(c.get(&key(2)).is_some());
        assert!(c.remove(&key(2)));
        assert!(c.is_empty());
        c.insert(obj(3));
        assert!(c.get(&key(3)).is_some());
    }
}
