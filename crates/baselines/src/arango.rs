//! ArangoDB-style baselines: one in-memory multi-model store holding the
//! imported polystore plus the A' index.
//!
//! "ArangoDB is an in-memory database management system that represents
//! multi-model architectures. It allowed us to import our key-value, graph
//! and document databases (that is, relational databases are not
//! supported). We stored the A' index and the polystore in ArangoDB."
//!
//! Consequences modelled here:
//!
//! * a **warm-up import** of every supported store and of the index edges,
//!   paid once (wall time) and charged permanently against the memory
//!   budget — "they need to warm up at start-up" and "its performance
//!   decrease significantly when we add databases … it falls often into
//!   out-of-memory situations";
//! * after warm-up, object access is in-memory (no network), so *warm*
//!   runs are competitive until memory pressure kills them;
//! * **ARANGO-NAT** answers with one native AQL-style traversal whose
//!   intermediate result set is also charged against the budget;
//! * **ARANGO-AUG** runs QUEPA's algorithm against the imported maps
//!   (small transient intermediates — "performing slightly better").

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use quepa_aindex::AIndex;
use quepa_pdm::{DataObject, GlobalKey};
use quepa_polystore::Polystore;

use crate::memory::MemoryBudget;
use crate::metamodel::{augmentation_targets, burn, local_answer};
use crate::middleware::{Middleware, MiddlewareAnswer, MiddlewareError};

/// The shared in-memory multi-model store both variants run on.
struct ArangoCore {
    polystore: Polystore,
    index: Arc<AIndex>,
    budget: MemoryBudget,
    imported: Mutex<Option<HashMap<GlobalKey, DataObject>>>,
    /// Per-object import cost (parse + index maintenance).
    import_cost: Duration,
    /// Per-object access cost once in memory.
    access_cost: Duration,
}

impl ArangoCore {
    fn new(polystore: Polystore, index: Arc<AIndex>, budget_bytes: usize) -> Self {
        ArangoCore {
            polystore,
            index,
            budget: MemoryBudget::new(budget_bytes),
            imported: Mutex::new(None),
            import_cost: Duration::from_nanos(400),
            access_cost: Duration::from_nanos(120),
        }
    }

    fn oom(&self) -> MiddlewareError {
        MiddlewareError::OutOfMemory { budget: self.budget.limit(), in_use: self.budget.used() }
    }

    fn supports(db: &str) -> bool {
        // "relational databases are not supported".
        !db.starts_with("transactions")
    }

    /// Imports every supported store and the index once.
    fn ensure_imported(&self) -> Result<(), MiddlewareError> {
        let mut guard = self.imported.lock();
        if guard.is_some() {
            return Ok(());
        }
        let mut map = HashMap::new();
        for db in self.polystore.database_names() {
            if !Self::supports(db.as_str()) {
                continue;
            }
            let connector = self.polystore.connector(db)?;
            for coll in connector.collections() {
                for object in connector.scan_collection(&coll)? {
                    self.budget.alloc(object.approx_size()).map_err(|()| self.oom())?;
                    burn(self.import_cost);
                    map.insert(object.key().clone(), object);
                }
            }
        }
        // The A' index lives in ArangoDB too: charge its edges.
        let stats = self.index.stats();
        let edge_bytes = 96 * (stats.identity_edges + stats.matching_edges);
        self.budget.alloc(edge_bytes).map_err(|()| self.oom())?;
        *guard = Some(map);
        Ok(())
    }

    fn reset(&self) {
        *self.imported.lock() = None;
        self.budget.reset();
    }

    fn run(
        &self,
        database: &str,
        query: &str,
        level: usize,
        native: bool,
    ) -> Result<MiddlewareAnswer, MiddlewareError> {
        let start = Instant::now();
        if !Self::supports(database) {
            return Err(MiddlewareError::Unsupported(
                "ArangoDB cannot import relational databases".into(),
            ));
        }
        self.ensure_imported()?;
        // The local query still runs in the local language against the
        // imported data; we reuse the original store's engine for the
        // filter semantics but charge in-memory access costs instead of
        // re-paying the network (everything is local to ArangoDB now).
        let original = local_answer(&self.polystore, database, query)?;
        let (targets, _) = augmentation_targets(&self.index, &original, level);

        let guard = self.imported.lock();
        let map = guard.as_ref().expect("imported above");
        let mut augmented = Vec::with_capacity(targets.len());
        if native {
            // One AQL traversal: the engine materializes the whole
            // intermediate frontier (originals × neighbourhoods) before
            // projecting, and that intermediate is heap-resident.
            let mut intermediate_bytes = 0usize;
            for key in &targets {
                burn(self.access_cost);
                if let Some(object) = map.get(key) {
                    intermediate_bytes += object.approx_size() * 3; // AQL row + copies
                    augmented.push(object.clone());
                }
            }
            self.budget.alloc(intermediate_bytes).map_err(|()| self.oom())?;
            self.budget.free(intermediate_bytes);
        } else {
            // QUEPA-style: object-at-a-time against the in-memory maps.
            for key in &targets {
                burn(self.access_cost);
                if let Some(object) = map.get(key) {
                    augmented.push(object.clone());
                }
            }
        }
        Ok(MiddlewareAnswer { original, augmented, duration: start.elapsed() })
    }
}

/// ARANGO-NAT: one native query over the imported multi-model store.
pub struct ArangoNat {
    core: ArangoCore,
}

impl ArangoNat {
    /// Creates the baseline with the given heap budget.
    pub fn new(polystore: Polystore, index: Arc<AIndex>, budget_bytes: usize) -> Self {
        ArangoNat { core: ArangoCore::new(polystore, index, budget_bytes) }
    }

    /// The memory accounting.
    pub fn budget(&self) -> &MemoryBudget {
        &self.core.budget
    }
}

impl Middleware for ArangoNat {
    fn name(&self) -> &'static str {
        "ARANGO-NAT"
    }

    fn warm_up(&self) -> Result<(), MiddlewareError> {
        self.core.ensure_imported()
    }

    fn reset(&self) {
        self.core.reset();
    }

    fn augmented_query(
        &self,
        database: &str,
        query: &str,
        level: usize,
    ) -> Result<MiddlewareAnswer, MiddlewareError> {
        self.core.run(database, query, level, true)
    }
}

/// ARANGO-AUG: QUEPA's algorithm over the imported store.
pub struct ArangoAug {
    core: ArangoCore,
}

impl ArangoAug {
    /// Creates the baseline with the given heap budget.
    pub fn new(polystore: Polystore, index: Arc<AIndex>, budget_bytes: usize) -> Self {
        ArangoAug { core: ArangoCore::new(polystore, index, budget_bytes) }
    }

    /// The memory accounting.
    pub fn budget(&self) -> &MemoryBudget {
        &self.core.budget
    }
}

impl Middleware for ArangoAug {
    fn name(&self) -> &'static str {
        "ARANGO-AUG"
    }

    fn warm_up(&self) -> Result<(), MiddlewareError> {
        self.core.ensure_imported()
    }

    fn reset(&self) {
        self.core.reset();
    }

    fn augmented_query(
        &self,
        database: &str,
        query: &str,
        level: usize,
    ) -> Result<MiddlewareAnswer, MiddlewareError> {
        self.core.run(database, query, level, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quepa_polystore::Deployment;
    use quepa_workload::{BuiltPolystore, WorkloadConfig};

    fn built(albums: usize, replica_sets: usize) -> BuiltPolystore {
        BuiltPolystore::build(WorkloadConfig {
            albums,
            replica_sets,
            deployment: Deployment::InProcess,
            seed: 5,
        })
    }

    #[test]
    fn arango_answers_document_queries() {
        let b = built(50, 0);
        let nat = ArangoNat::new(b.polystore.clone(), Arc::new(b.index.clone()), usize::MAX);
        let a =
            nat.augmented_query("catalogue", r#"db.albums.find({"seq":{"$lt":5}})"#, 0).unwrap();
        assert_eq!(a.original.len(), 5);
        // Related objects from supported stores only (no transactions).
        assert!(!a.augmented.is_empty());
        assert!(a.augmented.iter().all(|o| !o
            .key()
            .database()
            .as_str()
            .starts_with("transactions")));
        // Discount objects ARE importable (kv is supported).
        assert!(a.augmented.iter().any(|o| o.key().database().as_str() == "discount"));
    }

    #[test]
    fn arango_rejects_relational_targets() {
        let b = built(10, 0);
        let nat = ArangoNat::new(b.polystore.clone(), Arc::new(b.index.clone()), usize::MAX);
        assert!(matches!(
            nat.augmented_query("transactions", "SELECT * FROM inventory", 0),
            Err(MiddlewareError::Unsupported(_))
        ));
    }

    #[test]
    fn import_charges_memory_and_ooms_as_stores_grow() {
        let budget = 256 << 10; // 256 KiB
        let small = built(50, 0);
        let nat = ArangoNat::new(small.polystore.clone(), Arc::new(small.index.clone()), budget);
        assert!(nat.warm_up().is_ok(), "small polystore fits");
        let used_small = nat.budget().used();
        assert!(used_small > 0);

        let big = built(50, 3); // 13 stores: 4× the import
        let nat13 = ArangoNat::new(big.polystore.clone(), Arc::new(big.index.clone()), budget);
        assert!(
            matches!(nat13.warm_up(), Err(MiddlewareError::OutOfMemory { .. })),
            "13-store polystore must blow the same budget (small used {used_small})"
        );
    }

    #[test]
    fn warm_up_is_idempotent_and_reset_clears() {
        let b = built(30, 0);
        let aug = ArangoAug::new(b.polystore.clone(), Arc::new(b.index.clone()), usize::MAX);
        aug.warm_up().unwrap();
        let used = aug.budget().used();
        aug.warm_up().unwrap();
        assert_eq!(aug.budget().used(), used, "second warm-up is free");
        aug.reset();
        assert_eq!(aug.budget().used(), 0);
    }

    #[test]
    fn nat_charges_intermediates_aug_does_not() {
        let b = built(60, 0);
        let index = Arc::new(b.index.clone());
        let nat = ArangoNat::new(b.polystore.clone(), Arc::clone(&index), usize::MAX);
        let aug = ArangoAug::new(b.polystore.clone(), index, usize::MAX);
        nat.warm_up().unwrap();
        aug.warm_up().unwrap();
        let import_high = aug.budget().high_water();
        let q = r#"db.albums.find({"seq":{"$lt":40}})"#;
        nat.augmented_query("catalogue", q, 1).unwrap();
        aug.augmented_query("catalogue", q, 1).unwrap();
        assert!(
            nat.budget().high_water() > import_high,
            "NAT's intermediates exceed the import footprint"
        );
        assert_eq!(aug.budget().high_water(), import_high, "AUG stays at the import footprint");
    }

    #[test]
    fn nat_and_aug_agree_on_answers() {
        let b = built(40, 0);
        let index = Arc::new(b.index.clone());
        let nat = ArangoNat::new(b.polystore.clone(), Arc::clone(&index), usize::MAX);
        let aug = ArangoAug::new(b.polystore.clone(), index, usize::MAX);
        let q = r#"db.albums.find({"seq":{"$lt":10}})"#;
        let a1 = nat.augmented_query("catalogue", q, 1).unwrap();
        let a2 = aug.augmented_query("catalogue", q, 1).unwrap();
        let keys = |a: &MiddlewareAnswer| {
            let mut v: Vec<String> = a.augmented.iter().map(|o| o.key().to_string()).collect();
            v.sort();
            v
        };
        assert_eq!(keys(&a1), keys(&a2));
    }
}
