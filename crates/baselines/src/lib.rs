//! # quepa-baselines — the middleware competitors of §VII-D
//!
//! The paper compares QUEPA against publicly available middleware tools,
//! each configured to compute the same augmented answers:
//!
//! * **META-NAT** — Apache Metamodel with *native* operators: a global view
//!   materialized in middleware memory and joined there. Scales poorly and
//!   "goes often out-of-memory".
//! * **META-AUG** — Metamodel running a simulation of QUEPA's augmentation
//!   algorithm over its common per-object interface (no batched access,
//!   conversion overhead per object).
//! * **TALEND** — Talend Open Studio: a compiled extract-then-join
//!   workflow. Streams to staging storage so it does not OOM, but its
//!   runtime has "the steepest slope".
//! * **ARANGO-NAT / ARANGO-AUG** — ArangoDB as a single in-memory
//!   multi-model store holding the imported polystore and the A' index;
//!   NAT answers with one native query, AUG runs QUEPA's algorithm against
//!   it. In-memory: needs a warm-up import and "falls often into
//!   out-of-memory situations" as the polystore grows.
//!
//! None of the original tools runs here, so each baseline is a *mechanism
//! simulator*: it reproduces the access pattern the paper attributes the
//! tool's cost to (full-collection materialization, per-object interface
//! overhead, staging, single-store memory pressure) against the same
//! connectors and latency model QUEPA uses, with memory accounted against
//! a configurable [`MemoryBudget`] so the out-of-memory crossovers are
//! reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arango;
pub mod memory;
pub mod metamodel;
pub mod middleware;
pub mod talend;

pub use arango::{ArangoAug, ArangoNat};
pub use memory::MemoryBudget;
pub use metamodel::{MetaAug, MetaNat};
pub use middleware::{Middleware, MiddlewareAnswer, MiddlewareError};
pub use talend::Talend;
