//! Apache-Metamodel-style baselines: a loosely-coupled common interface
//! over the stores, without Redis support.
//!
//! * [`MetaNat`] materializes every collection the augmentation touches
//!   into middleware memory and joins there — the "native operators based
//!   on joins" variant, which "goes often out-of-memory".
//! * [`MetaAug`] "simulates the augmentation algorithm of QUEPA" over
//!   Metamodel's per-object API: direct key access, no batching, and a
//!   per-object conversion overhead.

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;
use std::time::{Duration, Instant};

use quepa_aindex::AIndex;
use quepa_pdm::{CollectionName, DataObject, DatabaseName, GlobalKey};
use quepa_polystore::Polystore;

use crate::memory::MemoryBudget;
use crate::middleware::{Middleware, MiddlewareAnswer, MiddlewareError};

/// Busy-waits for `d` — the middleware's own CPU overhead, charged as wall
/// time just like the network model.
pub(crate) fn burn(d: Duration) {
    if d.is_zero() {
        return;
    }
    let deadline = Instant::now() + d;
    while Instant::now() < deadline {
        std::hint::spin_loop();
    }
}

/// Stores Metamodel cannot connect to.
pub(crate) fn meta_supports(db: &DatabaseName) -> bool {
    // "Redis is not supported".
    !db.as_str().starts_with("discount")
}

pub(crate) fn local_answer(
    polystore: &Polystore,
    database: &str,
    query: &str,
) -> Result<Vec<DataObject>, MiddlewareError> {
    Ok(polystore.execute(database, query)?)
}

/// The (database, collection) pairs and target keys the augmentation of
/// `seeds` at `level` touches, per the A' index.
pub(crate) fn augmentation_targets(
    index: &AIndex,
    seeds: &[DataObject],
    level: usize,
) -> (Vec<GlobalKey>, BTreeSet<(DatabaseName, CollectionName)>) {
    let seed_keys: Vec<GlobalKey> = seeds.iter().map(|o| o.key().clone()).collect();
    let targets: Vec<GlobalKey> =
        index.augment(&seed_keys, level).into_iter().map(|a| a.key).collect();
    let collections =
        targets.iter().map(|k| (k.database().clone(), k.collection().clone())).collect();
    (targets, collections)
}

/// META-NAT: global-view joins with full materialization.
pub struct MetaNat {
    polystore: Polystore,
    index: Arc<AIndex>,
    budget: MemoryBudget,
    /// CPU cost per materialized object (row conversion into the unified
    /// model).
    convert_cost: Duration,
}

impl MetaNat {
    /// Creates the baseline with the given heap budget.
    pub fn new(polystore: Polystore, index: Arc<AIndex>, budget_bytes: usize) -> Self {
        MetaNat {
            polystore,
            index,
            budget: MemoryBudget::new(budget_bytes),
            convert_cost: Duration::from_nanos(150),
        }
    }

    /// The memory accounting (inspectable by experiments).
    pub fn budget(&self) -> &MemoryBudget {
        &self.budget
    }
}

impl Middleware for MetaNat {
    fn name(&self) -> &'static str {
        "META-NAT"
    }

    fn reset(&self) {
        self.budget.reset();
    }

    fn augmented_query(
        &self,
        database: &str,
        query: &str,
        level: usize,
    ) -> Result<MiddlewareAnswer, MiddlewareError> {
        let start = Instant::now();
        let db_name =
            DatabaseName::new(database).map_err(|e| MiddlewareError::Unsupported(e.to_string()))?;
        if !meta_supports(&db_name) {
            return Err(MiddlewareError::Unsupported(
                "Apache Metamodel has no Redis connector".into(),
            ));
        }
        self.budget.reset();
        let original = local_answer(&self.polystore, database, query)?;
        // Charge the local answer: it sits in the global view too.
        for o in &original {
            self.charge(o)?;
        }

        let (targets, collections) = augmentation_targets(&self.index, &original, level);

        // Materialize every touched (and supported) collection fully —
        // the join has no index on the remote side.
        let mut view: HashMap<GlobalKey, DataObject> = HashMap::new();
        for (db, coll) in &collections {
            if !meta_supports(db) {
                continue; // silently absent from the global view
            }
            let connector = self.polystore.connector(db)?;
            for object in connector.scan_collection(coll)? {
                self.charge(&object)?;
                burn(self.convert_cost);
                view.insert(object.key().clone(), object);
            }
        }

        // Hash join: target keys against the view. The join materializes
        // its intermediate rows in the unified model (one row per matched
        // target per join stage) — that heap spike is what makes the native
        // variant "go often out-of-memory" as queries grow.
        let augmented: Vec<DataObject> =
            targets.iter().filter_map(|k| view.get(k).cloned()).collect();
        let intermediate: usize = augmented.iter().map(|o| o.approx_size() * 8).sum();
        self.budget.alloc(intermediate).map_err(|()| MiddlewareError::OutOfMemory {
            budget: self.budget.limit(),
            in_use: self.budget.used(),
        })?;
        self.budget.free(intermediate);
        Ok(MiddlewareAnswer { original, augmented, duration: start.elapsed() })
    }
}

impl MetaNat {
    fn charge(&self, object: &DataObject) -> Result<(), MiddlewareError> {
        self.budget.alloc(object.approx_size()).map_err(|()| MiddlewareError::OutOfMemory {
            budget: self.budget.limit(),
            in_use: self.budget.used(),
        })
    }
}

/// META-AUG: QUEPA's algorithm over Metamodel's per-object interface.
pub struct MetaAug {
    polystore: Polystore,
    index: Arc<AIndex>,
    /// Per-object interface overhead (conversion through the unified data
    /// model; Metamodel has no batched key access).
    per_object_cost: Duration,
}

impl MetaAug {
    /// Creates the baseline.
    pub fn new(polystore: Polystore, index: Arc<AIndex>) -> Self {
        MetaAug { polystore, index, per_object_cost: Duration::from_micros(2) }
    }
}

impl Middleware for MetaAug {
    fn name(&self) -> &'static str {
        "META-AUG"
    }

    fn augmented_query(
        &self,
        database: &str,
        query: &str,
        level: usize,
    ) -> Result<MiddlewareAnswer, MiddlewareError> {
        let start = Instant::now();
        let db_name =
            DatabaseName::new(database).map_err(|e| MiddlewareError::Unsupported(e.to_string()))?;
        if !meta_supports(&db_name) {
            return Err(MiddlewareError::Unsupported(
                "Apache Metamodel has no Redis connector".into(),
            ));
        }
        let original = local_answer(&self.polystore, database, query)?;
        let (targets, _) = augmentation_targets(&self.index, &original, level);
        let mut augmented = Vec::with_capacity(targets.len());
        for key in &targets {
            if !meta_supports(key.database()) {
                continue;
            }
            // One round trip per object: Metamodel's API is record-at-a-
            // time; plus the unified-model conversion cost.
            if let Some(object) = self.polystore.get(key)? {
                burn(self.per_object_cost);
                augmented.push(object);
            }
        }
        Ok(MiddlewareAnswer { original, augmented, duration: start.elapsed() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quepa_polystore::Deployment;
    use quepa_workload::{BuiltPolystore, WorkloadConfig};

    fn built() -> BuiltPolystore {
        BuiltPolystore::build(WorkloadConfig {
            albums: 60,
            replica_sets: 0,
            deployment: Deployment::InProcess,
            seed: 5,
        })
    }

    #[test]
    fn meta_nat_answers_without_redis() {
        let b = built();
        let nat = MetaNat::new(b.polystore.clone(), Arc::new(b.index.clone()), usize::MAX);
        let a = nat
            .augmented_query("transactions", "SELECT * FROM inventory WHERE seq < 5", 0)
            .unwrap();
        assert_eq!(a.original.len(), 5);
        assert!(!a.augmented.is_empty());
        // Redis objects never appear.
        assert!(a.augmented.iter().all(|o| o.key().database().as_str() != "discount"));
        assert!(nat.budget().high_water() > 0);
    }

    #[test]
    fn meta_nat_ooms_on_small_budget() {
        let b = built();
        let nat = MetaNat::new(b.polystore.clone(), Arc::new(b.index.clone()), 4_096);
        let err = nat
            .augmented_query("transactions", "SELECT * FROM inventory WHERE seq < 30", 0)
            .unwrap_err();
        assert!(matches!(err, MiddlewareError::OutOfMemory { .. }), "{err:?}");
    }

    #[test]
    fn meta_rejects_redis_targets() {
        let b = built();
        let nat = MetaNat::new(b.polystore.clone(), Arc::new(b.index.clone()), usize::MAX);
        assert!(matches!(
            nat.augmented_query("discount", "GET k0:x:y", 0),
            Err(MiddlewareError::Unsupported(_))
        ));
        let aug = MetaAug::new(b.polystore.clone(), Arc::new(b.index.clone()));
        assert!(matches!(
            aug.augmented_query("discount", "GET k0:x:y", 0),
            Err(MiddlewareError::Unsupported(_))
        ));
    }

    #[test]
    fn meta_aug_matches_nat_on_supported_stores() {
        let b = built();
        let index = Arc::new(b.index.clone());
        let nat = MetaNat::new(b.polystore.clone(), Arc::clone(&index), usize::MAX);
        let aug = MetaAug::new(b.polystore.clone(), index);
        let q = "SELECT * FROM inventory WHERE seq < 8";
        let a1 = nat.augmented_query("transactions", q, 1).unwrap();
        let a2 = aug.augmented_query("transactions", q, 1).unwrap();
        let keys = |a: &MiddlewareAnswer| {
            let mut v: Vec<String> = a.augmented.iter().map(|o| o.key().to_string()).collect();
            v.sort();
            v
        };
        assert_eq!(keys(&a1), keys(&a2));
    }
}
