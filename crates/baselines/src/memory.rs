//! Simulated middleware memory accounting.
//!
//! The paper marks runs that exhaust the middleware's heap with a red ‘X’
//! (Fig. 13). Actually exhausting RAM in a benchmark harness would be
//! antisocial, so each baseline charges the *approximate* size of every
//! object it materializes against a budget; exceeding it raises the
//! out-of-memory error the experiment records.

use std::sync::atomic::{AtomicUsize, Ordering};

/// A byte budget shared by the allocations of one middleware run.
#[derive(Debug)]
pub struct MemoryBudget {
    limit: usize,
    used: AtomicUsize,
    high_water: AtomicUsize,
}

impl MemoryBudget {
    /// A budget of `limit` bytes.
    pub fn new(limit: usize) -> Self {
        MemoryBudget { limit, used: AtomicUsize::new(0), high_water: AtomicUsize::new(0) }
    }

    /// An effectively unlimited budget (for functional tests).
    pub fn unlimited() -> Self {
        Self::new(usize::MAX)
    }

    /// The configured limit.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Bytes currently accounted.
    pub fn used(&self) -> usize {
        self.used.load(Ordering::Relaxed)
    }

    /// The maximum `used` ever observed.
    pub fn high_water(&self) -> usize {
        self.high_water.load(Ordering::Relaxed)
    }

    /// Charges `bytes`; `Err(())` means the budget is exhausted (the charge
    /// is rolled back so the caller can report cleanly). The unit error is
    /// deliberate: every caller maps it to its own out-of-memory error type.
    #[allow(clippy::result_unit_err)]
    pub fn alloc(&self, bytes: usize) -> Result<(), ()> {
        let now = self.used.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.high_water.fetch_max(now, Ordering::Relaxed);
        if now > self.limit {
            self.used.fetch_sub(bytes, Ordering::Relaxed);
            return Err(());
        }
        Ok(())
    }

    /// Releases `bytes` (scoped working sets).
    pub fn free(&self, bytes: usize) {
        let mut current = self.used.load(Ordering::Relaxed);
        loop {
            let next = current.saturating_sub(bytes);
            match self.used.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => current = actual,
            }
        }
    }

    /// Releases everything (end of a run).
    pub fn reset(&self) {
        self.used.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_free() {
        let b = MemoryBudget::new(100);
        assert!(b.alloc(60).is_ok());
        assert!(b.alloc(60).is_err(), "would exceed");
        assert_eq!(b.used(), 60, "failed alloc rolled back");
        b.free(30);
        assert!(b.alloc(60).is_ok());
        assert_eq!(b.used(), 90);
        assert_eq!(b.high_water(), 120, "high water saw the failed attempt");
        b.reset();
        assert_eq!(b.used(), 0);
    }

    #[test]
    fn free_saturates() {
        let b = MemoryBudget::new(10);
        b.free(100);
        assert_eq!(b.used(), 0);
    }

    #[test]
    fn unlimited_never_fails() {
        let b = MemoryBudget::unlimited();
        assert!(b.alloc(usize::MAX / 2).is_ok());
    }
}
