//! The common surface every baseline implements.

use std::fmt;
use std::time::Duration;

use quepa_pdm::DataObject;
use quepa_polystore::PolyError;

/// Errors of a middleware run.
#[derive(Debug, Clone, PartialEq)]
pub enum MiddlewareError {
    /// The simulated heap budget was exhausted — the red ‘X’ of Fig. 13.
    OutOfMemory {
        /// The budget in bytes.
        budget: usize,
        /// Bytes in use when the failing allocation was attempted.
        in_use: usize,
    },
    /// The tool does not support this store/query (e.g. Metamodel has no
    /// Redis connector; ArangoDB cannot import relational tables natively).
    Unsupported(String),
    /// An error from the underlying polystore.
    Polystore(PolyError),
}

impl fmt::Display for MiddlewareError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MiddlewareError::OutOfMemory { budget, in_use } => {
                write!(f, "out of memory: {in_use} bytes in use of {budget} budget")
            }
            MiddlewareError::Unsupported(m) => write!(f, "unsupported: {m}"),
            MiddlewareError::Polystore(e) => write!(f, "polystore: {e}"),
        }
    }
}

impl std::error::Error for MiddlewareError {}

impl From<PolyError> for MiddlewareError {
    fn from(e: PolyError) -> Self {
        MiddlewareError::Polystore(e)
    }
}

/// The answer a middleware computes (the same information QUEPA's
/// `AugmentedAnswer` carries, minus QUEPA-specific fields).
#[derive(Debug, Clone)]
pub struct MiddlewareAnswer {
    /// The local answer.
    pub original: Vec<DataObject>,
    /// The related objects, deduplicated.
    pub augmented: Vec<DataObject>,
    /// End-to-end wall time, including any per-query share of warm-up.
    pub duration: Duration,
}

/// A middleware able to compute augmented answers.
pub trait Middleware: Send + Sync {
    /// The label used in experiment output.
    fn name(&self) -> &'static str;

    /// Computes the augmented answer of `query` on `database` at `level`.
    fn augmented_query(
        &self,
        database: &str,
        query: &str,
        level: usize,
    ) -> Result<MiddlewareAnswer, MiddlewareError>;

    /// Performs any warm-up the tool needs (ArangoDB's import). Idempotent.
    fn warm_up(&self) -> Result<(), MiddlewareError> {
        Ok(())
    }

    /// Resets per-run state (memory accounting) between experiment points.
    fn reset(&self) {}
}
