//! Talend-style baseline: a compiled extract-transform-join workflow.
//!
//! The Talend workflow of §VII-A(c) extracts the referenced collections to
//! a staging area, then joins them with the query result. Staging streams
//! to disk, so Talend never runs out of memory — but it pays extraction
//! and serialization for *every* object of every touched collection on
//! *every* run, which is why the paper observes "the steepest slope".

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use quepa_aindex::AIndex;
use quepa_pdm::{DataObject, GlobalKey};
use quepa_polystore::Polystore;

use crate::metamodel::{augmentation_targets, burn, local_answer, meta_supports};
use crate::middleware::{Middleware, MiddlewareAnswer, MiddlewareError};

/// The Talend workflow baseline.
pub struct Talend {
    polystore: Polystore,
    index: Arc<AIndex>,
    /// Per-object serialization cost into the staging area (write + later
    /// read back), paid on top of the network transfer.
    staging_cost: Duration,
    /// Per-comparison cost of the sort-merge join over staged rows.
    join_cost: Duration,
}

impl Talend {
    /// Creates the baseline.
    pub fn new(polystore: Polystore, index: Arc<AIndex>) -> Self {
        Talend {
            polystore,
            index,
            staging_cost: Duration::from_nanos(800),
            join_cost: Duration::from_nanos(120),
        }
    }
}

impl Middleware for Talend {
    fn name(&self) -> &'static str {
        "TALEND"
    }

    fn augmented_query(
        &self,
        database: &str,
        query: &str,
        level: usize,
    ) -> Result<MiddlewareAnswer, MiddlewareError> {
        let start = Instant::now();
        if database.starts_with("discount") {
            return Err(MiddlewareError::Unsupported(
                "the Talend workflow has no Redis component".into(),
            ));
        }
        let original = local_answer(&self.polystore, database, query)?;
        let (targets, collections) = augmentation_targets(&self.index, &original, level);

        // Extract phase: stage every touched, supported collection.
        let mut staged: HashMap<GlobalKey, DataObject> = HashMap::new();
        let mut staged_rows = 0usize;
        for (db, coll) in &collections {
            if !meta_supports(db) {
                continue;
            }
            let connector = self.polystore.connector(db)?;
            for object in connector.scan_collection(coll)? {
                burn(self.staging_cost);
                staged_rows += 1;
                staged.insert(object.key().clone(), object);
            }
        }

        // Join phase: sort-merge over the staged rows (n log n comparisons,
        // paid as CPU time) followed by the probe of the target keys.
        let comparisons = staged_rows as f64 * (staged_rows.max(2) as f64).log2();
        burn(Duration::from_nanos((comparisons * self.join_cost.as_nanos() as f64) as u64));
        let augmented: Vec<DataObject> =
            targets.iter().filter_map(|k| staged.get(k).cloned()).collect();
        Ok(MiddlewareAnswer { original, augmented, duration: start.elapsed() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quepa_polystore::Deployment;
    use quepa_workload::{BuiltPolystore, WorkloadConfig};

    #[test]
    fn talend_computes_the_answer_slowly_but_surely() {
        let b = BuiltPolystore::build(WorkloadConfig {
            albums: 50,
            replica_sets: 0,
            deployment: Deployment::InProcess,
            seed: 5,
        });
        let t = Talend::new(b.polystore.clone(), Arc::new(b.index.clone()));
        let a =
            t.augmented_query("transactions", "SELECT * FROM inventory WHERE seq < 5", 0).unwrap();
        assert_eq!(a.original.len(), 5);
        assert!(!a.augmented.is_empty());
        assert!(a.augmented.iter().all(|o| o.key().database().as_str() != "discount"));
        // No OOM mechanism: big queries still succeed.
        let big = t.augmented_query("transactions", "SELECT * FROM inventory", 1).unwrap();
        assert!(big.augmented.len() >= a.augmented.len());
    }

    #[test]
    fn talend_rejects_redis() {
        let b = BuiltPolystore::build(WorkloadConfig {
            albums: 10,
            replica_sets: 0,
            deployment: Deployment::InProcess,
            seed: 5,
        });
        let t = Talend::new(b.polystore.clone(), Arc::new(b.index.clone()));
        assert!(matches!(
            t.augmented_query("discount", "GET x", 0),
            Err(MiddlewareError::Unsupported(_))
        ));
    }
}
