//! Interactive QUEPA shell over a generated Polyphony polystore.
//!
//! ```sh
//! cargo run --release --bin quepa-cli -- [--albums N] [--stores 4|7|10|13] [--metrics]
//! ```
//!
//! `--metrics` enables the observability layer for the session and prints
//! a Prometheus-text metrics dump on exit (also available interactively
//! via the `METRICS [JSON]` command).

use std::io::{BufRead, Write};

use quepa::cli::CommandProcessor;
use quepa::polystore::Deployment;
use quepa::workload::{BuiltPolystore, WorkloadConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut albums = 1_000usize;
    let mut stores = 4usize;
    let mut metrics = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--albums" => {
                albums = args.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or(albums);
                i += 2;
            }
            "--stores" => {
                stores = args.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or(stores);
                i += 2;
            }
            "--metrics" => {
                metrics = true;
                i += 1;
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }
    let replica_sets = stores.saturating_sub(4) / 3;
    eprintln!(
        "building a {}-store Polyphony polystore with {albums} album entities…",
        4 + 3 * replica_sets
    );
    let built = BuiltPolystore::build(WorkloadConfig {
        albums,
        replica_sets,
        deployment: Deployment::Centralized,
        seed: 42,
    });
    let quepa = built.into_quepa();
    if metrics {
        let mut config = quepa.config();
        config.observability = true;
        quepa.set_config(config);
    }
    let mut processor = CommandProcessor::new(&quepa);

    println!("QUEPA shell — type HELP for commands, Ctrl-D to quit.");
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    loop {
        print!("quepa> ");
        stdout.flush().expect("stdout");
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => print!("{}", processor.handle(&line)),
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
    }
    if metrics {
        print!("{}", quepa::obs::prometheus_text(&quepa.metrics_snapshot()));
    }
    println!("bye.");
}
