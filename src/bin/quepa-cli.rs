//! Interactive QUEPA shell over a generated Polyphony polystore.
//!
//! ```sh
//! cargo run --release --bin quepa-cli -- [--albums N] [--stores 4|7|10|13] [--metrics] \
//!     [--data-dir DIR] [--serve ADDR]
//! cargo run --release --bin quepa-cli -- --connect ADDR
//! ```
//!
//! `--metrics` enables the observability layer for the session and prints
//! a Prometheus-text metrics dump on exit (also available interactively
//! via the `METRICS [JSON]` command).
//!
//! `--data-dir DIR` makes the A' index durable: mutations are
//! write-ahead-logged to `DIR/quepa.wal` and checkpoint cuts are written
//! as `DIR/ckpt-<lsn>/`. An empty (or missing) directory starts fresh;
//! one that already holds durable state is recovered — the shell prints
//! the checkpoint LSN and how many WAL records it replayed. Use the
//! `CHECKPOINT` command to force a cut interactively.
//!
//! `--serve ADDR` skips the REPL and runs the TCP serving front end on
//! `ADDR` (e.g. `127.0.0.1:7474`) over the built polystore, with the
//! default admission thresholds; `--connect ADDR` is the matching remote
//! shell, speaking the wire protocol (`SEARCH`/`METRICS`/`CHECKPOINT`)
//! without building a polystore locally.

use std::io::{BufRead, Write};
use std::path::Path;
use std::sync::Arc;

use quepa::cli::CommandProcessor;
use quepa::core::{dir_has_state, Quepa, QuepaConfig, RecoveryOptions, SyncPolicy};
use quepa::polystore::Deployment;
use quepa::serve::{AdmissionConfig, Client, Server, Status};
use quepa::workload::{BuiltPolystore, WorkloadConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut albums = 1_000usize;
    let mut stores = 4usize;
    let mut metrics = false;
    let mut data_dir: Option<String> = None;
    let mut serve_addr: Option<String> = None;
    let mut connect_addr: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--albums" => {
                albums = args.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or(albums);
                i += 2;
            }
            "--stores" => {
                stores = args.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or(stores);
                i += 2;
            }
            "--metrics" => {
                metrics = true;
                i += 1;
            }
            "--data-dir" => {
                data_dir = args.get(i + 1).cloned();
                if data_dir.is_none() {
                    eprintln!("--data-dir needs a directory argument");
                    std::process::exit(2);
                }
                i += 2;
            }
            "--serve" => {
                serve_addr = args.get(i + 1).cloned();
                if serve_addr.is_none() {
                    eprintln!("--serve needs a listen address (e.g. 127.0.0.1:7474)");
                    std::process::exit(2);
                }
                i += 2;
            }
            "--connect" => {
                connect_addr = args.get(i + 1).cloned();
                if connect_addr.is_none() {
                    eprintln!("--connect needs a server address (e.g. 127.0.0.1:7474)");
                    std::process::exit(2);
                }
                i += 2;
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }
    if let Some(addr) = connect_addr {
        remote_shell(&addr);
        return;
    }
    let replica_sets = stores.saturating_sub(4) / 3;
    eprintln!(
        "building a {}-store Polyphony polystore with {albums} album entities…",
        4 + 3 * replica_sets
    );
    let built = BuiltPolystore::build(WorkloadConfig {
        albums,
        replica_sets,
        deployment: Deployment::Centralized,
        seed: 42,
    });
    let quepa = match &data_dir {
        None => built.into_quepa(),
        Some(dir) => {
            let dir = Path::new(dir);
            if dir_has_state(dir) {
                // Existing state wins over the freshly generated index:
                // recovery reproduces the index exactly as it was at the
                // last committed mutation.
                let recovered = Quepa::recover_durable(
                    built.polystore,
                    QuepaConfig::default(),
                    dir,
                    SyncPolicy::Always,
                    &RecoveryOptions::default(),
                );
                match recovered {
                    Ok((quepa, report)) => {
                        eprintln!(
                            "recovered durable index from {}: checkpoint at LSN {}, {} WAL record(s) replayed{}",
                            dir.display(),
                            report.checkpoint_lsn,
                            report.replayed,
                            if report.torn_tail { " (torn final record truncated)" } else { "" }
                        );
                        quepa
                    }
                    Err(e) => {
                        eprintln!("cannot recover {}: {e}", dir.display());
                        std::process::exit(1);
                    }
                }
            } else {
                match Quepa::create_durable(
                    built.polystore,
                    built.index,
                    QuepaConfig::default(),
                    dir,
                    SyncPolicy::Always,
                ) {
                    Ok(quepa) => {
                        eprintln!("created durable index at {}", dir.display());
                        quepa
                    }
                    Err(e) => {
                        eprintln!("cannot create durable state in {}: {e}", dir.display());
                        std::process::exit(1);
                    }
                }
            }
        }
    };
    if metrics {
        let mut config = quepa.config();
        config.observability = true;
        quepa.set_config(config);
    }
    if let Some(addr) = serve_addr {
        let quepa = Arc::new(quepa);
        let server = match Server::start(quepa, addr.as_str(), AdmissionConfig::default()) {
            Ok(server) => server,
            Err(e) => {
                eprintln!("cannot listen on {addr}: {e}");
                std::process::exit(1);
            }
        };
        eprintln!(
            "serving on {} — quepa-cli --connect {} to talk to it; Ctrl-C to stop",
            server.local_addr(),
            server.local_addr()
        );
        loop {
            std::thread::park();
        }
    }
    let mut processor = CommandProcessor::new(&quepa);

    println!("QUEPA shell — type HELP for commands, Ctrl-D to quit.");
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    loop {
        print!("quepa> ");
        stdout.flush().expect("stdout");
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => print!("{}", processor.handle(&line)),
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
    }
    if metrics {
        print!("{}", quepa::obs::prometheus_text(&quepa.metrics_snapshot()));
    }
    println!("bye.");
}

/// The remote shell: the wire-protocol subset of the REPL against a
/// running `--serve` instance. `SEARCH` maps to the AUGMENT verb, so a
/// `DEGRADED` status (the server clamped the level to 0 under load) and
/// `OVERLOAD` sheds are surfaced explicitly.
fn remote_shell(addr: &str) {
    let mut client = match Client::connect(addr) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("cannot connect to {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!("connected to {addr} — SEARCH <db> <level> <query…>, METRICS [JSON], CHECKPOINT.");
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    loop {
        print!("quepa@{addr}> ");
        stdout.flush().expect("stdout");
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (verb, rest) = match line.split_once(char::is_whitespace) {
            Some((v, r)) => (v, r.trim()),
            None => (line, ""),
        };
        let response = match verb.to_ascii_uppercase().as_str() {
            "SEARCH" => {
                let mut parts = rest.splitn(3, char::is_whitespace);
                match (
                    parts.next(),
                    parts.next().and_then(|l| l.parse::<usize>().ok()),
                    parts.next(),
                ) {
                    (Some(db), Some(level), Some(query)) => client.augment(db, level, query),
                    _ => {
                        println!("usage: SEARCH <db> <level> <query…>");
                        continue;
                    }
                }
            }
            "METRICS" => client.metrics(rest.eq_ignore_ascii_case("JSON")),
            "CHECKPOINT" => client.checkpoint(),
            "QUIT" | "EXIT" => break,
            other => {
                println!("unknown remote command {other:?}; SEARCH / METRICS / CHECKPOINT");
                continue;
            }
        };
        match response {
            Ok(response) => {
                match response.status {
                    Status::Ok => {}
                    Status::Degraded => println!("(degraded: level clamped to 0 under load)"),
                    Status::Overload => println!("(shed by admission control)"),
                    Status::Error => println!("(server error)"),
                }
                println!("{}", response.payload);
            }
            Err(e) => {
                eprintln!("connection lost: {e}");
                break;
            }
        }
    }
    println!("bye.");
}
