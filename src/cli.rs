//! A text front-end for QUEPA — the role the paper's REST "User Interface"
//! component plays (§III-A, Fig. 2 step 1/8): receive inputs, dispatch to
//! the system, render results with probabilities.
//!
//! The protocol is line-based so it is equally usable as a REPL
//! (`cargo run --bin quepa-cli`), over a socket, or from tests:
//!
//! ```text
//! SEARCH <db> <level> <query…> [:: <filter>]
//!                                   augmented search (Definition 3); the
//!                                   optional predicate restricts the
//!                                   augmented objects (pushed down to
//!                                   stores that support it)
//! EXPLAIN <db> <level> <query…> :: <filter>
//!                                   dry-run the per-store pushdown plan
//! EXPLORE <db> <query…>             open an exploration (Definition 4)
//! PICK <i>                          select a result / follow a link
//! BACK                              show the current frontier again
//! END                               close the exploration (may promote)
//! CONFIG [<augmenter> <batch> <threads> <cache>]
//! STORES | STATS | INDEX | HELP
//! SAVE <path> | LOAD <path>         persist / restore the A' index
//! CHECKPOINT                        force a durable checkpoint cut
//! ```

use std::fmt::Write as _;

use crate::aindex::serial;
use crate::core::{
    AugmenterKind, DecisionReason, ExplorationSession, GroupStrategy, Quepa, QuepaConfig,
};
use crate::pdm::Pushdown;

/// A stateful command processor bound to one QUEPA instance.
pub struct CommandProcessor<'q> {
    quepa: &'q Quepa,
    session: Option<ExplorationSession<'q>>,
    /// Whether the last PICK was the first of the session (select vs step).
    started: bool,
}

impl<'q> CommandProcessor<'q> {
    /// Creates a processor over a system.
    pub fn new(quepa: &'q Quepa) -> Self {
        CommandProcessor { quepa, session: None, started: false }
    }

    /// True when an exploration session is open.
    pub fn exploring(&self) -> bool {
        self.session.is_some()
    }

    /// Handles one input line, returning the text to show the user.
    /// Errors are rendered, not raised — a UI never crashes on bad input.
    pub fn handle(&mut self, line: &str) -> String {
        let line = line.trim();
        if line.is_empty() {
            return String::new();
        }
        let (verb, rest) = match line.split_once(char::is_whitespace) {
            Some((v, r)) => (v, r.trim()),
            None => (line, ""),
        };
        match verb.to_ascii_uppercase().as_str() {
            "HELP" => HELP.to_owned(),
            "STORES" => self.stores(),
            "STATS" => self.stats(),
            "METRICS" => self.metrics(rest),
            "INDEX" => self.index_info(),
            "CONFIG" => self.config(rest),
            "SEARCH" => self.search(rest),
            "EXPLAIN" => self.explain(rest),
            "EXPLORE" => self.explore(rest),
            "PICK" => self.pick(rest),
            "BACK" => self.frontier(),
            "END" => self.end(),
            "SAVE" => self.save(rest),
            "LOAD" => self.load(rest),
            "CHECKPOINT" => self.checkpoint(),
            other => format!("unknown command {other:?}; try HELP"),
        }
    }

    fn stores(&self) -> String {
        let mut out = String::new();
        for name in self.quepa.polystore().database_names() {
            let c = self.quepa.polystore().connector(name).expect("listed");
            let _ = writeln!(
                out,
                "{:<20} {:<12} {:>8} objects  collections: {}",
                name.as_str(),
                c.kind().name(),
                c.object_count(),
                c.collections().iter().map(|c| c.to_string()).collect::<Vec<_>>().join(", "),
            );
        }
        out
    }

    fn stats(&self) -> String {
        let s = self.quepa.polystore().stats();
        let (hits, misses) = self.quepa.cache().stats();
        format!(
            "queries: {}  round-trips: {}  objects moved: {}  simulated network: {:?}\n\
             cache: {} entries, {hits} hits / {misses} misses\n",
            s.queries,
            s.round_trips,
            s.objects_returned,
            s.simulated_network,
            self.quepa.cache().len(),
        )
    }

    fn index_info(&self) -> String {
        let mut out = format!("{:?}\n", self.quepa.index().stats());
        for s in self.quepa.index_shard_stats() {
            out.push_str(&format!(
                "shard {:>2}: {} entries, overlay {}, {} bytes, {} compactions, {} swaps\n",
                s.shard, s.entries, s.overlay_depth, s.resident_bytes, s.compactions, s.swaps
            ));
        }
        out
    }

    fn metrics(&self, rest: &str) -> String {
        let snapshot = self.quepa.metrics_snapshot();
        match rest.to_ascii_uppercase().as_str() {
            "" | "PROM" | "PROMETHEUS" => {
                let mut out = crate::obs::prometheus_text(&snapshot);
                if !self.quepa.config().observability {
                    out.push_str("# observability is off; CONFIG OBS ON to record stages\n");
                }
                out
            }
            "JSON" => {
                let mut out = crate::obs::json(&snapshot);
                out.push('\n');
                out
            }
            other => format!("unknown metrics format {other:?}; METRICS [JSON]"),
        }
    }

    fn config(&self, rest: &str) -> String {
        if rest.is_empty() {
            return format!("{}\n", self.quepa.config());
        }
        let parts: Vec<&str> = rest.split_whitespace().collect();
        if let [knob, toggle] = parts.as_slice() {
            let on = match toggle.to_ascii_uppercase().as_str() {
                "ON" => true,
                "OFF" => false,
                _ => return format!("usage: CONFIG {} ON|OFF", knob.to_ascii_uppercase()),
            };
            match knob.to_ascii_uppercase().as_str() {
                "OBS" => self
                    .quepa
                    .set_config(QuepaConfig { observability: on, ..self.quepa.config() }),
                "PUSH" => {
                    self.quepa.set_config(QuepaConfig { pushdown: on, ..self.quepa.config() })
                }
                other => return format!("unknown config knob {other:?}; OBS or PUSH"),
            }
            return format!("configured: {}\n", self.quepa.config());
        }
        let [aug, batch, threads, cache] = parts.as_slice() else {
            return "usage: CONFIG <augmenter> <batch> <threads> <cache> | CONFIG OBS|PUSH ON|OFF"
                .into();
        };
        let Some(augmenter) = AugmenterKind::parse(aug) else {
            return format!(
                "unknown augmenter {aug:?}; one of {}",
                AugmenterKind::ALL.map(|k| k.name()).join(", ")
            );
        };
        let parse = |s: &str| s.parse::<usize>().ok();
        match (parse(batch), parse(threads), parse(cache)) {
            (Some(batch_size), Some(threads_size), Some(cache_size)) => {
                self.quepa.set_config(QuepaConfig {
                    augmenter,
                    batch_size,
                    threads_size,
                    cache_size,
                    ..self.quepa.config()
                });
                format!("configured: {}\n", self.quepa.config())
            }
            _ => "batch/threads/cache must be integers".into(),
        }
    }

    fn search(&mut self, rest: &str) -> String {
        let (rest, filter) = match split_filter(rest) {
            Ok(split) => split,
            Err(e) => return e,
        };
        let mut parts = rest.splitn(3, char::is_whitespace);
        let (Some(db), Some(level), Some(query)) = (parts.next(), parts.next(), parts.next())
        else {
            return "usage: SEARCH <db> <level> <query…> [:: <filter>]".into();
        };
        let Ok(level) = level.parse::<usize>() else {
            return "level must be a non-negative integer".into();
        };
        let result = match &filter {
            Some(f) => self.quepa.augmented_search_filtered(db, query, level, f),
            None => self.quepa.augmented_search(db, query, level),
        };
        match result {
            Ok(answer) => {
                let mut out = answer.render();
                let _ = writeln!(
                    out,
                    "({} original + {} augmented in {:?}, {} cache hits)",
                    answer.original.len(),
                    answer.augmented.len(),
                    answer.duration,
                    answer.cache_hits,
                );
                if let Some(f) = &filter {
                    let _ = writeln!(out, "(filter: {f})");
                }
                out
            }
            Err(e) => format!("error: {e}\n"),
        }
    }

    fn explain(&self, rest: &str) -> String {
        let (rest, filter) = match split_filter(rest) {
            Ok(split) => split,
            Err(e) => return e,
        };
        let Some(filter) = filter else {
            return "usage: EXPLAIN <db> <level> <query…> :: <filter>".into();
        };
        let mut parts = rest.splitn(3, char::is_whitespace);
        let (Some(db), Some(level), Some(query)) = (parts.next(), parts.next(), parts.next())
        else {
            return "usage: EXPLAIN <db> <level> <query…> :: <filter>".into();
        };
        let Ok(level) = level.parse::<usize>() else {
            return "level must be a non-negative integer".into();
        };
        match self.quepa.explain_search(db, query, level, &filter) {
            Ok(decisions) => {
                if decisions.is_empty() {
                    return "no augmentation groups to plan at this level\n".into();
                }
                let mut out = format!("filter: {filter}\n");
                for d in &decisions {
                    let strategy = match d.strategy {
                        GroupStrategy::Pushdown => "PUSHDOWN",
                        GroupStrategy::FetchAll => "FETCH-ALL",
                    };
                    let reason = match d.reason {
                        DecisionReason::Chosen => "planner chose pushdown",
                        DecisionReason::Disabled => "pushdown disabled by config",
                        DecisionReason::Declined => "connector declined the filter",
                        DecisionReason::Predicted => "planner predicted fetch-all faster",
                    };
                    let _ = writeln!(
                        out,
                        "{:<28} {:>4} keys  {:<9} {reason}",
                        format!("{}.{}", d.database, d.collection),
                        d.keys,
                        strategy,
                    );
                }
                out
            }
            Err(e) => format!("error: {e}\n"),
        }
    }

    fn explore(&mut self, rest: &str) -> String {
        let Some((db, query)) = rest.split_once(char::is_whitespace) else {
            return "usage: EXPLORE <db> <query…>".into();
        };
        match self.quepa.explore(db, query.trim()) {
            Ok(session) => {
                let mut out = String::new();
                for (i, o) in session.results().iter().enumerate() {
                    let _ = writeln!(out, "[{i}] {o}");
                }
                let _ = writeln!(out, "PICK <i> to expand a result.");
                self.session = Some(session);
                self.started = false;
                out
            }
            Err(e) => format!("error: {e}\n"),
        }
    }

    fn pick(&mut self, rest: &str) -> String {
        let Some(session) = self.session.as_mut() else {
            return "no exploration in progress; EXPLORE first".into();
        };
        let Ok(i) = rest.trim().parse::<usize>() else {
            return "usage: PICK <index>".into();
        };
        let result = if self.started { session.step(i) } else { session.select(i) };
        self.started = true;
        match result {
            Ok(_) => self.frontier(),
            Err(e) => format!("error: {e}\n"),
        }
    }

    fn frontier(&self) -> String {
        let Some(session) = self.session.as_ref() else {
            return "no exploration in progress".into();
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "path: {}",
            session.path().iter().map(|k| k.to_string()).collect::<Vec<_>>().join(" → ")
        );
        for (i, link) in session.frontier().iter().enumerate() {
            let _ = writeln!(out, "[{i}] ⇒ {} [p={}]", link.object, link.probability);
        }
        if session.frontier().is_empty() {
            let _ = writeln!(out, "(no further links)");
        }
        out
    }

    fn end(&mut self) -> String {
        match self.session.take() {
            None => "no exploration in progress".into(),
            Some(session) => {
                let steps = session.steps();
                let promoted = session.finish();
                self.started = false;
                format!(
                    "exploration closed after {steps} steps{}\n",
                    if promoted { "; a shortcut p-relation was promoted" } else { "" }
                )
            }
        }
    }

    fn checkpoint(&self) -> String {
        match self.quepa.checkpoint_durable() {
            Ok(Some(lsn)) => {
                let status = self.quepa.durability_status().expect("durable");
                format!(
                    "checkpoint cut written at LSN {lsn} in {} ({} cuts, {} records this session)\n",
                    status.dir.display(),
                    status.cuts_written,
                    status.records_appended,
                )
            }
            Ok(None) => "not a durable instance; start quepa-cli with --data-dir DIR\n".into(),
            Err(e) => format!("error: {e}\n"),
        }
    }

    fn save(&self, rest: &str) -> String {
        if rest.is_empty() {
            return "usage: SAVE <path>".into();
        }
        let text = serial::to_string(&self.quepa.index_snapshot());
        match std::fs::write(rest, text) {
            Ok(()) => format!("A' index saved to {rest}\n"),
            Err(e) => format!("error: {e}\n"),
        }
    }

    fn load(&self, rest: &str) -> String {
        if rest.is_empty() {
            return "usage: LOAD <path>".into();
        }
        let text = match std::fs::read_to_string(rest) {
            Ok(t) => t,
            Err(e) => return format!("error: {e}\n"),
        };
        match serial::from_str(&text) {
            Ok(index) => {
                self.quepa.replace_index(index);
                format!("A' index loaded from {rest}: {:?}\n", self.quepa.index().stats())
            }
            Err(e) => format!("error: {e}\n"),
        }
    }
}

/// Splits an optional ` :: <filter>` suffix off a command tail and
/// parses the pushdown predicate.
fn split_filter(rest: &str) -> Result<(&str, Option<Pushdown>), String> {
    match rest.split_once("::") {
        None => Ok((rest.trim(), None)),
        Some((head, filt)) => match Pushdown::parse(filt.trim()) {
            Ok(f) => Ok((head.trim(), Some(f))),
            Err(e) => Err(format!("bad filter: {e}\n")),
        },
    }
}

const HELP: &str = "\
QUEPA commands:
  SEARCH <db> <level> <query…> [:: <filter>]
                                 augmented search in the store's native language;
                                 the optional predicate restricts augmented objects
  EXPLAIN <db> <level> <query…> :: <filter>
                                 dry-run the per-store pushdown plan for a filter
  EXPLORE <db> <query…>          start an augmented exploration
  PICK <i>                       expand result/link i       BACK  show frontier
  END                            close the exploration (paths may promote)
  CONFIG [<augmenter> <batch> <threads> <cache>]   show or set the configuration
  CONFIG OBS ON|OFF              toggle the observability layer
  CONFIG PUSH ON|OFF             toggle predicate pushdown planning
  METRICS [JSON]                 export metrics (Prometheus text by default)
  STORES / STATS / INDEX         inspect the polystore / counters / A' index
  SAVE <path> / LOAD <path>      persist or restore the A' index
  CHECKPOINT                     force a durable checkpoint cut (--data-dir mode)
";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::polystore::Deployment;
    use crate::workload::{BuiltPolystore, WorkloadConfig};

    fn quepa() -> Quepa {
        BuiltPolystore::build(WorkloadConfig {
            albums: 60,
            replica_sets: 0,
            deployment: Deployment::InProcess,
            seed: 77,
        })
        .into_quepa()
    }

    #[test]
    fn search_renders_answer() {
        let q = quepa();
        let mut p = CommandProcessor::new(&q);
        let out = p.handle("SEARCH transactions 0 SELECT * FROM inventory WHERE seq < 2");
        assert!(out.contains("transactions.inventory.a0"), "{out}");
        assert!(out.contains('⇒'), "{out}");
        assert!(out.contains("augmented in"), "{out}");
    }

    #[test]
    fn search_errors_are_rendered() {
        let q = quepa();
        let mut p = CommandProcessor::new(&q);
        let out = p.handle("SEARCH transactions 0 SELECT COUNT(*) FROM inventory");
        assert!(out.contains("error"), "{out}");
        let out = p.handle("SEARCH nosuchdb 0 SELECT * FROM t");
        assert!(out.contains("error"), "{out}");
        let out = p.handle("SEARCH transactions x SELECT * FROM t");
        assert!(out.contains("level must be"), "{out}");
    }

    #[test]
    fn filtered_search_and_explain() {
        let q = quepa();
        let mut p = CommandProcessor::new(&q);
        let out =
            p.handle("SEARCH transactions 1 SELECT * FROM inventory WHERE seq < 2 :: key contains \"9\"");
        assert!(out.contains("augmented in"), "{out}");
        assert!(out.contains("filter: key contains \"9\""), "{out}");
        let out = p.handle("SEARCH transactions 1 SELECT * FROM t :: key ?? x");
        assert!(out.contains("bad filter"), "{out}");

        let out =
            p.handle("EXPLAIN transactions 1 SELECT * FROM inventory WHERE seq < 2 :: key contains \"9\"");
        assert!(out.contains("filter: key contains \"9\""), "{out}");
        assert!(out.contains("PUSHDOWN") || out.contains("FETCH-ALL"), "{out}");
        assert!(p.handle("EXPLAIN transactions 1 SELECT * FROM t").contains("usage: EXPLAIN"));

        let out = p.handle("CONFIG PUSH OFF");
        assert!(out.contains("no-pushdown"), "{out}");
        let out =
            p.handle("EXPLAIN transactions 1 SELECT * FROM inventory WHERE seq < 2 :: key contains \"9\"");
        assert!(out.contains("FETCH-ALL"), "{out}");
        assert!(out.contains("disabled"), "{out}");
        let out = p.handle("CONFIG PUSH ON");
        assert!(!out.contains("no-pushdown"), "{out}");
        assert!(p.handle("CONFIG PUSH maybe").contains("usage: CONFIG PUSH"));
    }

    #[test]
    fn explore_pick_end_flow() {
        let q = quepa();
        let mut p = CommandProcessor::new(&q);
        let out = p.handle("EXPLORE transactions SELECT * FROM sales WHERE seq < 2");
        assert!(out.contains("[0]"), "{out}");
        assert!(p.exploring());
        let out = p.handle("PICK 0");
        assert!(out.contains("path: transactions.sales.s0"), "{out}");
        assert!(out.contains("[0] ⇒"), "{out}");
        let out = p.handle("PICK 0");
        assert!(out.contains('→'), "{out}");
        let out = p.handle("END");
        assert!(out.contains("closed after 2 steps"), "{out}");
        assert!(!p.exploring());
        assert_eq!(q.paths().tracked_paths(), 0, "2-node path is too short for D_P");
    }

    #[test]
    fn pick_without_session() {
        let q = quepa();
        let mut p = CommandProcessor::new(&q);
        assert!(p.handle("PICK 0").contains("no exploration"));
        assert!(p.handle("END").contains("no exploration"));
        assert!(p.handle("BACK").contains("no exploration"));
    }

    #[test]
    fn config_roundtrip() {
        let q = quepa();
        let mut p = CommandProcessor::new(&q);
        let out = p.handle("CONFIG BATCH 128 2 500");
        assert!(out.contains("BATCH(batch=128"), "{out}");
        assert_eq!(q.config().batch_size, 128);
        assert!(p.handle("CONFIG").contains("BATCH"));
        assert!(p.handle("CONFIG WRONG 1 1 1").contains("unknown augmenter"));
        assert!(p.handle("CONFIG BATCH x 1 1").contains("must be integers"));
    }

    #[test]
    fn stores_and_stats() {
        let q = quepa();
        let mut p = CommandProcessor::new(&q);
        let out = p.handle("STORES");
        assert!(out.contains("transactions"), "{out}");
        assert!(out.contains("key-value"), "{out}");
        p.handle("SEARCH transactions 0 SELECT * FROM inventory WHERE seq < 2");
        let out = p.handle("STATS");
        assert!(out.contains("round-trips"), "{out}");
        let out = p.handle("INDEX");
        assert!(out.contains("IndexStats"), "{out}");
    }

    #[test]
    fn save_and_load() {
        let q = quepa();
        let mut p = CommandProcessor::new(&q);
        let path = std::env::temp_dir().join("quepa-cli-test.aindex");
        let path_str = path.to_str().unwrap();
        let before = q.index().stats();
        let out = p.handle(&format!("SAVE {path_str}"));
        assert!(out.contains("saved"), "{out}");
        let out = p.handle(&format!("LOAD {path_str}"));
        assert!(out.contains("loaded"), "{out}");
        // The graph round-trips exactly; lineage flattens (inferred → direct).
        let after = q.index().stats();
        assert_eq!(after.nodes, before.nodes);
        assert_eq!(after.identity_edges, before.identity_edges);
        assert_eq!(after.matching_edges, before.matching_edges);
        std::fs::remove_file(path).ok();
        assert!(p.handle("LOAD /no/such/file").contains("error"));
    }

    #[test]
    fn metrics_export_and_obs_toggle() {
        let q = quepa();
        let mut p = CommandProcessor::new(&q);
        let out = p.handle("METRICS");
        assert!(out.contains("observability is off"), "{out}");
        let out = p.handle("CONFIG OBS ON");
        assert!(out.contains("obs"), "{out}");
        assert!(q.config().observability);
        p.handle("SEARCH transactions 1 SELECT * FROM inventory WHERE seq < 2");
        let out = p.handle("METRICS");
        assert!(out.contains("quepa_stage_spans_total"), "{out}");
        assert!(out.contains("le=\"+Inf\""), "{out}");
        let out = p.handle("METRICS JSON");
        assert!(out.contains("\"stages\""), "{out}");
        assert!(p.handle("METRICS XML").contains("unknown metrics format"));
        assert!(p.handle("CONFIG OBS maybe").contains("usage: CONFIG OBS"));
        let out = p.handle("CONFIG OBS OFF");
        assert!(!out.contains("obs"), "{out}");
    }

    #[test]
    fn config_preserves_observability() {
        let q = quepa();
        let mut p = CommandProcessor::new(&q);
        p.handle("CONFIG OBS ON");
        p.handle("CONFIG BATCH 128 2 500");
        assert!(q.config().observability, "CONFIG must not silently drop the obs flag");
    }

    #[test]
    fn checkpoint_on_a_volatile_instance_points_at_data_dir() {
        let q = quepa();
        let mut p = CommandProcessor::new(&q);
        let out = p.handle("CHECKPOINT");
        assert!(out.contains("--data-dir"), "{out}");
    }

    #[test]
    fn checkpoint_on_a_durable_instance_reports_the_lsn() {
        let dir =
            std::env::temp_dir().join(format!("quepa-cli-checkpoint-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let built = BuiltPolystore::build(WorkloadConfig {
            albums: 40,
            replica_sets: 0,
            deployment: Deployment::InProcess,
            seed: 77,
        });
        let q = Quepa::create_durable(
            built.polystore,
            built.index,
            crate::core::QuepaConfig::default(),
            &dir,
            crate::core::SyncPolicy::Buffered,
        )
        .unwrap();
        let mut p = CommandProcessor::new(&q);
        let out = p.handle("CHECKPOINT");
        assert!(out.contains("checkpoint cut written at LSN"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_and_empty_commands() {
        let q = quepa();
        let mut p = CommandProcessor::new(&q);
        assert!(p.handle("FROBNICATE").contains("unknown command"));
        assert_eq!(p.handle("   "), "");
        assert!(p.handle("HELP").contains("SEARCH"));
    }
}
