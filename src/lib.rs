//! # QUEPA — augmented access for querying and exploring a polystore
//!
//! Umbrella crate re-exporting the whole workspace. See the README for a
//! tour and `DESIGN.md` for the system inventory. The crates are:
//!
//! * [`pdm`] — the polystore data model (values, global keys, p-relations);
//! * [`relstore`], [`docstore`], [`kvstore`], [`graphstore`] — the four
//!   storage engines of the Polyphony scenario, each with its native query
//!   language;
//! * [`polystore`] — connectors, the store registry and the simulated
//!   deployment (network latency, statistics);
//! * [`aindex`] — the A' index of p-relations;
//! * [`linkage`] — the Collector (record linkage: blocking + matching);
//! * [`ml`] — decision/regression tree learners for the adaptive optimizer;
//! * [`obs`] — the observability layer: stage-scoped spans, deterministic
//!   latency histograms, Prometheus/JSON export;
//! * [`core`] — the augmentation operator, augmented search/exploration,
//!   the augmenter family and the adaptive optimizer;
//! * [`baselines`] — middleware competitor simulators (Metamodel, Talend,
//!   ArangoDB in NAT/AUG variants);
//! * [`workload`] — the Polyphony data generator and experiment configs;
//! * [`serve`] — the TCP serving front end: length-prefixed wire
//!   protocol, admission control, and the blocking client.

pub mod cli;

pub use quepa_aindex as aindex;
pub use quepa_baselines as baselines;
pub use quepa_core as core;
pub use quepa_docstore as docstore;
pub use quepa_graphstore as graphstore;
pub use quepa_kvstore as kvstore;
pub use quepa_linkage as linkage;
pub use quepa_ml as ml;
pub use quepa_obs as obs;
pub use quepa_pdm as pdm;
pub use quepa_polystore as polystore;
pub use quepa_relstore as relstore;
pub use quepa_serve as serve;
pub use quepa_workload as workload;
