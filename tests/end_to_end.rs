//! Cross-crate integration: the generated Polyphony workload driven
//! through the full QUEPA stack.

use quepa::core::{AugmenterKind, QuepaConfig};
use quepa::polystore::{Deployment, StoreKind};
use quepa::workload::{query_for, BuiltPolystore, WorkloadConfig};

fn build(albums: usize, sets: usize) -> BuiltPolystore {
    BuiltPolystore::build(WorkloadConfig {
        albums,
        replica_sets: sets,
        deployment: Deployment::InProcess,
        seed: 99,
    })
}

#[test]
fn every_store_supports_augmented_search() {
    let quepa = build(120, 0).into_quepa();
    for (db, kind) in [
        ("transactions", StoreKind::Relational),
        ("catalogue", StoreKind::Document),
        ("similar", StoreKind::Graph),
        ("discount", StoreKind::KeyValue),
    ] {
        let answer = quepa.augmented_search(db, &query_for(kind, 10), 0).unwrap();
        assert_eq!(answer.original.len(), 10, "{db}");
        assert!(!answer.augmented.is_empty(), "{db}");
        // Augmented objects always come from *other* keys than the seeds.
        let seed_keys: Vec<_> = answer.original.iter().map(|o| o.key().clone()).collect();
        assert!(answer.augmented.iter().all(|a| !seed_keys.contains(a.object.key())));
    }
}

#[test]
fn augmenters_agree_on_generated_workload() {
    let quepa = build(150, 1).into_quepa();
    let mut baseline: Option<Vec<String>> = None;
    for aug in AugmenterKind::ALL {
        quepa.set_config(QuepaConfig {
            augmenter: aug,
            batch_size: 7, // deliberately awkward batch boundary
            threads_size: 3,
            cache_size: 0,
            ..QuepaConfig::default()
        });
        let answer =
            quepa.augmented_search("catalogue", &query_for(StoreKind::Document, 25), 1).unwrap();
        let keys: Vec<String> =
            answer.augmented.iter().map(|a| a.object.key().to_string()).collect();
        match &baseline {
            None => baseline = Some(keys),
            Some(b) => assert_eq!(&keys, b, "{aug} diverged"),
        }
    }
}

#[test]
fn replicas_enlarge_answers_monotonically() {
    let mut last = 0usize;
    for sets in 0..=2 {
        let quepa = build(80, sets).into_quepa();
        let answer = quepa
            .augmented_search("transactions", &query_for(StoreKind::Relational, 10), 0)
            .unwrap();
        assert!(answer.augmented.len() > last, "sets={sets}: {} ≤ {last}", answer.augmented.len());
        last = answer.augmented.len();
    }
}

#[test]
fn deleting_objects_from_a_store_heals_the_index() {
    let built = build(60, 0);
    let quepa = built.into_quepa();
    // Delete a discount entry directly in the kv store (behind QUEPA's back).
    let keys = quepa.polystore().execute("discount", "SCAN k COUNT 1").unwrap();
    let victim = keys[0].key().clone();
    assert_eq!(
        quepa
            .polystore()
            .execute_update("discount", &format!("DEL {}", victim.key().as_str()))
            .unwrap(),
        1
    );
    // Run searches until the stale reference is lazily removed.
    let mut healed = false;
    for seq in 0..60 {
        let answer = quepa
            .augmented_search(
                "transactions",
                &format!("SELECT * FROM inventory WHERE seq = {seq}"),
                0,
            )
            .unwrap();
        if answer.lazily_deleted > 0 {
            healed = true;
            break;
        }
    }
    assert!(healed, "some query must touch the deleted discount");
    assert!(!quepa.index().contains(&victim));
}

#[test]
fn exploration_and_promotion_work_on_generated_data() {
    let quepa = build(100, 0).into_quepa();
    let mut s = quepa.explore("catalogue", r#"db.albums.find({"seq":{"$lt":3}})"#).unwrap();
    assert_eq!(s.results().len(), 3);
    let frontier = s.select(1).unwrap();
    assert!(!frontier.is_empty());
    // Frontier is probability-ordered.
    assert!(frontier.windows(2).all(|w| w[0].probability >= w[1].probability));
    let _ = s.step(0).unwrap();
    let _ = s.step(0).unwrap();
    assert_eq!(s.path().len(), 3);
    s.finish();
    // Three selected nodes = a full path (k > 1), so D_P tracks it.
    assert_eq!(quepa.paths().tracked_paths(), 1);
}

#[test]
fn level_zero_subset_of_level_one() {
    let quepa = build(90, 1).into_quepa();
    let q = query_for(StoreKind::Graph, 5);
    let l0 = quepa.augmented_search("similar", &q, 0).unwrap();
    let l1 = quepa.augmented_search("similar", &q, 1).unwrap();
    let keys1: Vec<_> = l1.augmented.iter().map(|a| a.object.key().clone()).collect();
    for a in &l0.augmented {
        assert!(keys1.contains(a.object.key()), "{} lost at level 1", a.object.key());
    }
}

#[test]
fn stats_reflect_batching() {
    let built = build(120, 0);
    let quepa = built.into_quepa();
    let q = query_for(StoreKind::Relational, 60);

    quepa.set_config(QuepaConfig {
        augmenter: AugmenterKind::Sequential,
        cache_size: 0,
        ..QuepaConfig::default()
    });
    quepa.polystore().reset_stats();
    let a = quepa.augmented_search("transactions", &q, 0).unwrap();
    let seq_trips = quepa.polystore().stats().round_trips;

    quepa.set_config(QuepaConfig {
        augmenter: AugmenterKind::Batch,
        batch_size: 1024,
        cache_size: 0,
        ..QuepaConfig::default()
    });
    quepa.polystore().reset_stats();
    let b = quepa.augmented_search("transactions", &q, 0).unwrap();
    let batch_trips = quepa.polystore().stats().round_trips;

    assert_eq!(a.augmented.len(), b.augmented.len());
    assert!(
        batch_trips * 4 < seq_trips,
        "batching must slash round trips: {batch_trips} vs {seq_trips}"
    );
}

#[test]
fn graph_node_deletion_triggers_lazy_deletion() {
    let quepa = build(50, 0).into_quepa();
    // Remove a graph node behind QUEPA's back.
    assert_eq!(quepa.polystore().execute_update("similar", "DELETE NODE g3").unwrap(), 1);
    let answer =
        quepa.augmented_search("transactions", "SELECT * FROM inventory WHERE seq = 3", 0).unwrap();
    assert_eq!(answer.lazily_deleted, 1);
    let gone: quepa::pdm::GlobalKey = "similar.album.g3".parse().unwrap();
    assert!(!quepa.index().contains(&gone));
    // The graph itself no longer returns the node in pattern queries.
    let nodes =
        quepa.polystore().execute("similar", "MATCH (n:Album) WHERE n.seq = 3 RETURN n").unwrap();
    assert!(nodes.is_empty());
}
