//! CLI round-trip: drive the line protocol end to end — one augmented
//! query per store kind, the observability toggle, and both metrics
//! export formats — and hold the transcript stable across twin
//! fixed-seed instances.
//!
//! Wall-clock durations are the only nondeterministic output ("... in
//! 1.23ms ..." lines); everything else, including the metrics histograms
//! (which record *simulated* latency), must be byte-identical.

use quepa::cli::CommandProcessor;
use quepa::core::Quepa;
use quepa::polystore::Deployment;
use quepa::workload::{BuiltPolystore, WorkloadConfig};

fn build() -> Quepa {
    BuiltPolystore::build(WorkloadConfig {
        albums: 40,
        replica_sets: 1,
        deployment: Deployment::InProcess,
        seed: 1234,
    })
    .into_quepa()
}

/// One script, covering: the observability toggle, an augmented search in
/// each store's native language (relational SQL, Mongo-style find, Cypher
/// MATCH, redis-style SCAN), and every metrics export format.
const SCRIPT: &[&str] = &[
    "CONFIG OBS ON",
    "SEARCH transactions 1 SELECT * FROM inventory WHERE seq < 3",
    r#"SEARCH catalogue 1 db.albums.find({"seq":{"$lt":3}})"#,
    "SEARCH similar 1 MATCH (n:Album) WHERE n.seq < 3 RETURN n",
    "SEARCH discount 1 SCAN k COUNT 3",
    "STORES",
    "STATS",
    "METRICS",
    "METRICS JSON",
    "CONFIG OBS OFF",
    "METRICS",
];

fn drive(quepa: &Quepa) -> String {
    let mut processor = CommandProcessor::new(quepa);
    let mut out = String::new();
    for cmd in SCRIPT {
        out.push_str(">>> ");
        out.push_str(cmd);
        out.push('\n');
        out.push_str(&processor.handle(cmd));
    }
    out
}

/// Strips the wall-clock timing lines ("... 2 augmented in 1.2ms ...").
fn stable(transcript: &str) -> String {
    transcript.lines().filter(|l| !l.contains(" in ")).collect::<Vec<_>>().join("\n")
}

#[test]
fn every_store_kind_answers_with_augmentation() {
    let quepa = build();
    let transcript = drive(&quepa);
    // Each SEARCH section must have produced augmented results (the `⇒`
    // marker) and closed with the summary line.
    let searches: Vec<&str> =
        transcript.split(">>> ").filter(|s| s.starts_with("SEARCH")).collect();
    assert_eq!(searches.len(), 4, "script runs one search per store kind");
    for section in &searches {
        assert!(section.contains('⇒'), "no augmented results in:\n{section}");
        assert!(section.contains("augmented in"), "no summary line in:\n{section}");
        assert!(!section.contains("error"), "search failed:\n{section}");
    }
    // Augmentation crossed store boundaries: the relational search reaches
    // the document, graph and kv stores.
    let relational = searches[0];
    for db in ["catalogue", "similar", "discount"] {
        assert!(relational.contains(db), "SQL search never reached {db}:\n{relational}");
    }
}

#[test]
fn metrics_exports_and_obs_toggle_render() {
    let quepa = build();
    let transcript = drive(&quepa);
    assert!(transcript.contains("quepa_stage_spans_total"), "no Prometheus stage counters");
    assert!(transcript.contains("le=\"+Inf\""), "no histogram buckets");
    assert!(transcript.contains("\"stages\""), "no JSON export");
    assert!(transcript.contains("\"cache\""), "no cache section in JSON");
    // The final METRICS runs after CONFIG OBS OFF and must say so.
    let tail = transcript.rsplit(">>> METRICS").next().unwrap();
    assert!(tail.contains("observability is off"), "OBS OFF not reflected:\n{tail}");
}

#[test]
fn twin_instances_produce_identical_transcripts() {
    let first = stable(&drive(&build()));
    let second = stable(&drive(&build()));
    assert_eq!(first, second, "fixed-seed CLI transcript is not deterministic");
    // The filter only removes timing lines, not content.
    assert!(first.contains("quepa_stage_spans_total"));
    assert!(first.contains('⇒'));
}
