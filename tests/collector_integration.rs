//! Cross-crate integration: the Collector building an A' index from the
//! generated polystore by record linkage, then powering augmented search.

use quepa::core::Quepa;
use quepa::linkage::{Collector, CollectorConfig};
use quepa::pdm::RelationKind;
use quepa::polystore::Deployment;
use quepa::workload::{BuiltPolystore, WorkloadConfig};

fn built() -> BuiltPolystore {
    // Small scale: blocking+matching is quadratic in block sizes.
    BuiltPolystore::build(WorkloadConfig {
        albums: 30,
        replica_sets: 0,
        deployment: Deployment::InProcess,
        seed: 23,
    })
}

#[test]
fn collector_rediscovers_the_identity_cliques() {
    let b = built();
    let (index, report) =
        Collector::new(CollectorConfig::default()).build_index(&b.polystore).unwrap();
    assert!(report.objects_scanned > 0);
    assert!(report.identities > 0, "{report:?}");
    assert!(index.check_consistency().is_none());

    // Ground truth: every album's catalogue copy is an identity of its
    // inventory copy. Count how many the linker found.
    let mut found = 0usize;
    for album in &b.data.albums {
        let doc = format!("catalogue.albums.d{}", album.seq).parse().unwrap();
        let inv = format!("transactions.inventory.a{}", album.seq).parse().unwrap();
        if index.edge(&doc, &inv, RelationKind::Identity).is_some()
            || index.edge(&doc, &inv, RelationKind::Matching).is_some()
        {
            found += 1;
        }
    }
    let recall = found as f64 / b.data.albums.len() as f64;
    assert!(recall >= 0.8, "linkage recall too low: {recall} ({found}/{})", b.data.albums.len());
}

#[test]
fn linkage_built_index_powers_augmented_search() {
    let b = built();
    let (index, _) = Collector::default().build_index(&b.polystore).unwrap();
    let quepa = Quepa::new(b.polystore.clone(), index);
    let answer =
        quepa.augmented_search("transactions", "SELECT * FROM inventory WHERE seq < 5", 0).unwrap();
    assert_eq!(answer.original.len(), 5);
    assert!(!answer.augmented.is_empty(), "discovered relations must augment");
    // Results reach a different store than the query's target.
    assert!(answer.augmented.iter().any(|a| a.object.key().database().as_str() != "transactions"));
}

#[test]
fn dedup_rule_holds_globally() {
    // Each (object, foreign database) pair carries at most one identity.
    let b = built();
    let (index, _) = Collector::default().build_index(&b.polystore).unwrap();
    for key in index.keys() {
        let mut per_db: std::collections::HashMap<&str, usize> = Default::default();
        let neighbors = index.neighbors(key);
        for (other, kind, _) in &neighbors {
            if *kind == RelationKind::Identity {
                *per_db.entry(other.database().as_str()).or_default() += 1;
            }
        }
        for (db, n) in per_db {
            // Transitivity can widen cliques, but *direct* linkage output
            // should never assert two same-db objects identical to one
            // object; with the generated data (unique titles) each clique
            // has exactly one member per database.
            assert!(n <= 1, "{key} has {n} identities into {db}");
        }
    }
}
