//! §III-A: "Since QUEPA does not store any data, it is easy to deploy
//! multiple instances of the system that can answer independent queries in
//! parallel. In this case, each instance has its own A' index replica and
//! its own augmenter." — exercised here with real threads.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Condvar, Mutex};

use quepa::core::{AnswerNormalForm, AugmenterKind, Quepa, QuepaConfig};
use quepa::pdm::{CollectionName, DataObject, DatabaseName, LocalKey};
use quepa::polystore::{
    Connector, Deployment, Polystore, Result as PolyResult, StatsSnapshot, StoreKind,
};
use quepa::workload::{query_for, BuiltPolystore, WorkloadConfig};

#[test]
fn multiple_instances_answer_in_parallel() {
    let built = BuiltPolystore::build(WorkloadConfig {
        albums: 120,
        replica_sets: 0,
        deployment: Deployment::InProcess,
        seed: 31,
    });
    // Two instances share the store registry; each has its own A' index
    // replica, cache and configuration.
    let polystore = built.polystore.clone();
    let index = built.index.clone();
    let instances: Vec<Arc<Quepa>> = (0..2)
        .map(|i| {
            let q = Quepa::with_config(
                polystore.clone(),
                index.clone(),
                QuepaConfig {
                    augmenter: if i == 0 {
                        AugmenterKind::OuterBatch
                    } else {
                        AugmenterKind::Sequential
                    },
                    ..QuepaConfig::default()
                },
            );
            Arc::new(q)
        })
        .collect();

    let mut handles = Vec::new();
    for (i, instance) in instances.iter().enumerate() {
        for t in 0..3 {
            let quepa = Arc::clone(instance);
            handles.push(std::thread::spawn(move || {
                let size = 5 + (i * 3 + t) * 7;
                let answer = quepa
                    .augmented_search("transactions", &query_for(StoreKind::Relational, size), 1)
                    .unwrap();
                (size, answer.original.len(), answer.augmented.len())
            }));
        }
    }
    for h in handles {
        let (size, orig, aug) = h.join().unwrap();
        assert_eq!(orig, size);
        assert!(aug > 0);
    }
}

#[test]
fn one_instance_serves_concurrent_queries() {
    let built = BuiltPolystore::build(WorkloadConfig {
        albums: 150,
        replica_sets: 1,
        deployment: Deployment::InProcess,
        seed: 32,
    });
    let quepa = Arc::new(built.into_quepa());
    let handles: Vec<_> = (0..6)
        .map(|t| {
            let quepa = Arc::clone(&quepa);
            std::thread::spawn(move || {
                let dbs = ["transactions", "catalogue", "similar"];
                let kinds = [StoreKind::Relational, StoreKind::Document, StoreKind::Graph];
                let answer = quepa
                    .augmented_search(dbs[t % 3], &query_for(kinds[t % 3], 10 + t), 0)
                    .unwrap();
                answer.augmented.len()
            })
        })
        .collect();
    for h in handles {
        assert!(h.join().unwrap() > 0);
    }
    // Logs from every thread accumulated.
    assert_eq!(quepa.take_logs().len(), 6);
}

#[test]
fn lazy_deletion_is_thread_safe() {
    let built = BuiltPolystore::build(WorkloadConfig {
        albums: 60,
        replica_sets: 0,
        deployment: Deployment::InProcess,
        seed: 33,
    });
    let quepa = Arc::new(built.into_quepa());
    // Delete half the discounts behind QUEPA's back.
    for seq in (0..60).step_by(4) {
        let _ = quepa
            .polystore()
            .execute_update("discount", &format!("DEL {}", discount_key_of(&quepa, seq)));
    }
    // Hammer the system from several threads; every run must stay coherent.
    let handles: Vec<_> = (0..4)
        .map(|t| {
            let quepa = Arc::clone(&quepa);
            std::thread::spawn(move || {
                for i in 0..10 {
                    let q = format!("SELECT * FROM inventory WHERE seq = {}", (t * 10 + i) % 60);
                    let answer = quepa.augmented_search("transactions", &q, 0).unwrap();
                    assert_eq!(answer.original.len(), 1);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

/// 64 concurrent clients over one shared instance must produce answers —
/// and an end-of-run metrics snapshot — identical to the same 64 queries
/// served back to back by a same-seed serial twin. This pins the
/// coalescing accounting: waiters count as cache hits, exactly one leader
/// per batch group tallies the miss and the round trip.
#[test]
fn sixty_four_concurrent_clients_match_serial() {
    const CLIENTS: usize = 64;
    let config = QuepaConfig {
        augmenter: AugmenterKind::OuterBatch,
        batch_size: 8,
        threads_size: 4,
        cache_size: 4096,
        observability: true,
        ..QuepaConfig::default()
    };
    let build = || {
        BuiltPolystore::build(WorkloadConfig {
            albums: 100,
            replica_sets: 1,
            deployment: Deployment::InProcess,
            seed: 34,
        })
    };
    let query = query_for(StoreKind::Relational, 12);

    // Serial twin: a fresh instance answering the query 64 times in a row.
    let built = build();
    let serial = Quepa::with_config(built.polystore, built.index, config);
    let serial_nfs: Vec<AnswerNormalForm> = (0..CLIENTS)
        .map(|_| serial.augmented_search("transactions", &query, 1).unwrap().normal_form())
        .collect();
    assert!(serial_nfs.windows(2).all(|w| w[0] == w[1]), "serial runs must agree");

    // Shared instance: 64 clients released together through a barrier.
    let built = build();
    let shared = Arc::new(Quepa::with_config(built.polystore, built.index, config));
    let barrier = Arc::new(Barrier::new(CLIENTS));
    let handles: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let shared = Arc::clone(&shared);
            let barrier = Arc::clone(&barrier);
            let query = query.clone();
            std::thread::spawn(move || {
                barrier.wait();
                shared.augmented_search("transactions", &query, 1).unwrap().normal_form()
            })
        })
        .collect();
    for h in handles {
        assert_eq!(h.join().unwrap(), serial_nfs[0], "concurrent answer diverged from serial");
    }
    assert_eq!(shared.take_logs().len(), CLIENTS);
    assert_eq!(
        shared.metrics_snapshot(),
        serial.metrics_snapshot(),
        "metrics under 64-way concurrency must equal the serial twin's"
    );
}

/// A gate the test holds closed while concurrent queries pile up on the
/// flight table, so the leader's round trip is provably in flight when
/// the waiters join.
#[derive(Default)]
struct Gate {
    open: Mutex<bool>,
    released: Condvar,
}

impl Gate {
    fn hold(&self) {
        let mut open = self.open.lock().unwrap();
        while !*open {
            open = self.released.wait(open).unwrap();
        }
    }

    fn release(&self) {
        *self.open.lock().unwrap() = true;
        self.released.notify_all();
    }
}

/// Delegating connector that counts point/batched lookups — the round
/// trips the single-flight layer is supposed to coalesce — and parks them
/// on a [`Gate`] until the test releases it.
struct GateConnector {
    inner: Arc<dyn Connector>,
    round_trips: Arc<AtomicUsize>,
    gate: Arc<Gate>,
}

impl Connector for GateConnector {
    fn database(&self) -> &DatabaseName {
        self.inner.database()
    }

    fn kind(&self) -> StoreKind {
        self.inner.kind()
    }

    fn collections(&self) -> Vec<CollectionName> {
        self.inner.collections()
    }

    fn execute(&self, query: &str) -> PolyResult<Vec<DataObject>> {
        self.inner.execute(query)
    }

    fn execute_update(&self, statement: &str) -> PolyResult<usize> {
        self.inner.execute_update(statement)
    }

    fn get(&self, collection: &CollectionName, key: &LocalKey) -> PolyResult<Option<DataObject>> {
        self.gate.hold();
        self.round_trips.fetch_add(1, Ordering::Relaxed);
        self.inner.get(collection, key)
    }

    fn multi_get(
        &self,
        collection: &CollectionName,
        keys: &[LocalKey],
    ) -> PolyResult<Vec<DataObject>> {
        self.gate.hold();
        self.round_trips.fetch_add(1, Ordering::Relaxed);
        self.inner.multi_get(collection, keys)
    }

    fn scan_collection(&self, collection: &CollectionName) -> PolyResult<Vec<DataObject>> {
        self.inner.scan_collection(collection)
    }

    fn object_count(&self) -> usize {
        self.inner.object_count()
    }

    fn stats(&self) -> StatsSnapshot {
        self.inner.stats()
    }

    fn reset_stats(&self) {
        self.inner.reset_stats()
    }

    fn record_resilience(&self, retries: u64, timeouts: u64, breaker_trips: u64) {
        self.inner.record_resilience(retries, timeouts, breaker_trips)
    }
}

fn gated(polystore: &Polystore, round_trips: &Arc<AtomicUsize>, gate: &Arc<Gate>) -> Polystore {
    polystore.wrap_connectors(|inner| {
        Arc::new(GateConnector {
            inner,
            round_trips: Arc::clone(round_trips),
            gate: Arc::clone(gate),
        })
    })
}

/// Cross-query single-flight: while the leader's round trip is parked on
/// the gate, seven more clients ask for the same keys. Once released, the
/// eight queries together must have cost exactly the round trips of ONE
/// cold serial run — the other seven rode the shared flights (or the
/// cache the leader filled).
#[test]
fn identical_concurrent_queries_share_one_round_trip() {
    const CLIENTS: usize = 8;
    let config = QuepaConfig {
        augmenter: AugmenterKind::OuterBatch,
        batch_size: 8,
        threads_size: 1, // tickets collapse to the caller: the gate parks client threads only
        cache_size: 4096,
        ..QuepaConfig::default()
    };
    let build = || {
        BuiltPolystore::build(WorkloadConfig {
            albums: 80,
            replica_sets: 0,
            deployment: Deployment::InProcess,
            seed: 35,
        })
    };
    let query = query_for(StoreKind::Document, 9);

    // Reference: round trips of one cold serial run (gate already open).
    let built = build();
    let serial_trips = Arc::new(AtomicUsize::new(0));
    let open_gate = Arc::new(Gate::default());
    open_gate.release();
    let serial =
        Quepa::with_config(gated(&built.polystore, &serial_trips, &open_gate), built.index, config);
    let serial_nf = serial.augmented_search("catalogue", &query, 1).unwrap().normal_form();
    let serial_trips = serial_trips.load(Ordering::Relaxed);
    assert!(serial_trips > 0, "the query must fetch something");

    // Shared instance, gate closed: the leader parks inside its round
    // trip while the other clients join the same flights.
    let built = build();
    let trips = Arc::new(AtomicUsize::new(0));
    let gate = Arc::new(Gate::default());
    let shared =
        Arc::new(Quepa::with_config(gated(&built.polystore, &trips, &gate), built.index, config));
    let handles: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let shared = Arc::clone(&shared);
            let query = query.clone();
            std::thread::spawn(move || {
                shared.augmented_search("catalogue", &query, 1).unwrap().normal_form()
            })
        })
        .collect();
    // Let every client reach the flight table: the leader is parked on
    // the gate, the rest are parked on the flights it registered.
    std::thread::sleep(std::time::Duration::from_millis(150));
    gate.release();
    for h in handles {
        assert_eq!(h.join().unwrap(), serial_nf, "coalesced answer diverged");
    }
    assert_eq!(
        trips.load(Ordering::Relaxed),
        serial_trips,
        "eight identical concurrent queries must cost one run's round trips"
    );
}

fn discount_key_of(quepa: &Quepa, seq: usize) -> String {
    // Find the discount key for album `seq` via a prefix scan.
    let objs = quepa.polystore().execute("discount", &format!("SCAN k{seq}:")).unwrap();
    objs.first().map(|o| o.key().key().as_str().to_owned()).unwrap_or_else(|| "none".into())
}
