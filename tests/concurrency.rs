//! §III-A: "Since QUEPA does not store any data, it is easy to deploy
//! multiple instances of the system that can answer independent queries in
//! parallel. In this case, each instance has its own A' index replica and
//! its own augmenter." — exercised here with real threads.

use std::sync::Arc;

use quepa::core::{AugmenterKind, Quepa, QuepaConfig};
use quepa::polystore::{Deployment, StoreKind};
use quepa::workload::{query_for, BuiltPolystore, WorkloadConfig};

#[test]
fn multiple_instances_answer_in_parallel() {
    let built = BuiltPolystore::build(WorkloadConfig {
        albums: 120,
        replica_sets: 0,
        deployment: Deployment::InProcess,
        seed: 31,
    });
    // Two instances share the store registry; each has its own A' index
    // replica, cache and configuration.
    let polystore = built.polystore.clone();
    let index = built.index.clone();
    let instances: Vec<Arc<Quepa>> = (0..2)
        .map(|i| {
            let q = Quepa::with_config(
                polystore.clone(),
                index.clone(),
                QuepaConfig {
                    augmenter: if i == 0 {
                        AugmenterKind::OuterBatch
                    } else {
                        AugmenterKind::Sequential
                    },
                    ..QuepaConfig::default()
                },
            );
            Arc::new(q)
        })
        .collect();

    let mut handles = Vec::new();
    for (i, instance) in instances.iter().enumerate() {
        for t in 0..3 {
            let quepa = Arc::clone(instance);
            handles.push(std::thread::spawn(move || {
                let size = 5 + (i * 3 + t) * 7;
                let answer = quepa
                    .augmented_search("transactions", &query_for(StoreKind::Relational, size), 1)
                    .unwrap();
                (size, answer.original.len(), answer.augmented.len())
            }));
        }
    }
    for h in handles {
        let (size, orig, aug) = h.join().unwrap();
        assert_eq!(orig, size);
        assert!(aug > 0);
    }
}

#[test]
fn one_instance_serves_concurrent_queries() {
    let built = BuiltPolystore::build(WorkloadConfig {
        albums: 150,
        replica_sets: 1,
        deployment: Deployment::InProcess,
        seed: 32,
    });
    let quepa = Arc::new(built.into_quepa());
    let handles: Vec<_> = (0..6)
        .map(|t| {
            let quepa = Arc::clone(&quepa);
            std::thread::spawn(move || {
                let dbs = ["transactions", "catalogue", "similar"];
                let kinds = [StoreKind::Relational, StoreKind::Document, StoreKind::Graph];
                let answer = quepa
                    .augmented_search(dbs[t % 3], &query_for(kinds[t % 3], 10 + t), 0)
                    .unwrap();
                answer.augmented.len()
            })
        })
        .collect();
    for h in handles {
        assert!(h.join().unwrap() > 0);
    }
    // Logs from every thread accumulated.
    assert_eq!(quepa.take_logs().len(), 6);
}

#[test]
fn lazy_deletion_is_thread_safe() {
    let built = BuiltPolystore::build(WorkloadConfig {
        albums: 60,
        replica_sets: 0,
        deployment: Deployment::InProcess,
        seed: 33,
    });
    let quepa = Arc::new(built.into_quepa());
    // Delete half the discounts behind QUEPA's back.
    for seq in (0..60).step_by(4) {
        let _ = quepa
            .polystore()
            .execute_update("discount", &format!("DEL {}", discount_key_of(&quepa, seq)));
    }
    // Hammer the system from several threads; every run must stay coherent.
    let handles: Vec<_> = (0..4)
        .map(|t| {
            let quepa = Arc::clone(&quepa);
            std::thread::spawn(move || {
                for i in 0..10 {
                    let q = format!("SELECT * FROM inventory WHERE seq = {}", (t * 10 + i) % 60);
                    let answer = quepa.augmented_search("transactions", &q, 0).unwrap();
                    assert_eq!(answer.original.len(), 1);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

fn discount_key_of(quepa: &Quepa, seq: usize) -> String {
    // Find the discount key for album `seq` via a prefix scan.
    let objs = quepa.polystore().execute("discount", &format!("SCAN k{seq}:")).unwrap();
    objs.first().map(|o| o.key().key().as_str().to_owned()).unwrap_or_else(|| "none".into())
}
