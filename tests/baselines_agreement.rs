//! Cross-crate integration: the middleware baselines against QUEPA — same
//! answers on the stores every tool supports, plus the failure modes the
//! paper reports (out-of-memory, unsupported stores).

use std::collections::BTreeSet;
use std::sync::Arc;

use quepa::baselines::{ArangoAug, MetaAug, Middleware, MiddlewareError, Talend};
use quepa::core::QuepaConfig;
use quepa::polystore::{Deployment, StoreKind};
use quepa::workload::{query_for, BuiltPolystore, WorkloadConfig};

fn build() -> BuiltPolystore {
    BuiltPolystore::build(WorkloadConfig {
        albums: 80,
        replica_sets: 0,
        deployment: Deployment::InProcess,
        seed: 17,
    })
}

fn key_set(objs: &[quepa::pdm::DataObject]) -> BTreeSet<String> {
    objs.iter().map(|o| o.key().to_string()).collect()
}

#[test]
fn meta_aug_equals_quepa_minus_redis() {
    let built = build();
    let index = Arc::new(built.index.clone());
    let polystore = built.polystore.clone();
    let quepa = built.into_quepa();
    quepa.set_config(QuepaConfig { cache_size: 0, ..QuepaConfig::default() });

    let q = query_for(StoreKind::Relational, 12);
    let ours = quepa.augmented_search("transactions", &q, 1).unwrap();
    let quepa_keys: BTreeSet<String> = ours
        .augmented
        .iter()
        .map(|a| a.object.key().to_string())
        .filter(|k| !k.starts_with("discount"))
        .collect();

    let meta = MetaAug::new(polystore, index);
    let theirs = meta.augmented_query("transactions", &q, 1).unwrap();
    assert_eq!(key_set(&theirs.augmented), quepa_keys);
}

#[test]
fn talend_equals_meta_aug() {
    let built = build();
    let index = Arc::new(built.index.clone());
    let meta = MetaAug::new(built.polystore.clone(), Arc::clone(&index));
    let talend = Talend::new(built.polystore.clone(), index);
    let q = query_for(StoreKind::Document, 9);
    let a = meta.augmented_query("catalogue", &q, 0).unwrap();
    let b = talend.augmented_query("catalogue", &q, 0).unwrap();
    assert_eq!(key_set(&a.augmented), key_set(&b.augmented));
    assert_eq!(a.original.len(), b.original.len());
}

#[test]
fn arango_covers_non_relational_subset_of_quepa() {
    let built = build();
    let index = Arc::new(built.index.clone());
    let polystore = built.polystore.clone();
    let quepa = built.into_quepa();
    let q = query_for(StoreKind::Document, 10);
    let ours = quepa.augmented_search("catalogue", &q, 0).unwrap();
    let quepa_nonrel: BTreeSet<String> = ours
        .augmented
        .iter()
        .map(|a| a.object.key().to_string())
        .filter(|k| !k.starts_with("transactions"))
        .collect();

    let arango = ArangoAug::new(polystore, index, usize::MAX);
    arango.warm_up().unwrap();
    let theirs = arango.augmented_query("catalogue", &q, 0).unwrap();
    assert_eq!(key_set(&theirs.augmented), quepa_nonrel);
}

#[test]
fn every_middleware_reports_unsupported_stores_cleanly() {
    let built = build();
    let index = Arc::new(built.index.clone());
    let middlewares: Vec<(Box<dyn Middleware>, &str)> = vec![
        (
            Box::new(MetaAug::new(built.polystore.clone(), Arc::clone(&index))),
            "discount", // Metamodel: no Redis
        ),
        (Box::new(Talend::new(built.polystore.clone(), Arc::clone(&index))), "discount"),
        (
            Box::new(ArangoAug::new(built.polystore.clone(), index, usize::MAX)),
            "transactions", // Arango: no SQL import
        ),
    ];
    for (m, bad_target) in middlewares {
        let err = m.augmented_query(bad_target, "whatever", 0).unwrap_err();
        assert!(
            matches!(err, MiddlewareError::Unsupported(_)),
            "{} on {bad_target}: {err:?}",
            m.name()
        );
    }
}
