//! The running example of the paper (§I): the Polyphony company's
//! polystore, Lucy's SQL query, and the augmented answer revealing the
//! catalogue entry and the 40% discount stored in other departments'
//! databases.
//!
//! ```sh
//! cargo run --example polyphony_search
//! ```

use std::sync::Arc;

use quepa::aindex::AIndex;
use quepa::core::Quepa;
use quepa::docstore::DocumentDb;
use quepa::graphstore::GraphDb;
use quepa::kvstore::KvStore;
use quepa::pdm::{text, Probability, Value};
use quepa::polystore::{
    DocumentConnector, GraphConnector, KvConnector, LatencyModel, Polystore, RelationalConnector,
};
use quepa::relstore::engine::Database;

fn main() {
    // --- Fig. 1: the four departments' stores -----------------------------
    // (i) Sales department: ACID transactions on a relational system.
    let mut transactions = Database::new("transactions");
    transactions.create_table("inventory", "id", &["id", "artist", "name"]).unwrap();
    transactions.create_table("sales", "id", &["id", "first", "last", "total"]).unwrap();
    transactions
        .execute("INSERT INTO inventory VALUES ('a32', 'Cure', 'Wish'), ('a33', 'Cure', 'Faith')")
        .unwrap();
    transactions.execute("INSERT INTO sales VALUES ('s8', 'John', 'Doe', 20.0)").unwrap();

    // (ii) Warehouse department: JSON catalogue for search operations.
    let mut catalogue = DocumentDb::new("catalogue");
    catalogue
        .insert(
            "albums",
            text::parse(
                r#"{"_id":"d1","title":"Wish","artist_id":"a1","artist":"The Cure","year":1992}"#,
            )
            .unwrap(),
        )
        .unwrap();

    // (iii) Marketing department: similar-items graph for recommendations.
    let mut similar = GraphDb::new("similar");
    similar.add_node("g7", "Album", [("title", Value::str("Wish"))]).unwrap();
    similar.add_node("g8", "Album", [("title", Value::str("Disintegration"))]).unwrap();
    similar.add_edge("g7", "g8", "SIMILAR").unwrap();

    // Shared key-value store with discounts.
    let mut discount = KvStore::new("discount");
    discount.set("k1:cure:wish", "40%");

    let mut polystore = Polystore::new();
    polystore.register(Arc::new(RelationalConnector::new(transactions, LatencyModel::FREE)));
    polystore.register(Arc::new(DocumentConnector::new(catalogue, LatencyModel::FREE)));
    polystore.register(Arc::new(GraphConnector::new(similar, LatencyModel::FREE)));
    polystore.register(Arc::new(KvConnector::new(discount, "drop", LatencyModel::FREE)));

    // --- Example 2: the p-relations of the A' index (Fig. 3) -------------
    let mut index = AIndex::new();
    let k = |s: &str| s.parse().unwrap();
    index.insert_identity(
        &k("catalogue.albums.d1"),
        &k("transactions.inventory.a32"),
        Probability::of(0.9),
    );
    // Example 7 / Fig. 4: this insert *materializes* the inferred identity
    // discount.drop.k1:cure:wish ~0.72 transactions.inventory.a32.
    index.insert_identity(
        &k("catalogue.albums.d1"),
        &k("discount.drop.k1:cure:wish"),
        Probability::of(0.8),
    );
    index.insert_identity(&k("catalogue.albums.d1"), &k("similar.album.g7"), Probability::of(0.95));

    // --- §I: Lucy's query, in the only language she knows ----------------
    let quepa = Quepa::new(polystore, index);
    let query = "SELECT * FROM inventory WHERE name like '%wish%'";
    println!("Lucy submits to the sales database, in augmented mode:\n  {query}\n");
    let answer = quepa.augmented_search("transactions", query, 0).unwrap();
    print!("{}", answer.render());

    // The discount from the shared store is in the answer, as in §I.
    let discount = answer
        .augmented
        .iter()
        .find(|a| a.object.key().database().as_str() == "discount")
        .expect("the 40% discount must surface");
    println!(
        "\n→ the product is on a {} discount — information Lucy's own",
        discount.object.value()
    );
    println!("  database does not hold, retrieved without any global schema.");
    assert_eq!(discount.object.value().as_str(), Some("40%"));
}
