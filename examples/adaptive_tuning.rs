//! The adaptive optimizer (§V): collect run logs, train the C4.5 +
//! REPTree models, and watch ADAPTIVE pick sensible configurations per
//! query — against the HUMAN and RANDOM baselines of §VII-C.
//!
//! ```sh
//! cargo run --release --example adaptive_tuning
//! ```

use quepa::core::{
    AdaptiveOptimizer, AugmenterKind, HumanOptimizer, Optimizer, QuepaConfig, RandomOptimizer,
};
use quepa::polystore::{Deployment, StoreKind};
use quepa::workload::{query_for, BuiltPolystore, WorkloadConfig};

fn main() {
    let built = BuiltPolystore::build(WorkloadConfig {
        albums: 800,
        replica_sets: 1,
        deployment: Deployment::Centralized,
        seed: 21,
    });
    let quepa = built.into_quepa();

    // Phase 1 — logs collection: sweep configurations over a query grid.
    println!("phase 1: collecting run logs…");
    for size in [50usize, 200, 800] {
        for augmenter in AugmenterKind::ALL {
            for batch in [8usize, 256] {
                quepa.set_config(QuepaConfig {
                    augmenter,
                    batch_size: batch,
                    threads_size: 4,
                    cache_size: 4096,
                    ..QuepaConfig::default()
                });
                quepa.drop_caches();
                let q = query_for(StoreKind::Relational, size);
                let _ = quepa.augmented_search("transactions", &q, 0).unwrap();
            }
        }
    }
    let logs = quepa.take_logs();
    println!("collected {} run logs", logs.len());

    // Phase 2 — training.
    let adaptive = AdaptiveOptimizer::train(&logs).expect("enough distinct situations");
    println!("trained T1 (C4.5) + T2–T4 (REPTrees)");
    println!("\nthe learned T1 tree (cf. paper Fig. 8):\n{}", adaptive.render_t1());

    // Phase 3 — prediction: what does each optimizer pick?
    let human = HumanOptimizer::default();
    let random = RandomOptimizer::new(3);
    let current = quepa.config();
    for (label, result_size, augmented_size) in
        [("tiny query", 10usize, 25usize), ("large query", 800, 6000)]
    {
        let features = quepa::core::QueryFeatures {
            target_kind: StoreKind::Relational,
            store_count: 7,
            result_size,
            augmented_size,
            level: 0,
            distributed: false,
            filtered: false,
        };
        println!("{label} ({result_size} results, {augmented_size} related):");
        for (name, cfg) in [
            ("ADAPTIVE", adaptive.choose(&features, &current)),
            ("HUMAN", human.choose(&features, &current)),
            ("RANDOM", random.choose(&features, &current)),
        ] {
            println!("  {name:<9} → {cfg}");
        }
        println!();
    }

    // Install ADAPTIVE and measure a few live queries.
    quepa.set_optimizer(Some(Box::new(adaptive)));
    for size in [50usize, 800] {
        quepa.drop_caches();
        let q = query_for(StoreKind::Relational, size);
        let answer = quepa.augmented_search("transactions", &q, 0).unwrap();
        println!(
            "live query of {size} results → optimizer chose {}, took {:?} ({} related objects)",
            answer.config_used,
            answer.duration,
            answer.augmented.len()
        );
    }
}
