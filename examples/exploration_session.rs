//! Augmented exploration (§II-D, Definition 4): a click-by-click walk
//! through the polystore, with the `D_P` path repository promoting a
//! shortcut p-relation once the same path has been walked often enough
//! (§III-D(a), Example 8).
//!
//! ```sh
//! cargo run --example exploration_session
//! ```

use quepa::pdm::RelationKind;
use quepa::polystore::Deployment;
use quepa::workload::{BuiltPolystore, WorkloadConfig};

fn main() {
    // A small generated Polyphony polystore (4 stores).
    let built = BuiltPolystore::build(WorkloadConfig {
        albums: 200,
        replica_sets: 0,
        deployment: Deployment::InProcess,
        seed: 11,
    });
    let quepa = built.into_quepa();

    // Start exploring from a sales query.
    let query = "SELECT * FROM sales WHERE seq < 3";
    println!("exploration starts from: {query}");
    let mut session = quepa.explore("transactions", query).unwrap();
    println!("local answer: {} sales", session.results().len());

    // Click the first sale: its links appear, ordered by probability.
    let frontier = session.select(0).unwrap();
    println!("\nafter selecting sale #0, {} links appear:", frontier.len());
    for (i, link) in frontier.iter().take(5).enumerate() {
        println!("  [{i}] {} [p={}]", link.object.key(), link.probability);
    }

    // Click the sale line, then the inventory item it references — an
    // endpoint pair that has *no* direct p-relation yet, so the walk can
    // be promoted into a shortcut.
    let pick_inventory = |frontier: &[quepa::core::AugmentedObject]| {
        frontier
            .iter()
            .position(|a| a.object.key().collection().as_str() == "inventory")
            .expect("an inventory item is reachable")
    };
    let f1 = session.step(0).unwrap();
    println!("\nstep 2 expands into {} links", f1.len());
    let item = pick_inventory(f1);
    let f2 = session.step(item).unwrap().len();
    println!("step 3 expands into {f2} links");
    let path: Vec<String> = session.path().iter().map(|k| k.to_string()).collect();
    println!("full path walked: {}", path.join(" → "));

    // Walk the same path repeatedly: the D_P repository eventually promotes
    // a direct matching edge between the path's endpoints.
    let first = path.first().unwrap().parse().unwrap();
    let last = path.last().unwrap().parse().unwrap();
    session.finish();
    let mut fired = false;
    for round in 0..32 {
        let mut s = quepa.explore("transactions", query).unwrap();
        s.select(0).unwrap();
        let f = s.step(0).unwrap();
        let item = pick_inventory(f);
        s.step(item).unwrap();
        if s.finish() {
            println!("\npromotion fired after {} walks of the same path", round + 2);
            fired = true;
            break;
        }
    }
    assert!(fired, "the repeated path must promote");
    let edge = quepa
        .index()
        .edge(&first, &last, RelationKind::Matching)
        .expect("the shortcut edge now exists");
    println!(
        "shortcut p-relation added: {} ≡ {} with p={} (avg along the path)",
        first, last, edge.probability
    );
}
