//! The Collector (§III-D): building an A' index *from scratch* by record
//! linkage — blocking, pairwise matching with tuned comparator weights,
//! the dedup rule, and finally an augmented search over the discovered
//! p-relations.
//!
//! ```sh
//! cargo run --example collector_linkage
//! ```

use std::sync::Arc;

use quepa::core::Quepa;
use quepa::docstore::DocumentDb;
use quepa::linkage::{Collector, CollectorConfig};
use quepa::pdm::text;
use quepa::polystore::{DocumentConnector, LatencyModel, Polystore, RelationalConnector};
use quepa::relstore::engine::Database;

fn main() {
    // Two departments describing the same albums, independently.
    let mut rel = Database::new("transactions");
    rel.create_table("inventory", "id", &["id", "artist", "name", "year"]).unwrap();
    rel.execute(
        "INSERT INTO inventory VALUES \
         ('a1', 'The Cure', 'Wish', 1992), \
         ('a2', 'The Cure', 'Disintegration', 1989), \
         ('a3', 'Radiohead', 'OK Computer', 1997), \
         ('a4', 'Radiohead', 'Kid A', 2000)",
    )
    .unwrap();

    let mut doc = DocumentDb::new("catalogue");
    for d in [
        r#"{"_id":"d1","title":"Wish","artist":"The Cure","year":1992}"#,
        r#"{"_id":"d2","title":"Disintegration","artist":"The Cure","year":1989}"#,
        r#"{"_id":"d3","title":"OK Computer","artist":"Radiohead","year":1997}"#,
        r#"{"_id":"d4","title":"Amnesiac","artist":"Radiohead","year":2001}"#,
    ] {
        doc.insert("albums", text::parse(d).unwrap()).unwrap();
    }

    let mut polystore = Polystore::new();
    polystore.register(Arc::new(RelationalConnector::new(rel, LatencyModel::FREE)));
    polystore.register(Arc::new(DocumentConnector::new(doc, LatencyModel::FREE)));

    // Run the Collector: blocking → pairwise matching → dedup → A' index.
    let collector = Collector::new(CollectorConfig::default());
    let (index, report) = collector.build_index(&polystore).unwrap();
    println!("collector report: {report:?}");
    println!("index: {:?}\n", index.stats());
    assert!(report.identities >= 3, "the three shared albums must link");

    // The discovered index immediately powers augmented search.
    let quepa = Quepa::new(polystore, index);
    let answer = quepa
        .augmented_search("transactions", "SELECT * FROM inventory WHERE name LIKE '%wish%'", 0)
        .unwrap();
    println!("augmented answer for the Wish query:");
    print!("{}", answer.render());
    assert!(answer.augmented.iter().any(|a| a.object.key().to_string() == "catalogue.albums.d1"));
}
