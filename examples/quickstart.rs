//! Quickstart: assemble a two-store polystore, relate objects in the A'
//! index, and run an augmented search.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use std::sync::Arc;

use quepa::aindex::AIndex;
use quepa::core::Quepa;
use quepa::docstore::DocumentDb;
use quepa::pdm::{text, Probability};
use quepa::polystore::{DocumentConnector, LatencyModel, Polystore, RelationalConnector};
use quepa::relstore::engine::Database;

fn main() {
    // 1. Two independent stores, each with its own native language.
    let mut sales = Database::new("sales");
    sales.create_table("items", "id", &["id", "name", "price"]).unwrap();
    sales
        .execute("INSERT INTO items VALUES ('i1', 'Wish (CD)', 12.5), ('i2', 'Faith (LP)', 21.0)")
        .unwrap();

    let mut catalog = DocumentDb::new("catalog");
    catalog
        .insert(
            "albums",
            text::parse(r#"{"_id":"a1","title":"Wish","artist":"The Cure","year":1992}"#).unwrap(),
        )
        .unwrap();

    // 2. Register them in a polystore.
    let mut polystore = Polystore::new();
    polystore.register(Arc::new(RelationalConnector::new(sales, LatencyModel::FREE)));
    polystore.register(Arc::new(DocumentConnector::new(catalog, LatencyModel::FREE)));

    // 3. Record what relates to what (normally the Collector's job).
    let mut index = AIndex::new();
    index.insert_identity(
        &"sales.items.i1".parse().unwrap(),
        &"catalog.albums.a1".parse().unwrap(),
        Probability::of(0.92),
    );

    // 4. Ask in SQL, receive answers from everywhere.
    let quepa = Quepa::new(polystore, index);
    let answer = quepa
        .augmented_search("sales", "SELECT * FROM items WHERE name LIKE '%wish%'", 0)
        .expect("augmented search");

    println!("local answer ({} object):", answer.original.len());
    for o in &answer.original {
        println!("  {o}");
    }
    println!("augmentation ({} objects):", answer.augmented.len());
    for a in &answer.augmented {
        println!("  ⇒ {} [p={}]", a.object, a.probability);
    }
    assert_eq!(answer.augmented.len(), 1);
}
