//! Augmented analytics (§VIII future work, implemented as an extension):
//! probability-weighted aggregation over an augmented answer.
//!
//! The business question: *"for the albums customers are buying, what
//! discounts are on the table right now — across every department's
//! database?"* No single store can answer it; the augmented answer plus
//! the expected-value aggregation can.
//!
//! ```sh
//! cargo run --example analytics_report
//! ```

use quepa::core::analytics;
use quepa::polystore::Deployment;
use quepa::workload::{BuiltPolystore, WorkloadConfig};

fn main() {
    let quepa = BuiltPolystore::build(WorkloadConfig {
        albums: 400,
        replica_sets: 0,
        deployment: Deployment::InProcess,
        seed: 5,
    })
    .into_quepa();

    // The sales department asks about its current inventory slice.
    let answer = quepa
        .augmented_search("transactions", "SELECT * FROM inventory WHERE seq < 100", 0)
        .expect("augmented search");

    // Where did the related information come from?
    let stats = analytics::stats(&answer);
    println!(
        "{} inventory rows augmented with {} related objects across {} databases",
        stats.original, stats.augmented, stats.databases_reached
    );
    println!("mean relation probability: {:.3}", stats.mean_probability);
    for (db, n) in analytics::breakdown_by_database(&answer) {
        println!("  {db:<14} {n:>5} objects");
    }

    // Discounts live in the kv store as strings like "40%"; years live in
    // the catalogue documents. Aggregate the catalogue's `year` field,
    // weighting by relation probability (expected-value semantics).
    let years = analytics::weighted_aggregate(&answer, "year");
    println!(
        "\nrelease years across the polystore: E[mean]={:.1} (min {} max {}, {} objects)",
        years.expected_mean.unwrap_or(0.0),
        years.min.unwrap_or(0.0),
        years.max.unwrap_or(0.0),
        years.matching_objects,
    );
    assert!(years.matching_objects > 0);
    assert!(stats.databases_reached >= 2);

    // The same report after one exploration step would include 2-hop
    // objects; at level 1 the sale lines join the picture.
    let deeper = quepa
        .augmented_search("transactions", "SELECT * FROM inventory WHERE seq < 100", 1)
        .expect("level 1");
    println!(
        "\nat level 1 the answer grows from {} to {} related objects",
        answer.augmented.len(),
        deeper.augmented.len()
    );
    assert!(deeper.augmented.len() >= answer.augmented.len());
}
